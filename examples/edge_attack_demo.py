"""Demonstrate the edge-inference threat model that motivates edge-level DP.

Mounts the similarity-based link-stealing attack (He et al., 2021) and the
LinkTeller-style influence attack (Wu et al., 2022) against:

* the non-private GCN -- whose smoothed predictions leak edge membership, and
* GCON -- whose released parameters satisfy (epsilon, delta) edge-DP and whose
  private inference rule only ever uses the querying node's own edges.

Run with:  python examples/edge_attack_demo.py [--scale 0.2] [--epsilon 1.0]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import GCON, GCONConfig, load_dataset
from repro.attacks import (
    attack_auc,
    influence_link_attack,
    sample_edge_candidates,
    similarity_link_attack,
)
from repro.baselines import GCNClassifier
from repro.evaluation.reporting import render_table
from repro.graphs.adjacency import row_stochastic_normalize


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="cora_ml")
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--epsilon", type=float, default=1.0)
    parser.add_argument("--pairs", type=int, default=400)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    pairs, labels = sample_edge_candidates(graph, num_pairs=args.pairs, rng=args.seed)
    print(f"{graph.name}: attacking {labels.sum()} real edges vs "
          f"{(1 - labels).sum()} non-edges\n")

    # Victim 1: non-private GCN.
    gcn = GCNClassifier(epochs=150).fit(graph, seed=args.seed)
    gcn_similarity = attack_auc(similarity_link_attack(gcn.decision_scores(graph), pairs), labels)

    # The influence attack queries the model with perturbed features; for the
    # GCN this means re-running message passing over the true adjacency.
    transition = row_stochastic_normalize(graph.adjacency)

    def gcn_predict(features: np.ndarray) -> np.ndarray:
        return np.asarray(transition @ (transition @ features[:, : graph.num_classes]))

    gcn_influence = attack_auc(
        influence_link_attack(gcn_predict, graph.features, pairs), labels
    )

    # Victim 2: GCON with edge-level DP and private inference (Eq. 16).
    config = GCONConfig(epsilon=args.epsilon, alpha=0.8, propagation_steps=(2,),
                        lambda_reg=0.2, encoder_dim=16, encoder_hidden=64,
                        encoder_epochs=150, use_pseudo_labels=True)
    gcon = GCON(config).fit(graph, seed=args.seed)
    gcon_similarity = attack_auc(
        similarity_link_attack(gcon.decision_scores(graph, mode="private"), pairs), labels
    )

    rows = [
        ["GCN (non-DP)", "link stealing (similarity)", gcn_similarity],
        ["GCN-style propagation", "LinkTeller (influence)", gcn_influence],
        [f"GCON (eps={args.epsilon:g})", "link stealing (similarity)", gcon_similarity],
    ]
    print(render_table(["victim model", "attack", "ROC-AUC"], rows,
                       title="Edge-inference attack success (0.5 = chance)"))
    print("\nAn AUC close to 0.5 means the adversary learns essentially nothing about"
          "\nindividual edges; the non-private models sit well above that level.")


if __name__ == "__main__":
    main()
