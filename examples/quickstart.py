"""Quickstart: train GCON with edge-level differential privacy on a citation graph.

Loads the synthetic Cora-ML preset, trains GCON under an (epsilon, delta)
edge-DP budget, and compares it against a graph-free MLP (trivially private)
and the non-private GCN upper bound.

Run with:  python examples/quickstart.py [--scale 0.3] [--epsilon 2.0]
"""

from __future__ import annotations

import argparse

from repro import GCON, GCONConfig, load_dataset
from repro.baselines import GCNClassifier, MLPClassifier


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="cora_ml", help="dataset preset name")
    parser.add_argument("--scale", type=float, default=0.3,
                        help="graph down-scaling factor in (0, 1]")
    parser.add_argument("--epsilon", type=float, default=2.0, help="edge-DP epsilon")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    print(f"Loaded {graph.name}: {graph.num_nodes} nodes, {graph.num_edges} edges, "
          f"{graph.num_features} features, {graph.num_classes} classes")

    # GCON: objective perturbation keeps the graph convolution untouched and
    # releases model parameters satisfying (epsilon, 1/|E|) edge-level DP.
    config = GCONConfig(
        epsilon=args.epsilon,
        alpha=0.8,                 # PPR restart probability (controls sensitivity)
        propagation_steps=(2,),    # APPR with m1 = 2 hops
        lambda_reg=0.2,
        encoder_dim=16,
        encoder_hidden=64,
        encoder_epochs=200,
        use_pseudo_labels=True,    # expand n1 with encoder pseudo-labels (Appendix Q)
    )
    gcon = GCON(config).fit(graph, seed=args.seed)
    epsilon, delta = gcon.privacy_spent
    print(f"\nGCON trained under ({epsilon:g}, {delta:.2e}) edge-DP")
    print(f"  Theorem-1 calibration: beta={gcon.perturbation_.beta:.3f}, "
          f"lambda_bar={gcon.perturbation_.lambda_bar:.3f}, "
          f"lambda'={gcon.perturbation_.lambda_prime:.3f}")
    print(f"  micro-F1 (private inference): {gcon.score(mode='private'):.4f}")
    print(f"  micro-F1 (public inference):  {gcon.score(mode='public'):.4f}")

    # Reference points: a graph-free MLP and the non-private GCN upper bound.
    mlp = MLPClassifier(epochs=150).fit(graph, seed=args.seed)
    gcn = GCNClassifier(epochs=150).fit(graph, seed=args.seed)
    print(f"\nMLP (no edges, trivially edge-private): {mlp.score(graph):.4f}")
    print(f"GCN (non-private upper bound):          {gcn.score(graph):.4f}")


if __name__ == "__main__":
    main()
