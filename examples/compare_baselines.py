"""Compare GCON against all seven competitors across privacy budgets (mini Figure 1).

Reproduces a scaled-down row of the paper's Figure 1: micro-F1 of GCON,
DP-SGD, DPGCN, LPGNet, GAP, ProGAP, MLP and the non-private GCN on one
dataset, across several epsilon values.

Run with:  python examples/compare_baselines.py [--dataset cora_ml] [--scale 0.2]
"""

from __future__ import annotations

import argparse

from repro.evaluation.figures import FigureSettings, figure1_accuracy_vs_epsilon
from repro.evaluation.reporting import render_series


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="cora_ml", help="dataset preset name")
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--epsilons", type=float, nargs="+", default=[0.5, 1.0, 2.0, 4.0])
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--epochs", type=int, default=100,
                        help="training epochs for the neural baselines")
    args = parser.parse_args()

    settings = FigureSettings(
        scale=args.scale,
        repeats=args.repeats,
        epochs=args.epochs,
        encoder_epochs=max(150, args.epochs),
        datasets=(args.dataset,),
        epsilons=tuple(args.epsilons),
    )
    print(f"Running {len(args.epsilons)} privacy budgets x 8 methods on "
          f"{args.dataset} (scale={args.scale:g}) ...")
    series = figure1_accuracy_vs_epsilon(settings)
    print()
    print(render_series(series, title="Micro-F1 versus privacy budget (mini Figure 1)"))
    print("\nReading guide: GCN (non-DP) is the utility upper bound; MLP ignores all"
          "\nedges and is therefore flat; GCON should dominate the DP competitors and"
          "\napproach the GCN as epsilon grows (see EXPERIMENTS.md for the full-scale shapes).")


if __name__ == "__main__":
    main()
