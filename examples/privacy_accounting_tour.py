"""A tour of the privacy machinery: Theorem-1 calibration and baseline accountants.

Walks through, without training anything end-to-end:

1. the Theorem-1 parameter chain (Eqs. 17-24) that converts an (epsilon,
   delta) budget plus Lemma-2 sensitivity into GCON's noise parameters, and
   how it reacts to the budget, the number of labelled nodes and alpha;
2. the RDP accounting used by the GAP/ProGAP/DP-SGD baselines, showing how
   many aggregation hops or SGD steps a fixed budget can afford.

Run with:  python examples/privacy_accounting_tour.py
"""

from __future__ import annotations

from repro.baselines.gap import EDGE_AGGREGATION_SENSITIVITY, calibrate_hop_sigma
from repro.core.losses import MultiLabelSoftMarginLoss
from repro.core.perturbation import compute_perturbation_parameters
from repro.core.sensitivity import aggregate_sensitivity
from repro.evaluation.reporting import render_table
from repro.privacy.rdp import calibrate_gaussian_noise_rdp


def theorem1_tour() -> None:
    loss = MultiLabelSoftMarginLoss(num_classes=7)
    rows = []
    for epsilon in (0.5, 1.0, 4.0):
        for num_labeled in (140, 1000, 3000):
            sensitivity = aggregate_sensitivity(alpha=0.8, steps=2)
            params = compute_perturbation_parameters(
                epsilon=epsilon, delta=1e-4, omega=0.9, loss=loss,
                sensitivity=sensitivity, num_labeled=num_labeled, num_classes=7,
                dimension=16, lambda_reg=0.2,
            )
            rows.append([
                epsilon, num_labeled, round(params.sensitivity, 3),
                round(params.lambda_bar, 4), round(params.lambda_prime, 4),
                round(params.beta, 4),
                round(params.dimension / params.beta, 2),
            ])
    print(render_table(
        ["epsilon", "n1", "Psi(Z)", "lambda_bar", "lambda'", "beta", "E[|B| radius]"],
        rows,
        title="Theorem 1: calibration of GCON's objective perturbation",
    ))
    print("\nThe expected noise radius shrinks as epsilon or n1 grow; because the noise"
          "\nenters the objective as B/n1, large labelled sets make the perturbation"
          "\nnegligible -- the regime the paper's full-size datasets operate in.\n")


def baseline_accounting_tour() -> None:
    rows = []
    for epsilon in (0.5, 1.0, 4.0):
        for hops in (1, 2, 4):
            sigma = calibrate_hop_sigma(epsilon, 1e-4, hops,
                                        sensitivity=EDGE_AGGREGATION_SENSITIVITY)
            rows.append(["GAP aggregation", epsilon, f"{hops} hops", round(sigma, 3)])
    for epsilon in (0.5, 1.0, 4.0):
        for steps in (50, 200):
            sigma = calibrate_gaussian_noise_rdp(epsilon, 1e-4, q=0.1, steps=steps)
            rows.append(["DP-SGD (q=0.1)", epsilon, f"{steps} steps", round(sigma, 3)])
    print(render_table(
        ["mechanism", "epsilon", "composition", "noise multiplier"],
        rows,
        title="RDP accounting for the aggregation-/gradient-perturbation baselines",
    ))
    print("\nEvery extra hop or step must be paid for by composition, which is exactly"
          "\nthe overhead GCON avoids: its guarantee is independent of the optimizer"
          "\nand of the number of propagation steps (Remark after Theorem 1).")


if __name__ == "__main__":
    theorem1_tour()
    baseline_accounting_tour()
