"""Hyperparameter search for GCON following the paper's Appendix-Q protocol.

Runs a random (or exhaustive) search over the Appendix-Q grid — restart
probability, propagation steps, loss, regularisation, pseudo-label expansion —
scoring each configuration on the *validation* split only, then reports a
leaderboard and re-trains the best configuration for a final test score.

Run with:  python examples/hyperparameter_tuning.py [--trials 8] [--epsilon 2.0]
"""

from __future__ import annotations

import argparse

from repro import load_dataset
from repro.evaluation.reporting import render_table
from repro.tuning import (
    GridSearch,
    RandomSearch,
    gcon_quick_space,
    gcon_search_space,
    make_gcon_factory,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="cora_ml", help="dataset preset name")
    parser.add_argument("--scale", type=float, default=0.25,
                        help="graph down-scaling factor in (0, 1]")
    parser.add_argument("--epsilon", type=float, default=2.0, help="edge-DP epsilon")
    parser.add_argument("--strategy", choices=("random", "grid"), default="random")
    parser.add_argument("--space", choices=("quick", "full"), default="quick",
                        help="'full' is the complete Appendix-Q grid (hundreds of trials)")
    parser.add_argument("--trials", type=int, default=8,
                        help="number of random-search trials")
    parser.add_argument("--repeats", type=int, default=1,
                        help="independent fits per configuration")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    print(f"Loaded {graph.name}: {graph.num_nodes} nodes, {graph.num_edges} edges; "
          f"searching at epsilon = {args.epsilon:g}\n")

    # The factory binds the privacy budget; the search only varies the
    # utility-relevant knobs, exactly as in Appendix Q (the privacy guarantee
    # of each trained model is unaffected by the choice of hyperparameters).
    factory = make_gcon_factory(args.epsilon, encoder_epochs=150)
    space = gcon_search_space(args.dataset) if args.space == "full" else gcon_quick_space()

    if args.strategy == "grid":
        search = GridSearch(factory, space, repeats=args.repeats, seed=args.seed)
        print(f"Exhaustive grid search over {space.grid_size()} configurations ...")
    else:
        search = RandomSearch(factory, space, num_trials=args.trials,
                              repeats=args.repeats, seed=args.seed)
        print(f"Random search with {args.trials} trials ...")

    result = search.run(graph)
    headers, rows = result.to_rows(top_k=10)
    print(render_table(headers, rows, title="Validation leaderboard (top 10)"))

    # Refit the winning configuration and report its held-out test score.
    best = factory(result.best_params).fit(graph, seed=args.seed)
    print(f"\nbest configuration: {result.best_params}")
    print(f"validation micro-F1: {result.best_score:.4f}")
    print(f"test micro-F1 (private inference): {best.score(graph):.4f}")


if __name__ == "__main__":
    main()
