"""Parallel epsilon sweeps with the runtime engine and the ``repro sweep`` CLI.

Expands a ``method x dataset x epsilon x repeat`` grid into independent
seeded cells, fans them out over worker processes, streams every finished
cell into a resumable JSONL store, and aggregates the results -- matching a
serial run, typically several times faster.  Three layers stack up:

* **shared preparation**: cells that differ only in epsilon share their seed,
  so a worker trains the public encoder and runs the PPR/APPR propagation
  once per (method, dataset, repeat) and reuses the preparation across the
  entire epsilon axis;
* **the epsilon-sweep fast path**: a whole epsilon axis of GCON cells is
  dispatched to one worker as a group and solved in a single vectorised
  ``SweepSolver`` pass -- the convex solves run against the shared feature
  matrix with warm starts (the epsilon_i minimiser initialises
  epsilon_{i+1}) and all models are scored through one shared inference
  feature matrix.  Results agree with the per-cell reference path (kept
  behind ``repro sweep --serial-cells`` / ``FigureCellRunner(fast_sweep=
  False)``) to within solver tolerance;
* **the content-addressed preparation store**: set the
  ``REPRO_PREPARATION_CACHE`` environment variable (or pass
  ``--preparation-cache DIR``) to a directory and every fitted encoder plus
  its propagated features is persisted under the hash of
  ``(preparation config, graph content, seed)``.  Repeats, resumed sweeps
  and fresh worker processes then skip the preparation phase entirely;
  a cache hit is bitwise identical to a cold preparation, and any change to
  the preparation configuration, the graph or the seed is a cache miss.

One machine is the ceiling here: to shard the same sweep across several
machines over a shared filesystem (work queue + leases + shard merging),
see ``examples/distributed_sweep.py`` and ``repro sweep --dist-dir DIR``.

Run with:  python examples/parallel_sweep.py [--jobs 4] [--scale 0.15]

The equivalent CLI invocation (resumable via --output):

    REPRO_PREPARATION_CACHE=results/prep \
    repro sweep --datasets cora_ml --methods GCON,MLP \
        --epsilons 0.5,1,2,4 --repeats 2 --jobs 4 \
        --output results/sweep.jsonl
"""

from __future__ import annotations

import argparse
import time

from repro.evaluation.figures import FigureSettings
from repro.evaluation.reporting import render_table
from repro.evaluation.runner import aggregate_results
from repro.runtime import JsonlResultStore, ParallelExperimentRunner, expand_cells
from repro.runtime.workers import FigureCellRunner


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=4, help="worker processes")
    parser.add_argument("--scale", type=float, default=0.15,
                        help="graph down-scaling factor in (0, 1]")
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--output", default=None,
                        help="optional JSONL store; rerun with the same path to resume")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    settings = FigureSettings(
        scale=args.scale, repeats=args.repeats, seed=args.seed,
        epochs=60, encoder_epochs=80,
        datasets=("cora_ml",), epsilons=(0.5, 1.0, 2.0, 4.0),
    )
    methods = ["GCON", "MLP"]
    cells = expand_cells(methods, settings.datasets, settings.epsilons,
                         settings.repeats, seed=settings.seed)
    print(f"sweep: {len(cells)} cells "
          f"({len(methods)} methods x {len(settings.datasets)} dataset(s) x "
          f"{len(settings.epsilons)} epsilons x {settings.repeats} repeats), "
          f"jobs={args.jobs}")

    store = JsonlResultStore(args.output) if args.output else None
    # resume_context ties the store to these numeric settings: rerunning with
    # a different --scale/--seed recomputes instead of returning stale rows.
    engine = ParallelExperimentRunner(FigureCellRunner(settings=settings),
                                      jobs=args.jobs, store=store, progress=True,
                                      resume_context=settings.resume_context())
    start = time.perf_counter()
    results = engine.run(cells)
    elapsed = time.perf_counter() - start

    rows = [
        [method, f"{epsilon:g}", f"{stats['mean']:.4f} +/- {stats['std']:.4f}",
         f"[{stats['min']:.4f}, {stats['max']:.4f}]", stats["count"]]
        for (method, _dataset, epsilon), stats in sorted(aggregate_results(results).items())
    ]
    print(render_table(["method", "epsilon", "micro-F1 (mean +/- std)", "range", "n"],
                       rows, title=f"cora_ml sweep in {elapsed:.1f}s"))
    if args.output:
        print(f"\nresults stored in {args.output}; rerunning resumes instantly.")


if __name__ == "__main__":
    main()
