"""From sweep artefact to HTTP endpoint: the serving data plane end to end.

The paper's deliverable is a *released* model: once the perturbed Θ_priv is
published, answering queries is pure post-processing — no privacy budget is
spent at inference time, however much traffic arrives.  This tour walks the
full production path on a scaled-down graph:

1. **train** a GCON release (ε = 2 edge-DP);
2. **publish** it into a content-addressed model registry — an atomic,
   versioned bundle of theta + encoder weights + a manifest carrying the
   privacy stamp (ε, δ, mechanism) and the serving configuration;
3. **serve** it over the stdlib HTTP JSON API, where concurrently arriving
   queries are micro-batched into one stacked matmul per model over an LRU
   cache of propagated features;
4. **verify** that what the server answers is bitwise identical to offline
   ``GCON.decision_scores`` — batching and caching change latency, never
   numbers.

The CLI equivalent (after a ``repro sweep --output results/sweep.jsonl``):

    repro publish --store results/sweep.jsonl --registry results/registry \
        --name cora-gcon --datasets cora_ml --methods GCON,MLP \
        --epsilons 0.5,1,2,4
    repro serve --registry results/registry --model cora-gcon@latest

    curl -s -X POST http://127.0.0.1:8151/v1/predict \
        -d '{"model": "cora-gcon@latest", "nodes": [0, 1, 2], "top_k": 2}'

Run with:  python examples/serving_quickstart.py [--scale 0.1]
"""

from __future__ import annotations

import argparse
import json
import tempfile
import threading
import urllib.request

import numpy as np

from repro.core.config import GCONConfig
from repro.core.model import GCON
from repro.graphs.datasets import load_dataset
from repro.serving import InferenceService, ModelRegistry, serve_http


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1,
                        help="graph down-scaling factor in (0, 1]")
    parser.add_argument("--epsilon", type=float, default=2.0)
    args = parser.parse_args()

    # 1. Train a release.
    graph = load_dataset("cora_ml", scale=args.scale, seed=0)
    config = GCONConfig(epsilon=args.epsilon, alpha=0.8, encoder_epochs=60,
                        use_pseudo_labels=True)
    model = GCON(config).fit(graph, seed=0)
    epsilon, delta = model.privacy_spent
    print(f"trained GCON on {graph.name} (n={graph.num_nodes}): "
          f"epsilon={epsilon:g}, delta={delta:.3g}, "
          f"test micro-F1={model.score(graph):.4f}")

    with tempfile.TemporaryDirectory() as tmp:
        # 2. Publish into a registry.
        registry = ModelRegistry(f"{tmp}/registry")
        record = registry.publish(model, "cora-gcon",
                                  training={"dataset": "cora_ml",
                                            "scale": args.scale,
                                            "graph_seed": 0})
        print(f"published {record.ref}")
        print(f"  manifest privacy stamp: {record.manifest['privacy']}")
        registry.verify("cora-gcon@latest")
        print("  integrity verified (stored archive hashes to the manifest digest)")

        # 3. Serve over HTTP (ephemeral port) and fire concurrent queries.
        service = InferenceService(registry, graph=graph, max_latency=0.01)
        server = serve_http(service, port=0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        port = server.server_address[1]
        print(f"serving on http://127.0.0.1:{port}")

        def query(nodes):
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/v1/predict",
                data=json.dumps({"model": "cora-gcon@latest",
                                 "nodes": nodes}).encode(),
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request) as response:
                return json.loads(response.read())

        answers = [None] * 24
        threads = [threading.Thread(
            target=lambda i=i: answers.__setitem__(i, query([i])))
            for i in range(24)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # 4. Served == offline, bit for bit.
        offline = model.decision_scores(graph, mode="private")
        for i, answer in enumerate(answers):
            assert np.array_equal(np.array(answer["scores"]), offline[[i]]), i
        stats = service.stats()
        batcher = stats["batcher"]
        print(f"24 concurrent single-node queries answered with "
              f"{batcher['matmuls']} matmul(s) "
              f"({batcher['coalesced_requests']} coalesced); "
              f"all bitwise identical to offline inference")
        print(f"feature cache: {stats['feature_cache']}")

        server.shutdown()
        server.server_close()
        service.close()


if __name__ == "__main__":
    main()
