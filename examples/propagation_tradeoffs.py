"""Explore GCON's sensitivity/utility trade-offs in alpha and the propagation step m1.

Reproduces miniature versions of the paper's Figures 2-4: how the restart
probability alpha and the number of propagation steps m1 affect both the
closed-form sensitivity Psi(Z) (Lemma 2) -- and therefore the injected noise
-- and the resulting accuracy under a fixed privacy budget.

Run with:  python examples/propagation_tradeoffs.py [--scale 0.2] [--epsilon 4.0]
"""

from __future__ import annotations

import argparse
import math

from repro import GCON, GCONConfig, load_dataset
from repro.core.sensitivity import aggregate_sensitivity
from repro.evaluation.reporting import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="cora_ml")
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--epsilon", type=float, default=4.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    print(f"{graph.name}: {graph.num_nodes} nodes, {graph.num_edges} edges\n")

    # Part 1 -- the closed-form sensitivity of Lemma 2, no training required.
    steps_grid = [1, 2, 5, 10, math.inf]
    alpha_grid = [0.2, 0.4, 0.6, 0.8]
    rows = []
    for alpha in alpha_grid:
        rows.append([f"alpha={alpha:g}"] + [aggregate_sensitivity(alpha, m) for m in steps_grid])
    headers = ["sensitivity Psi(Z_m)"] + [("inf" if m == math.inf else str(m)) for m in steps_grid]
    print(render_table(headers, rows, title="Lemma 2: sensitivity vs (alpha, m)"))
    print("\nSmaller alpha / larger m -> higher sensitivity -> more noise must be injected.\n")

    # Part 2 -- measured accuracy under a fixed budget (mini Figures 2 & 4).
    rows = []
    for alpha in (0.2, 0.8):
        for steps in (1, 2, 5):
            config = GCONConfig(
                epsilon=args.epsilon, alpha=alpha, propagation_steps=(steps,),
                lambda_reg=0.2, encoder_dim=16, encoder_hidden=64, encoder_epochs=150,
                use_pseudo_labels=True,
            )
            model = GCON(config).fit(graph, seed=args.seed)
            rows.append([f"alpha={alpha:g}, m1={steps}",
                         model.perturbation_.sensitivity,
                         model.perturbation_.beta,
                         model.score(mode="private"),
                         model.score(mode="public")])
    print(render_table(
        ["configuration", "Psi(Z)", "beta", "micro F1 (private)", "micro F1 (public)"],
        rows,
        title=f"GCON accuracy vs (alpha, m1) at epsilon={args.epsilon:g}",
    ))


if __name__ == "__main__":
    main()
