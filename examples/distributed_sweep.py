"""Sharding one sweep across machines with the filesystem work queue.

The distributed layer needs no server and no network stack beyond a shared
directory: the coordinator expands a sweep spec into per-group task files,
workers on any machine that mounts the directory claim groups through
atomic lease files, stream each finished group into its own JSONL shard,
and the coordinator merges the shards into one canonical store — bitwise
identical to a single-process run of the same spec.

On a real cluster you would run three shells (the queue directory on NFS):

    # shell 1 (any machine): expand the sweep into the queue
    repro dist submit --dist-dir /mnt/shared/queue \\
        --datasets cora_ml,citeseer --methods GCON,MLP \\
        --epsilons 0.5,1,2,4 --repeats 2

    # shells 2..N (one per machine): drain it cooperatively
    repro dist work --dist-dir /mnt/shared/queue \\
        --preparation-cache /mnt/shared/prep

    # shell 1 again: watch, then fold the shards into one store
    repro dist status --dist-dir /mnt/shared/queue
    repro dist merge  --dist-dir /mnt/shared/queue --output results/sweep.jsonl

Killing a worker (or a whole machine) mid-run is safe: its lease expires
after ``--lease-ttl`` seconds without a heartbeat, a surviving worker
re-claims the group and recomputes it from the deterministic cell seeds,
and the merge deduplicates — no lost cells, no double-counted cells.
``repro sweep --dist-dir DIR --jobs N`` wraps submit + N local workers +
merge in one command.

This script demonstrates the whole cycle on one machine: it submits a
small sweep into a temporary queue, drains it with two spawned worker
processes, crashes one of them on purpose, merges, and checks the result
against an in-process reference run.

Run with:  python examples/distributed_sweep.py [--jobs 2] [--scale 0.08]
"""

from __future__ import annotations

import argparse
import os
import signal
import tempfile
import time
from pathlib import Path

from repro.distributed import Coordinator, SweepSpec, start_local_workers
from repro.evaluation.reporting import render_table
from repro.evaluation.runner import aggregate_results
from repro.runtime import JsonlResultStore, ParallelExperimentRunner
from repro.runtime.workers import clear_worker_memos


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=2, help="local worker processes")
    parser.add_argument("--scale", type=float, default=0.08,
                        help="graph down-scaling factor in (0, 1]")
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--keep", action="store_true",
                        help="print the queue directory and keep it around")
    args = parser.parse_args()

    spec = SweepSpec(
        methods=("GCON", "MLP"), datasets=("cora_ml",),
        epsilons=(0.5, 1.0, 2.0, 4.0), repeats=args.repeats, seed=args.seed,
        scale=args.scale, epochs=40, encoder_epochs=60,
    )

    root = Path(tempfile.mkdtemp(prefix="repro-dist-"))
    queue_dir = root / "queue"
    coordinator = Coordinator(queue_dir, lease_ttl=2.0)
    report = coordinator.submit(spec)
    print(f"submitted into {queue_dir}: {report.summary()}")

    start = time.perf_counter()
    workers = start_local_workers(queue_dir, jobs=args.jobs, lease_ttl=2.0,
                                  poll_interval=0.05)
    if len(workers) > 1:
        # Sabotage: SIGKILL one worker as soon as it holds a lease, to show
        # crash recovery (lease expiry -> re-claim) in action.
        victim = workers[0]
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if list(coordinator.queue.leases_dir.glob("*.lease")) \
                    or coordinator.queue.done_ids():
                break
            time.sleep(0.01)
        os.kill(victim.pid, signal.SIGKILL)
        print(f"killed worker pid {victim.pid} mid-run; "
              f"its lease will expire and be re-claimed")
    for process in workers:
        process.join()
    elapsed = time.perf_counter() - start

    merge = coordinator.merge(root / "merged.jsonl")
    print(merge.summary())
    results = JsonlResultStore(merge.output).load()

    # The reference: the exact same spec through the in-process engine.
    clear_worker_memos()
    reference = ParallelExperimentRunner(spec.cell_runner(),
                                         jobs=1).run(spec.expand())
    matches = [(r.method, r.dataset, r.epsilon, r.repeat, r.micro_f1)
               for r in results] == \
              [(r.method, r.dataset, r.epsilon, r.repeat, r.micro_f1)
               for r in reference]
    print(f"merged store == single-process reference (bitwise): {matches}")

    rows = [
        [method, f"{epsilon:g}", f"{stats['mean']:.4f} +/- {stats['std']:.4f}",
         stats["count"]]
        for (method, _dataset, epsilon), stats
        in sorted(aggregate_results(results).items())
    ]
    print(render_table(["method", "epsilon", "micro-F1 (mean +/- std)", "n"],
                       rows, title=f"distributed sweep in {elapsed:.1f}s "
                                   f"({args.jobs} workers, 1 killed)"))
    if args.keep:
        print(f"\nqueue kept at: {queue_dir}")
    else:
        import shutil

        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    main()
