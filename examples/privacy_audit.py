"""Empirically audit edge privacy: attack GCON's release and lower-bound its epsilon.

Two complementary checks on the same trained models:

1. **Link-stealing attack** (the threat the paper defends against, Section I):
   the strongest of the eight He-et-al. similarity metrics is run against the
   node posteriors of the non-private GCN and of GCON.  The non-private GCN
   should be clearly attackable; GCON's private-inference outputs should push
   the attack towards chance (AUC 0.5).

2. **Distinguishing audit** of the released parameters: GCON is trained many
   times on a fixed graph and on an edge-level neighbouring graph; a threshold
   distinguisher on the released parameters yields a statistical lower bound
   on the privacy loss, which must stay below the claimed epsilon.

Run with:  python examples/privacy_audit.py [--epsilon 1.0] [--trials 12]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import GCON, GCONConfig, load_dataset
from repro.attacks import sample_edge_candidates
from repro.attacks.similarity import strongest_attack_auc
from repro.baselines import GCNClassifier
from repro.graphs.perturbations import sample_neighboring_pair
from repro.privacy.audit import PrivacyAuditor


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="cora_ml", help="dataset preset name")
    parser.add_argument("--scale", type=float, default=0.15,
                        help="graph down-scaling factor in (0, 1]")
    parser.add_argument("--epsilon", type=float, default=1.0, help="edge-DP epsilon")
    parser.add_argument("--pairs", type=int, default=300,
                        help="candidate node pairs for the link-stealing attack")
    parser.add_argument("--trials", type=int, default=12,
                        help="mechanism invocations per graph in the distinguishing audit "
                             "(keep small; every trial is a full GCON training run)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    delta = 1.0 / max(graph.num_edges, 1)
    print(f"Loaded {graph.name}: {graph.num_nodes} nodes, {graph.num_edges} edges")

    config = GCONConfig(epsilon=args.epsilon, delta=delta, alpha=0.8,
                        propagation_steps=(2,), encoder_dim=8, encoder_epochs=100,
                        use_pseudo_labels=True)

    # ----------------------------------------------------------------- #
    # 1. link-stealing attack on posteriors
    # ----------------------------------------------------------------- #
    pairs, labels = sample_edge_candidates(graph, num_pairs=args.pairs, rng=args.seed)

    gcn = GCNClassifier(epochs=120).fit(graph, seed=args.seed)
    metric, auc = strongest_attack_auc(gcn.decision_scores(graph), pairs, labels)
    print("\n-- link-stealing attack (higher AUC = more edge leakage) --")
    print(f"GCN (non-DP):  AUC = {auc:.3f}  (best metric: {metric})")

    gcon = GCON(config).fit(graph, seed=args.seed)
    metric, auc = strongest_attack_auc(
        gcon.decision_scores(graph, mode="private"), pairs, labels,
    )
    print(f"GCON eps={args.epsilon:g}: AUC = {auc:.3f}  (best metric: {metric})")
    print(f"GCON test micro-F1: {gcon.score(graph):.4f}")

    # ----------------------------------------------------------------- #
    # 2. distinguishing audit of the released parameters
    # ----------------------------------------------------------------- #
    print("\n-- distinguishing audit of the released parameters --")
    pair = sample_neighboring_pair(graph, kind="remove", rng=args.seed)
    print(f"neighbouring graphs differ in edge {pair.edge}")

    def mechanism(dataset, rng):
        seed = int(rng.integers(0, 2**31 - 1))
        return GCON(config).fit(dataset, seed=seed).theta_

    # Score = projection of the released parameters onto a fixed random
    # direction; any fixed post-processing is a valid distinguisher.
    direction = np.random.default_rng(123).normal(size=GCON(config).fit(
        graph, seed=args.seed).theta_.shape)

    auditor = PrivacyAuditor(mechanism, score_fn=lambda theta: float(np.sum(theta * direction)))
    result = auditor.run(pair.original, pair.neighbor, claimed_epsilon=args.epsilon,
                         delta=delta, trials=args.trials, seed=args.seed)
    print(f"claimed epsilon:             {result.claimed_epsilon:g}")
    print(f"empirical epsilon lower bound: {result.empirical_epsilon:.3f} "
          f"({result.trials} trials per graph)")
    print("consistent with the DP claim" if result.consistent
          else "WARNING: audit exceeded the claimed budget")


if __name__ == "__main__":
    main()
