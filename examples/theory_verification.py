"""Verify the paper's lemmas numerically on a concrete graph.

Walks through the theoretical building blocks of Theorem 1 and checks each of
them empirically:

* Lemma 1  — row sums, non-negativity and column-sum bounds of the
  (optionally clipped) propagation matrices;
* Lemma 2  — the closed-form sensitivity bound Psi(Z_m) dominates the
  empirical row-difference metric psi over sampled neighbouring graphs;
* Lemma 4  — the perturbed training objective is strongly convex, and its
  analytic gradient matches finite differences;
* Lemma 9  — the released parameter columns respect the c_theta norm cap.

Run with:  python examples/theory_verification.py [--scale 0.2]
"""

from __future__ import annotations

import argparse
import math

from repro import GCON, GCONConfig, load_dataset
from repro.core.clipping import clipped_transition_matrix, verify_lemma1_properties
from repro.core.losses import get_loss
from repro.core.objective import PerturbedObjective
from repro.core.theory import (
    check_convexity,
    check_gradient,
    column_norm_cap_violations,
    empirical_aggregate_sensitivity,
)
from repro.evaluation.reporting import render_table
from repro.utils.math import one_hot


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="cora_ml", help="dataset preset name")
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--epsilon", type=float, default=2.0)
    parser.add_argument("--pairs", type=int, default=8,
                        help="neighbouring graph pairs per Lemma-2 cell")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    print(f"Loaded {graph.name}: {graph.num_nodes} nodes, {graph.num_edges} edges\n")

    # ----------------------------------------------------------------- #
    # Lemma 1
    # ----------------------------------------------------------------- #
    print("-- Lemma 1: propagation-matrix properties --")
    for clip in (0.5, 0.2):
        transition = clipped_transition_matrix(graph.adjacency, clip=clip)
        checks = verify_lemma1_properties(transition, graph.degrees, clip=clip, max_power=3)
        status = "ok" if all(checks.values()) else f"VIOLATED: {checks}"
        print(f"clip p = {clip:g}: {status}")

    # ----------------------------------------------------------------- #
    # Lemma 2
    # ----------------------------------------------------------------- #
    print("\n-- Lemma 2: sensitivity bound vs empirical psi --")
    rows = []
    for alpha in (0.2, 0.8):
        for steps in (1, 2, math.inf):
            check = empirical_aggregate_sensitivity(
                graph, alpha=alpha, steps=steps, num_pairs=args.pairs,
                kind="either", rng=args.seed,
            )
            rows.append([
                f"{alpha:g}", "inf" if math.isinf(steps) else int(steps),
                f"{check.theoretical_bound:.4f}", f"{check.empirical_max:.4f}",
                "yes" if check.holds else "NO",
            ])
    print(render_table(["alpha", "m", "Psi bound", "psi max", "holds"], rows))

    # ----------------------------------------------------------------- #
    # Lemma 4
    # ----------------------------------------------------------------- #
    print("\n-- Lemma 4: convexity of the perturbed objective --")
    import numpy as np

    rng = np.random.default_rng(args.seed)
    features = rng.normal(size=(60, 8))
    features /= np.linalg.norm(features, axis=1, keepdims=True)
    labels = one_hot(rng.integers(0, graph.num_classes, size=60), graph.num_classes)
    objective = PerturbedObjective(
        features=features, labels_one_hot=labels,
        loss=get_loss("soft_margin", graph.num_classes),
        quadratic_coefficient=0.2, noise=0.1 * rng.normal(size=(8, graph.num_classes)),
    )
    print(f"midpoint convexity:        {check_convexity(objective, num_probes=20, rng=1)}")
    print(f"0.2-strong convexity:      "
          f"{check_convexity(objective, num_probes=20, strong_modulus=0.2, rng=2)}")
    print(f"gradient vs finite diff.:  {check_gradient(objective, num_probes=4, rng=3)}")

    # ----------------------------------------------------------------- #
    # Lemma 9 via a real GCON release
    # ----------------------------------------------------------------- #
    print("\n-- Lemma 9: released parameter norm cap --")
    config = GCONConfig(epsilon=args.epsilon, alpha=0.8, propagation_steps=(2,),
                        encoder_dim=8, encoder_epochs=100, use_pseudo_labels=True)
    model = GCON(config).fit(graph, seed=args.seed)
    cap = model.perturbation_.c_theta
    violations = column_norm_cap_violations(model.theta_, cap)
    print(f"c_theta = {cap:.4f}; columns exceeding the cap: {violations} "
          f"(allowed with probability <= delta = {model.perturbation_.delta:.2e})")
    print(f"test micro-F1 of the audited model: {model.score(graph):.4f}")


if __name__ == "__main__":
    main()
