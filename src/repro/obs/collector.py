"""The background telemetry collector ``repro serve --telemetry-dir`` runs.

One daemon thread per replica: every ``interval`` seconds it renders the
replica's own ``/metrics`` page **in process** (no HTTP round trip, no
socket in the data path), parses it back through the strict exposition
parser — so every scrape is also a validity check of the page — and appends
the samples to a :class:`~repro.obs.tsdb.TelemetryStore`.  After each
scrape it sweeps retention and, when an
:class:`~repro.obs.alerts.AlertEngine` is attached, runs one rule
evaluation — which is why an induced SLO breach fires within one scrape
interval and ``GET /alerts`` always serves the latest verdict.

The collector reads snapshots the metrics lock already copies for any
scraper; it never touches request state, so served scores are bitwise
identical with the collector on or off (pinned in CI's ``alerts-smoke``).
"""

from __future__ import annotations

import threading
import time


class TelemetryCollector:
    """Periodically scrape ``render()`` into ``store`` and evaluate rules.

    Parameters
    ----------
    store:
        The :class:`~repro.obs.tsdb.TelemetryStore` to append to.
    render:
        Zero-argument callable returning one exposition page (typically
        ``lambda: render_server_metrics(service, server=..., tracer=...)``).
    interval:
        Seconds between scrapes.
    replica:
        The replica id stamped on every stored sample.
    engine:
        Optional :class:`~repro.obs.alerts.AlertEngine` evaluated after
        each scrape.
    clock:
        Injectable time source for the sample timestamps.
    """

    def __init__(self, store, render, *, interval: float = 5.0,
                 replica: str = "local", engine=None, clock=time.time):
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.store = store
        self.render = render
        self.interval = float(interval)
        self.replica = replica
        self.engine = engine
        self.clock = clock
        self.scrapes = 0
        self.errors = 0
        self.last_error: str | None = None
        self._thread: threading.Thread | None = None
        self._stopping = threading.Event()

    def collect_once(self) -> int:
        """One scrape → store → retention sweep → rule evaluation; returns
        the number of records appended (the deterministic test entry)."""
        text = self.render()
        appended = self.store.append_page(text, replica=self.replica,
                                          at=self.clock())
        self.store.sweep_retention()
        if self.engine is not None:
            self.engine.evaluate(self.clock())
        self.scrapes += 1
        return appended

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "TelemetryCollector":
        if self._thread is None:
            self._stopping.clear()
            self._thread = threading.Thread(
                target=self._loop, daemon=True, name="repro-telemetry")
            self._thread.start()
        return self

    def close(self) -> None:
        if self._thread is not None:
            self._stopping.set()
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "TelemetryCollector":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _loop(self) -> None:
        while not self._stopping.wait(self.interval):
            try:
                self.collect_once()
            except Exception as error:  # telemetry must never kill serving
                self.errors += 1
                self.last_error = repr(error)

    def stats(self) -> dict:
        return {"scrapes": self.scrapes, "errors": self.errors,
                "last_error": self.last_error,
                "interval_seconds": self.interval}
