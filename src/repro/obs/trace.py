"""Request tracing: spans, context propagation and a bounded trace store.

A *trace* is one logical request — a ``/v1/predict`` hitting a replica, or a
distributed worker executing one cell group — decomposed into *spans*: named,
timed segments (``parse``, ``queue``, ``compute``, ...) linked by
``parent_id`` into a tree.  The design constraints, in order:

1. **Observe, never touch.**  Spans carry monotonic timestamps and attrs
   around the data plane; they never see scores, so every bitwise-equivalence
   pin holds verbatim with tracing on (pinned by ``tests/test_obs_http.py``).
2. **Cheap enough to be on by default.**  Starting/ending a span is a dict
   append plus two ``time.monotonic_ns()`` reads under a lock that is never
   held across user code; the serving path's hot spans are reconstructed from
   timestamps the batcher stamps on its tickets anyway, so the selector loop
   pays the tracer only once per request, not per stage.
3. **Bounded memory.**  Finished traces land in a ring-buffer
   :class:`TraceStore` (oldest evicted first); traces whose root never ends
   (a client that vanished mid-request) are capped by ``max_active`` and
   flushed out as ``incomplete`` rather than accumulating forever.

Cross-process propagation uses one header, ``X-Repro-Trace:
<trace_id>-<span_id>``: the sender puts the *calling* span's ids on the wire,
the receiver starts its local root with that ``trace_id`` and
``parent_id=<span_id>``, and a fleet-proxied predict becomes a single trace
spanning two replicas.  Within a process, ``contextvars`` carry the current
span so sequential code (the distributed worker) nests spans implicitly; the
selector HTTP loop, which interleaves many requests on one thread, threads
span objects through its parked-connection state explicitly instead.

Span timestamps are ``time.monotonic_ns()`` — comparable within one process
only.  Merging spans fetched from two replicas therefore preserves the tree
(parent links are explicit) but not a global timeline; the CLI tree renderer
orders siblings per replica and leans on the links for nesting.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
import threading
import time
from collections import OrderedDict

TRACE_HEADER = "X-Repro-Trace"

_HEX = set("0123456789abcdef")

_current_span: contextvars.ContextVar = contextvars.ContextVar(
    "repro_current_span", default=None)


def new_trace_id() -> str:
    return os.urandom(16).hex()


def new_span_id() -> str:
    return os.urandom(8).hex()


def current_span():
    """The span the calling context is inside, or ``None``."""
    return _current_span.get()


def current_trace_id() -> str | None:
    """The active trace id, or ``None`` — what structured logging emits."""
    span = _current_span.get()
    return span.trace_id if span is not None else None


def format_trace_header(span: "Span") -> str:
    """The ``X-Repro-Trace`` wire value continuing the trace under ``span``."""
    return f"{span.trace_id}-{span.span_id}"


def parse_trace_header(value: str | None) -> tuple[str, str] | None:
    """``(trace_id, parent_span_id)`` from a header value, ``None`` if absent
    or malformed (a garbage header starts a fresh trace, never an error)."""
    if not value:
        return None
    trace_id, sep, span_id = value.strip().rpartition("-")
    if not sep or len(trace_id) != 32 or len(span_id) != 16:
        return None
    if not (set(trace_id) <= _HEX and set(span_id) <= _HEX):
        return None
    return trace_id, span_id


class Span:
    """One named, timed segment of a trace.

    ``end_ns`` stays 0 while open.  ``attrs`` is a plain mutable dict the
    instrumentation points annotate (http status, row counts, replica ids);
    values must be JSON-serialisable because ``/debug/traces`` ships them.
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "start_ns",
                 "end_ns", "attrs", "status")

    def __init__(self, trace_id: str, span_id: str, parent_id: str | None,
                 name: str, start_ns: int, attrs: dict | None = None):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_ns = int(start_ns)
        self.end_ns = 0
        self.attrs = dict(attrs) if attrs else {}
        self.status = "ok"

    @property
    def duration_ms(self) -> float:
        if not self.end_ns:
            return 0.0
        return (self.end_ns - self.start_ns) / 1e6

    def as_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ms": round(self.duration_ms, 4),
            "status": self.status,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, trace={self.trace_id[:8]}, "
                f"span={self.span_id}, parent={self.parent_id})")


class TraceStore:
    """A bounded ring of finished traces, newest kept, oldest evicted.

    Keys are trace ids; ``add`` of an id already present merges the span
    lists (the failover path can finish a trace in two installments).
    Thread-safe: the store is written from the selector loop, batcher
    threads and worker threads, and read by ``/debug/traces``.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._traces: OrderedDict[str, dict] = OrderedDict()

    def add(self, trace: dict) -> None:
        trace_id = trace["trace_id"]
        with self._lock:
            existing = self._traces.pop(trace_id, None)
            if existing is not None:
                merged_spans = existing["spans"] + trace["spans"]
                trace = {**existing, **trace, "spans": merged_spans,
                         "span_count": len(merged_spans)}
            self._traces[trace_id] = trace
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)

    def get(self, trace_id: str) -> dict | None:
        with self._lock:
            return self._traces.get(trace_id)

    def recent(self, limit: int = 50) -> list[dict]:
        """Newest-first summaries (no span bodies) for ``/debug/traces``."""
        with self._lock:
            traces = list(self._traces.values())
        summaries = []
        for trace in reversed(traces[-limit:] if limit else traces):
            summaries.append({key: trace[key]
                              for key in ("trace_id", "root", "span_count",
                                          "duration_ms", "status")
                              if key in trace})
        return summaries

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


class StageMetrics:
    """Per-stage-name duration histograms fed by finished spans.

    Rendered into ``/metrics`` as ``repro_stage_duration_seconds{stage=...}``
    — the trace-derived aggregate view: where predict time goes across *all*
    requests, not just the ones whose traces are still in the ring.
    """

    def __init__(self):
        # Imported lazily: repro.serving.httpd imports this module, so a
        # top-level import of repro.serving.metrics would be circular.
        from repro.serving.metrics import LATENCY_BUCKETS, Histogram
        self._histogram_factory = lambda: Histogram(LATENCY_BUCKETS)
        self._lock = threading.Lock()
        self._stages: dict[str, object] = {}

    def observe(self, stage: str, seconds: float) -> None:
        with self._lock:
            histogram = self._stages.get(stage)
            if histogram is None:
                histogram = self._stages[stage] = self._histogram_factory()
            histogram.observe(max(0.0, seconds))

    def export(self) -> dict:
        """Per stage: ``(bounds, counts, sum, count)`` copied under the lock
        — the raw material of the Prometheus renderer."""
        with self._lock:
            return {stage: {"bounds": histogram.bounds,
                            "counts": tuple(histogram.counts),
                            "sum": histogram.total,
                            "count": histogram.count}
                    for stage, histogram in sorted(self._stages.items())}

    def as_dict(self) -> dict:
        with self._lock:
            return {stage: histogram.as_dict(scale=1e3)
                    for stage, histogram in sorted(self._stages.items())}


class Tracer:
    """Creates spans, tracks open traces, exports finished ones.

    One tracer per server (or one process-global one for worker code, see
    :func:`get_tracer`).  A trace is *open* from ``start_trace`` until its
    root span ends; ending the root assembles every span registered under
    the trace id into one record and hands it to the :class:`TraceStore`.
    Ending any span feeds its duration into :class:`StageMetrics` keyed by
    span name.
    """

    def __init__(self, store: TraceStore | None = None, *,
                 max_active: int = 256, stages: StageMetrics | None = None,
                 clock_ns=time.monotonic_ns):
        if max_active < 1:
            raise ValueError(f"max_active must be >= 1, got {max_active}")
        self.store = store if store is not None else TraceStore()
        self.stages = stages if stages is not None else StageMetrics()
        self.clock_ns = clock_ns
        self.max_active = int(max_active)
        self._lock = threading.Lock()
        # trace_id -> (root span_id, [spans]); insertion-ordered so the
        # oldest never-finished trace is the one flushed at the cap.
        self._active: OrderedDict[str, tuple[str, list[Span]]] = OrderedDict()
        self.traces_started = 0
        self.traces_finished = 0
        self.traces_flushed = 0  # hit max_active before their root ended

    # ------------------------------------------------------------------ #
    # creating spans
    # ------------------------------------------------------------------ #
    def start_trace(self, name: str, *, trace_id: str | None = None,
                    parent_id: str | None = None,
                    attrs: dict | None = None) -> Span:
        """Open a trace: a root span, optionally continuing a remote parent
        (``trace_id``/``parent_id`` from a parsed ``X-Repro-Trace``)."""
        span = Span(trace_id or new_trace_id(), new_span_id(), parent_id,
                    name, self.clock_ns(), attrs)
        overflow = None
        with self._lock:
            self.traces_started += 1
            if span.trace_id in self._active:
                # A second root on a live trace id (one replica proxying to
                # itself cannot happen, but be safe): join, don't clobber.
                self._active[span.trace_id][1].append(span)
            else:
                if len(self._active) >= self.max_active:
                    _evicted_id, overflow = self._active.popitem(last=False)
                    self.traces_flushed += 1
                self._active[span.trace_id] = (span.span_id, [span])
        if overflow is not None:
            self._export(overflow[1], incomplete=True)
        return span

    def start_span(self, name: str, *, parent: Span,
                   attrs: dict | None = None) -> Span:
        """Open a child span under ``parent`` (explicit-parent form, used by
        the selector loop where contextvars cannot follow the request)."""
        span = Span(parent.trace_id, new_span_id(), parent.span_id, name,
                    self.clock_ns(), attrs)
        self._register(span)
        return span

    def add_span(self, name: str, *, parent: Span, start_ns: int, end_ns: int,
                 attrs: dict | None = None) -> Span | None:
        """Record an already-finished child span from captured timestamps
        (how the ticket's queue/batch/compute stages reach the trace).
        Invalid or unset timestamps are dropped, never raised — a failed
        batch may have stamped only part of its lifecycle."""
        start_ns, end_ns = int(start_ns), int(end_ns)
        if start_ns <= 0 or end_ns < start_ns:
            return None
        span = Span(parent.trace_id, new_span_id(), parent.span_id, name,
                    start_ns, attrs)
        span.end_ns = end_ns
        self._register(span)
        self.stages.observe(name, (end_ns - start_ns) / 1e9)
        return span

    def _register(self, span: Span) -> None:
        with self._lock:
            entry = self._active.get(span.trace_id)
            if entry is not None:
                entry[1].append(span)
            # else: the trace was already exported (root ended first, or it
            # was flushed at the cap) — drop the straggler.

    # ------------------------------------------------------------------ #
    # ending spans / exporting traces
    # ------------------------------------------------------------------ #
    def end(self, span: Span, *, status: str | None = None) -> None:
        """Close ``span``; closing a trace's root exports the whole trace."""
        if span.end_ns:  # idempotent: error paths may end defensively
            return
        span.end_ns = self.clock_ns()
        if status is not None:
            span.status = status
        self.stages.observe(span.name, (span.end_ns - span.start_ns) / 1e9)
        finished = None
        with self._lock:
            entry = self._active.get(span.trace_id)
            if entry is not None and entry[0] == span.span_id:
                del self._active[span.trace_id]
                self.traces_finished += 1
                finished = entry[1]
        if finished is not None:
            self._export(finished)

    def _export(self, spans: list[Span], *, incomplete: bool = False) -> None:
        root = spans[0]
        trace = {
            "trace_id": root.trace_id,
            "root": root.name,
            "root_span_id": root.span_id,
            "status": root.status,
            "duration_ms": round(root.duration_ms, 4),
            "span_count": len(spans),
            "spans": [span.as_dict() for span in spans],
        }
        if incomplete:
            trace["incomplete"] = True
        self.store.add(trace)

    # ------------------------------------------------------------------ #
    # context-local use (sequential code: workers, library callers)
    # ------------------------------------------------------------------ #
    @contextlib.contextmanager
    def activate(self, span: Span):
        """Make ``span`` the context's current span without owning its end
        (the caller still ends it — the worker's root span pattern)."""
        token = _current_span.set(span)
        try:
            yield span
        finally:
            _current_span.reset(token)

    @contextlib.contextmanager
    def span(self, name: str, attrs: dict | None = None):
        """Context-managed span: nests under the context's current span, or
        opens a fresh trace when there is none; always ended on exit, with
        ``status="error"`` if the body raised."""
        parent = _current_span.get()
        if parent is None:
            span = self.start_trace(name, attrs=attrs)
        else:
            span = self.start_span(name, parent=parent, attrs=attrs)
        token = _current_span.set(span)
        try:
            yield span
        except BaseException:
            _current_span.reset(token)
            self.end(span, status="error")
            raise
        else:
            _current_span.reset(token)
            self.end(span)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def active_count(self) -> int:
        with self._lock:
            return len(self._active)

    def counters(self) -> dict:
        with self._lock:
            return {"traces_started": self.traces_started,
                    "traces_finished": self.traces_finished,
                    "traces_flushed": self.traces_flushed,
                    "traces_active": len(self._active)}


# --------------------------------------------------------------------------- #
# the process-global tracer (worker code, logging)
# --------------------------------------------------------------------------- #
_default_tracer: Tracer | None = None
_default_lock = threading.Lock()


def get_tracer() -> Tracer:
    """The lazily-created process-global tracer.

    Servers build their own :class:`Tracer` (one store per frontend); code
    without a natural owner — the distributed worker, library callers —
    shares this one.
    """
    global _default_tracer
    with _default_lock:
        if _default_tracer is None:
            _default_tracer = Tracer()
        return _default_tracer


def set_tracer(tracer: Tracer | None) -> None:
    """Replace the process-global tracer (tests install a fresh one)."""
    global _default_tracer
    with _default_lock:
        _default_tracer = tracer
