"""Declarative alerting over the telemetry store: burn rates, holds, state.

The rule engine closes the observe→detect half of the loop the
:class:`~repro.serving.slo.SloController` opened: the controller *tunes* for
a target p99 and accounts every request against the SLO error budget
(``repro_slo_good_requests_total`` / ``repro_slo_bad_requests_total``);
this module *watches* those counters — retained by
:class:`~repro.obs.tsdb.TelemetryStore` — and decides when a human should
be paged.

Rule kinds
----------
``burn_rate``
    The SRE multi-window burn-rate test over the error budget.  With an
    objective of 0.99 ("99% of requests meet the target p99"), the budget
    is the remaining 1%; the *burn rate* of a window is
    ``(bad / total) / (1 - objective)`` — 1x means spending the budget
    exactly at the sustainable pace, 100x means every request is bad.  The
    rule fires only when **both** a fast window (default 5m — catches the
    spike quickly) and a slow window (default 1h — suppresses blips that
    cannot meaningfully dent the budget) exceed the threshold; it resolves
    as soon as the fast window recovers.  Evaluated per ``model`` label.
``ratio``
    ``window_sum(numerator) / window_sum(denominator)`` over one window,
    compared against a threshold — shed rate, incomplete-trace ratio.
``instant``
    A live signal sampled outside the store — the fleet lease census
    (replicas down) or the distributed queue (quarantined groups) —
    supplied to the engine as a named callable.
``gauge``
    The latest retained gauge value compared against a threshold.

Every rule carries a ``for:`` hold: the condition must stay true for that
long before the alert transitions ``pending → firing`` (``0`` fires on the
first evaluation).  When the condition clears, ``firing → resolved`` is
recorded and the state returns to ``ok``.  Transitions append to a JSONL
history log so "when did this last page" survives restarts.

Rules load from a JSON file (``{"rules": [{...}]}``; ``"for"`` is accepted
as an alias for ``for_seconds``) or come from :func:`default_rules`.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

GOOD_METRIC = "repro_slo_good_requests_total"
BAD_METRIC = "repro_slo_bad_requests_total"

_KINDS = ("burn_rate", "ratio", "instant", "gauge")
_OPS = {
    ">": lambda value, threshold: value > threshold,
    ">=": lambda value, threshold: value >= threshold,
    "<": lambda value, threshold: value < threshold,
    "<=": lambda value, threshold: value <= threshold,
}
_STATE_ORDER = {"firing": 0, "pending": 1, "ok": 2}


@dataclass(frozen=True)
class AlertRule:
    """One declarative rule; only the fields of its ``kind`` are read."""

    name: str
    kind: str
    severity: str = "page"
    for_seconds: float = 0.0
    threshold: float = 0.0
    # burn_rate
    fast_window: float = 300.0
    slow_window: float = 3600.0
    objective: float = 0.99
    good_metric: str = GOOD_METRIC
    bad_metric: str = BAD_METRIC
    group_by: str = "model"
    min_samples: float = 1.0
    # ratio / gauge
    numerator: str = ""
    denominator: str = ""
    metric: str = ""
    window: float = 300.0
    # instant / gauge
    signal: str = ""
    op: str = ">"

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"unknown alert rule kind {self.kind!r} "
                             f"(expected one of {_KINDS})")
        if self.op not in _OPS:
            raise ValueError(f"unknown comparator {self.op!r}")
        if self.kind == "burn_rate" and not 0.0 < self.objective < 1.0:
            raise ValueError("burn_rate objective must be in (0, 1)")
        if self.kind == "ratio" and not (self.numerator and self.denominator):
            raise ValueError(f"ratio rule {self.name!r} needs numerator "
                             f"and denominator metrics")
        if self.kind == "instant" and not self.signal:
            raise ValueError(f"instant rule {self.name!r} needs a signal")
        if self.kind == "gauge" and not self.metric:
            raise ValueError(f"gauge rule {self.name!r} needs a metric")


@dataclass
class AlertStatus:
    """Mutable per-instance state (one rule may fan out per model)."""

    rule: str
    labels: dict
    severity: str
    state: str = "ok"
    since: float | None = None      # condition first observed true
    fired_at: float | None = None
    resolved_at: float | None = None
    value: float | None = None
    detail: str = ""

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


def default_rules(*, objective: float = 0.99, fast_window: float = 300.0,
                  slow_window: float = 3600.0,
                  burn_threshold: float = 4.0) -> list[AlertRule]:
    """The stock rule set, parameterised by the SLO the controller runs."""
    return [
        AlertRule(name="slo-burn-rate", kind="burn_rate", severity="page",
                  objective=objective, fast_window=fast_window,
                  slow_window=slow_window, threshold=burn_threshold),
        AlertRule(name="shed-rate", kind="ratio", severity="ticket",
                  numerator="repro_shed_requests_total",
                  denominator="repro_requests_total",
                  window=300.0, threshold=0.05, for_seconds=60.0),
        AlertRule(name="incomplete-traces", kind="ratio", severity="ticket",
                  numerator="repro_traces_flushed",
                  denominator="repro_traces_started",
                  window=900.0, threshold=0.01, for_seconds=300.0),
        AlertRule(name="replica-down", kind="instant", severity="page",
                  signal="fleet_replicas_down", threshold=0.0, op=">"),
        AlertRule(name="worker-quarantine", kind="instant", severity="ticket",
                  signal="dist_groups_quarantined", threshold=0.0, op=">"),
    ]


_JSON_ALIASES = {"for": "for_seconds"}


def rule_from_dict(data: dict) -> AlertRule:
    fields = {f.name for f in dataclasses.fields(AlertRule)}
    kwargs = {}
    for key, value in data.items():
        key = _JSON_ALIASES.get(key, key)
        if key not in fields:
            raise ValueError(f"unknown alert rule key {key!r} "
                             f"in rule {data.get('name', '?')!r}")
        kwargs[key] = value
    if "name" not in kwargs or "kind" not in kwargs:
        raise ValueError(f"alert rule needs at least name and kind: {data!r}")
    return AlertRule(**kwargs)


def load_rules(path) -> list[AlertRule]:
    """Load ``{"rules": [{...}]}`` from a JSON file (strict: unknown keys
    and kinds raise, so a typo'd rule file fails CI instead of never
    firing)."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"malformed alert rules file {path}: {exc}") from exc
    rules_data = payload.get("rules") if isinstance(payload, dict) else None
    if not isinstance(rules_data, list) or not rules_data:
        raise ValueError(f"alert rules file {path} must contain a "
                         f"non-empty \"rules\" list")
    rules = [rule_from_dict(entry) for entry in rules_data]
    names = [rule.name for rule in rules]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate rule names in {path}: {names}")
    return rules


@dataclass
class _Instance:
    labels: dict
    value: float
    active: bool
    detail: str = ""


class AlertEngine:
    """Evaluates rules against a :class:`TelemetryStore` and tracks the
    ``ok → pending → firing → resolved`` lifecycle per alert instance.

    ``instants`` maps signal names to zero-argument callables sampled at
    evaluation time (fleet census, dist-queue census).  ``history_path``
    appends one JSON line per firing/resolved transition.  Thread-safe:
    the collector thread evaluates while the HTTP frontend snapshots
    :meth:`as_dict`.
    """

    def __init__(self, rules, store, *, instants: dict | None = None,
                 clock=time.time, history_path=None):
        self.rules = list(rules)
        self.store = store
        self.instants = dict(instants or {})
        self.clock = clock
        self.history_path = Path(history_path) if history_path else None
        self._statuses: dict[tuple, AlertStatus] = {}
        self._lock = threading.Lock()
        self.evaluated_at: float | None = None

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, now: float | None = None) -> list[dict]:
        """One evaluation pass at ``now``; returns the status snapshot."""
        now = float(self.clock() if now is None else now)
        with self._lock:
            for rule in self.rules:
                instances = self._instances(rule, now)
                seen = set()
                for instance in instances:
                    key = (rule.name,
                           tuple(sorted(instance.labels.items())))
                    seen.add(key)
                    status = self._statuses.get(key)
                    if status is None:
                        status = AlertStatus(rule=rule.name,
                                             labels=dict(instance.labels),
                                             severity=rule.severity)
                        self._statuses[key] = status
                    self._step(rule, status, instance, now)
                # An instance that vanished (model retired, replica gone)
                # is a cleared condition, not a stuck alert.
                for key, status in self._statuses.items():
                    if key[0] == rule.name and key not in seen:
                        self._step(rule, status, _Instance(
                            status.labels, 0.0, False, "series gone"), now)
            self.evaluated_at = now
            return self._snapshot()

    def replay(self, times) -> list[dict]:
        """Evaluate at each timestamp in order — how one-shot ``repro
        alerts`` reconstructs ``for:`` holds from retained history."""
        result: list[dict] = []
        for t in sorted(times):
            result = self.evaluate(t)
        return result

    def _step(self, rule: AlertRule, status: AlertStatus,
              instance: _Instance, now: float) -> None:
        status.value = instance.value
        status.detail = instance.detail
        if instance.active:
            if status.state == "ok":
                status.state = "pending"
                status.since = now
            if status.state == "pending" and \
                    now - status.since >= rule.for_seconds:
                status.state = "firing"
                status.fired_at = now
                self._record(status, "firing", now)
        else:
            if status.state == "firing":
                status.state = "ok"
                status.resolved_at = now
                self._record(status, "resolved", now)
            elif status.state == "pending":
                status.state = "ok"
            status.since = None

    def _record(self, status: AlertStatus, event: str, now: float) -> None:
        if self.history_path is None:
            return
        line = json.dumps({
            "t": now, "rule": status.rule, "labels": status.labels,
            "event": event, "value": status.value,
            "severity": status.severity, "detail": status.detail,
        }, separators=(",", ":"))
        try:
            self.history_path.parent.mkdir(parents=True, exist_ok=True)
            with self.history_path.open("a", encoding="utf-8") as handle:
                handle.write(line + "\n")
        except OSError:
            pass  # alerting must not die because the disk did

    # ------------------------------------------------------------------ #
    # rule kinds
    # ------------------------------------------------------------------ #
    def _instances(self, rule: AlertRule, now: float) -> list[_Instance]:
        if rule.kind == "burn_rate":
            return self._eval_burn_rate(rule, now)
        if rule.kind == "ratio":
            return self._eval_ratio(rule, now)
        if rule.kind == "instant":
            return self._eval_instant(rule)
        return self._eval_gauge(rule, now)

    def _eval_burn_rate(self, rule: AlertRule, now: float) -> list[_Instance]:
        by = rule.group_by
        fast_good = self.store.window_sum(rule.good_metric, by=by,
                                          window=rule.fast_window, at=now)
        fast_bad = self.store.window_sum(rule.bad_metric, by=by,
                                         window=rule.fast_window, at=now)
        slow_good = self.store.window_sum(rule.good_metric, by=by,
                                          window=rule.slow_window, at=now)
        slow_bad = self.store.window_sum(rule.bad_metric, by=by,
                                         window=rule.slow_window, at=now)
        budget = 1.0 - rule.objective
        instances = []
        for group in sorted(set(fast_good) | set(fast_bad) |
                            set(slow_good) | set(slow_bad)):
            labels = {by: group}
            fast_total = fast_good.get(group, 0.0) + fast_bad.get(group, 0.0)
            slow_total = slow_good.get(group, 0.0) + slow_bad.get(group, 0.0)
            if fast_total < rule.min_samples or \
                    slow_total < rule.min_samples:
                instances.append(_Instance(labels, 0.0, False,
                                           "insufficient data"))
                continue
            fast_burn = (fast_bad.get(group, 0.0) / fast_total) / budget
            slow_burn = (slow_bad.get(group, 0.0) / slow_total) / budget
            active = fast_burn > rule.threshold and \
                slow_burn > rule.threshold
            detail = (f"burn {fast_burn:.1f}x/{int(rule.fast_window)}s "
                      f"and {slow_burn:.1f}x/{int(rule.slow_window)}s "
                      f"(threshold {rule.threshold:g}x of the "
                      f"{budget:.2%} budget)")
            instances.append(_Instance(labels, min(fast_burn, slow_burn),
                                       active, detail))
        return instances

    def _eval_ratio(self, rule: AlertRule, now: float) -> list[_Instance]:
        numerator = self.store.window_sum(rule.numerator,
                                          window=rule.window, at=now)
        denominator = self.store.window_sum(rule.denominator,
                                            window=rule.window, at=now)
        if denominator < rule.min_samples:
            return [_Instance({}, 0.0, False, "insufficient data")]
        value = numerator / denominator
        detail = (f"{rule.numerator}/{rule.denominator} = {value:.4f} "
                  f"over {int(rule.window)}s (threshold {rule.threshold:g})")
        return [_Instance({}, value, value > rule.threshold, detail)]

    def _eval_instant(self, rule: AlertRule) -> list[_Instance]:
        source = self.instants.get(rule.signal)
        if source is None:
            return [_Instance({}, 0.0, False,
                              f"signal {rule.signal} unavailable")]
        try:
            value = float(source())
        except Exception as exc:  # census may race a teardown
            return [_Instance({}, 0.0, False,
                              f"signal {rule.signal} failed: {exc}")]
        active = _OPS[rule.op](value, rule.threshold)
        detail = f"{rule.signal} = {value:g} ({rule.op} {rule.threshold:g})"
        return [_Instance({}, value, active, detail)]

    def _eval_gauge(self, rule: AlertRule, now: float) -> list[_Instance]:
        value = self.store.latest(rule.metric, at=now, max_age=rule.window)
        if value is None:
            return [_Instance({}, 0.0, False, "no data")]
        active = _OPS[rule.op](float(value), rule.threshold)
        detail = f"{rule.metric} = {value:g} ({rule.op} {rule.threshold:g})"
        return [_Instance({}, float(value), active, detail)]

    # ------------------------------------------------------------------ #
    # snapshots
    # ------------------------------------------------------------------ #
    def _snapshot(self) -> list[dict]:
        statuses = sorted(
            self._statuses.values(),
            key=lambda s: (_STATE_ORDER.get(s.state, 9), s.rule,
                           sorted(s.labels.items())))
        return [status.as_dict() for status in statuses]

    def statuses(self) -> list[dict]:
        with self._lock:
            return self._snapshot()

    def firing(self) -> list[dict]:
        return [status for status in self.statuses()
                if status["state"] == "firing"]

    def as_dict(self) -> dict:
        """The ``GET /alerts`` / ``repro alerts`` payload."""
        with self._lock:
            alerts = self._snapshot()
        return {
            "evaluated_at": self.evaluated_at,
            "rules": [rule.name for rule in self.rules],
            "firing": sum(1 for status in alerts
                          if status["state"] == "firing"),
            "alerts": alerts,
        }


def fleet_down_signal(fleet_dir):
    """An ``instants`` callable: expired (heartbeat-lapsed) replicas in the
    fleet lease census."""
    from repro.serving.fleet import FleetView

    def signal() -> float:
        status = FleetView(fleet_dir).status()
        return float(sum(1 for replica in status.replicas if replica.expired))

    return signal


def quarantine_signal(dist_dir):
    """An ``instants`` callable: quarantined groups in a distributed sweep
    queue (workers exhausted their retry budget)."""
    from repro.distributed.queue import WorkQueue

    def signal() -> float:
        return float(len(WorkQueue(dist_dir).quarantined_ids()))

    return signal


def format_alert_table(payload: dict) -> str:
    """Human-readable rendering shared by ``repro alerts`` and the
    dashboard's alert pane."""
    alerts = payload.get("alerts", [])
    if not alerts:
        return "no alert instances (no rules matched any data)"
    lines = []
    for status in alerts:
        labels = ",".join(f"{k}={v}" for k, v in
                          sorted(status["labels"].items()))
        name = status["rule"] + (f"{{{labels}}}" if labels else "")
        value = status.get("value")
        value_text = "-" if value is None else f"{value:.4g}"
        lines.append(f"  {status['state'].upper():<8} {name:<44} "
                     f"{status['severity']:<7} value={value_text:<10} "
                     f"{status.get('detail', '')}")
    firing = payload.get("firing", 0)
    header = (f"{len(alerts)} alert instance(s), {firing} firing "
              f"(evaluated at {payload.get('evaluated_at')})")
    return "\n".join([header] + lines)
