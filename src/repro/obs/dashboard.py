"""The ``repro fleet watch`` terminal dashboard.

Pure rendering over the same primitives everything else uses: a
:class:`~repro.obs.tsdb.TelemetryStore` (in-memory — the watcher scrapes
live replicas each tick and keeps only its own short window) queried with
the windowed verbs, a :class:`~repro.serving.fleet.FleetView` census, and
an optional :class:`~repro.obs.alerts.AlertEngine` whose verdicts are shown
verbatim.  :func:`render_dashboard` takes those plus an explicit ``now``
and returns one frame as text, so a single golden test covers the whole
surface without a terminal.
"""

from __future__ import annotations

import time

REQUESTS_METRIC = "repro_requests_total"
SHED_METRIC = "repro_shed_requests_total"
LATENCY_METRIC = "repro_request_latency_seconds"
UPTIME_METRIC = "repro_uptime_seconds"
RSS_METRIC = "repro_process_resident_memory_bytes"
BUDGET_METRIC = "repro_slo_error_budget_remaining_ratio"
BURN_METRIC = "repro_slo_burn_rate"
TARGET_METRIC = "repro_slo_target_p99_seconds"


def _fmt(value, spec: str = ".2f", dash: str = "-") -> str:
    if value is None:
        return dash
    return format(value, spec)


def _age(seconds) -> str:
    if seconds is None:
        return "-"
    seconds = int(seconds)
    if seconds < 60:
        return f"{seconds}s"
    if seconds < 3600:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"


def render_dashboard(status, store, engine=None, *, now=None,
                     window: float = 60.0, unreachable=()) -> str:
    """One dashboard frame: replica table, model table, firing alerts.

    ``status`` is a :class:`~repro.serving.fleet.FleetStatus`; ``store`` the
    telemetry store the watcher fed this tick; ``engine`` an already
    evaluated alert engine or None; ``unreachable`` the replica ids whose
    scrape failed this tick (live lease, dead endpoint).
    """
    now = float(time.time() if now is None else now)
    unreachable = set(unreachable)
    live = [replica.replica_id for replica in status.live]
    firing = len(engine.firing()) if engine is not None else 0
    clock = time.strftime("%H:%M:%S", time.localtime(now))

    lines = [f"fleet watch — {len(live)} live / {len(status.replicas)} "
             f"replica(s), {firing} alert(s) firing, window {window:g}s "
             f"[{clock}]"]

    uptime = store.latest(UPTIME_METRIC, by="replica", at=now, max_age=window)
    rss = store.latest(RSS_METRIC, by="replica", at=now, max_age=window)
    req_rate = store.rate(REQUESTS_METRIC, window=window, by="replica", at=now)
    shed_rate = store.rate(SHED_METRIC, window=window, by="replica", at=now)
    p99 = store.quantile_over_time(LATENCY_METRIC, 0.99, window=window,
                                   by="replica", at=now)

    lines.append("")
    lines.append(f"  {'replica':<28} {'state':<12} {'uptime':>8} "
                 f"{'rss MB':>8} {'req/s':>8} {'shed/s':>8} {'p99 ms':>8}")
    for replica in status.replicas:
        rid = replica.replica_id
        state = ("expired" if replica.expired
                 else "unreachable" if rid in unreachable else "live")
        rss_mb = rss.get(rid)
        quantile = p99.get(rid)
        lines.append(
            f"  {rid:<28} {state:<12} {_age(uptime.get(rid)):>8} "
            f"{_fmt(None if rss_mb is None else rss_mb / 2**20, '.1f'):>8} "
            f"{_fmt(req_rate.get(rid), '.2f'):>8} "
            f"{_fmt(shed_rate.get(rid), '.2f'):>8} "
            f"{_fmt(None if quantile is None else quantile * 1e3, '.3f'):>8}")
    if not status.replicas:
        lines.append("  (no replicas hold a lease)")

    def _mean_gauge(name, model=None):
        # latest() sums gauges within a group; per-replica grouping recovers
        # the per-replica values, and the fleet figure is their mean.
        labels = None if model is None else {"model": model}
        values = store.latest(name, by="replica", at=now,
                              max_age=window, labels=labels)
        if not values:
            return None
        return sum(values.values()) / len(values)

    # The request counter is a replica-wide family; the per-model view
    # comes from the latency histogram, whose count is the request count.
    model_hist = store.histogram_window(LATENCY_METRIC, window=window,
                                        by="model", at=now) or {}
    model_rate = {model: data["count"] / window
                  for model, data in model_hist.items()}
    model_p99 = store.quantile_over_time(LATENCY_METRIC, 0.99, window=window,
                                         by="model", at=now)
    budget_models = store.latest(BUDGET_METRIC, by="model", at=now,
                                 max_age=window) or {}
    target = _mean_gauge(TARGET_METRIC)
    models = sorted(set(model_rate) | set(budget_models), key=str)
    models = [model for model in models if model]
    if models:
        target_note = _fmt(None if target is None else target * 1e3, "g")
        lines.append("")
        lines.append(f"  {'model':<40} {'req/s':>8} {'p99 ms':>8} "
                     f"{'target':>8} {'burn':>8} {'budget':>8}")
        for model in models:
            quantile = model_p99.get(model)
            remaining = _mean_gauge(BUDGET_METRIC, model)
            burn = _mean_gauge(BURN_METRIC, model)
            lines.append(
                f"  {model:<40} {_fmt(model_rate.get(model), '.2f'):>8} "
                f"{_fmt(None if quantile is None else quantile * 1e3, '.3f'):>8} "
                f"{target_note:>8} "
                f"{_fmt(burn, '.2f'):>8} "
                f"{_fmt(remaining, '.2f'):>8}")

    if engine is not None:
        from repro.obs.alerts import format_alert_table

        lines.append("")
        lines.append(format_alert_table(engine.as_dict()))
    return "\n".join(lines)
