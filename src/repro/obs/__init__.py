"""Observability: request tracing, Prometheus exposition, fleet telemetry.

Three stdlib-only layers over the serving and distributed subsystems:

* :mod:`repro.obs.trace` — spans (``trace_id``/``span_id``/``parent_id``,
  monotonic-ns timestamps, attrs), a :class:`Tracer` with context-local
  propagation, a bounded ring :class:`TraceStore`, and the
  ``X-Repro-Trace`` header contract that stitches a fleet-proxied predict
  into one trace across two replicas;
* :mod:`repro.obs.prometheus` — the text exposition (format 0.0.4) renderer
  behind ``GET /metrics`` and the strict parser the aggregator and CI
  smoke checks use;
* :mod:`repro.obs.aggregate` — fleet-wide merging: scrape every replica,
  fold bucket counts into one histogram per model (exact, because buckets
  are fixed), and the ``repro trace`` tree renderer.  Imported lazily by
  the CLI (it pulls in :mod:`repro.serving`), so it is *not* re-exported
  here.

The retention-and-alerting layer rides on those three (and, like
``aggregate``, stays out of this package's eager imports because it leans
on :mod:`repro.serving`):

* :mod:`repro.obs.tsdb` — the :class:`TelemetryStore`: append-only
  time-bucketed segments of raw scrape samples with bounded retention,
  plus the windowed query verbs (``rate``, ``window_sum``,
  ``quantile_over_time``) with monotonic-reset detection;
* :mod:`repro.obs.collector` — the ``repro serve --telemetry-dir``
  background thread: render the replica's own page in process, parse it
  strictly, append, sweep, evaluate;
* :mod:`repro.obs.alerts` — the declarative rule engine: multi-window SLO
  burn rates, shed/incomplete-trace ratios, fleet and dist-queue census
  signals, ``for:`` holds and the firing/resolved state machine behind
  ``GET /alerts`` and ``repro alerts``;
* :mod:`repro.obs.dashboard` — the ``repro fleet watch`` terminal
  dashboard renderer.

Tracing observes, never touches: spans never see scores, and every
bitwise-equivalence pin holds with tracing on (the default).
"""

from repro.obs.process import process_rss_bytes, process_stats
from repro.obs.prometheus import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsRenderer,
    parse_prometheus_text,
    render_server_metrics,
)
from repro.obs.trace import (
    TRACE_HEADER,
    Span,
    StageMetrics,
    Tracer,
    TraceStore,
    current_span,
    current_trace_id,
    format_trace_header,
    get_tracer,
    parse_trace_header,
    set_tracer,
)

__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "MetricsRenderer",
    "Span",
    "StageMetrics",
    "TRACE_HEADER",
    "TraceStore",
    "Tracer",
    "current_span",
    "current_trace_id",
    "format_trace_header",
    "get_tracer",
    "parse_prometheus_text",
    "parse_trace_header",
    "process_rss_bytes",
    "process_stats",
    "render_server_metrics",
    "set_tracer",
]
