"""Prometheus text exposition (format 0.0.4): render and parse.

The renderer turns the serving stack's histogram snapshots into the
cumulative-bucket text format every Prometheus-compatible scraper speaks:

    repro_request_latency_seconds_bucket{model="m@...",le="0.005"} 41
    repro_request_latency_seconds_bucket{model="m@...",le="+Inf"} 44
    repro_request_latency_seconds_sum{model="m@..."} 0.112
    repro_request_latency_seconds_count{model="m@..."} 44

It renders from *snapshots* — ``(bounds, counts, sum, count)`` tuples copied
under the owning lock (``ServingMetrics.export`` /
``StageMetrics.export``) — never from live histogram objects, so a scrape
can't observe a torn update and costs the data plane nothing.

The parser is the other half the fleet aggregator needs: ``repro fleet
status --metrics`` scrapes every replica's ``/metrics``, parses the bucket
samples back into raw count vectors, and merges them with
``Histogram.merge`` — possible *only* because every replica uses the same
fixed, data-independent bucket bounds.  The parser is strict (malformed
lines raise :class:`ValueError`), which doubles as the CI smoke check that
the endpoint emits valid exposition text.
"""

from __future__ import annotations

import re

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)(?:\s+\d+)?$")
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def escape_label_value(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _unescape_label_value(value: str) -> str:
    return (value.replace("\\n", "\n").replace('\\"', '"')
            .replace("\\\\", "\\"))


def format_le(edge: float) -> str:
    """A bucket edge as a ``le`` label value; round-trips through ``float``
    so the aggregator can rebuild the exact bounds vector."""
    return repr(float(edge))


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _labels_text(labels: dict | None) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{name}="{escape_label_value(value)}"'
                     for name, value in labels.items())
    return "{" + inner + "}"


class MetricsRenderer:
    """Accumulates one exposition page; families are emitted in add order."""

    def __init__(self):
        self._lines: list[str] = []
        self._seen: set[str] = set()

    def _header(self, name: str, kind: str, help_text: str) -> None:
        if name in self._seen:
            return
        if not _NAME.fullmatch(name):
            raise ValueError(f"invalid metric name {name!r}")
        self._seen.add(name)
        self._lines.append(f"# HELP {name} {help_text}")
        self._lines.append(f"# TYPE {name} {kind}")

    def counter(self, name: str, value, help_text: str,
                labels: dict | None = None) -> None:
        self._header(name, "counter", help_text)
        self._lines.append(f"{name}{_labels_text(labels)} "
                           f"{_format_value(value)}")

    def gauge(self, name: str, value, help_text: str,
              labels: dict | None = None) -> None:
        self._header(name, "gauge", help_text)
        self._lines.append(f"{name}{_labels_text(labels)} "
                           f"{_format_value(value)}")

    def histogram(self, name: str, snapshot: dict, help_text: str,
                  labels: dict | None = None) -> None:
        """One histogram series from a ``(bounds, counts, sum, count)``
        snapshot; raw per-bucket counts become cumulative ``le`` samples."""
        self._header(name, "histogram", help_text)
        labels = dict(labels or {})
        cumulative = 0
        for edge, bucket_count in zip(snapshot["bounds"], snapshot["counts"]):
            cumulative += int(bucket_count)
            series = _labels_text({**labels, "le": format_le(edge)})
            self._lines.append(f"{name}_bucket{series} {cumulative}")
        cumulative += int(snapshot["counts"][-1])  # overflow bucket
        inf_series = _labels_text({**labels, "le": "+Inf"})
        self._lines.append(f"{name}_bucket{inf_series} {cumulative}")
        base = _labels_text(labels)
        self._lines.append(f"{name}_sum{base} {_format_value(snapshot['sum'])}")
        self._lines.append(f"{name}_count{base} {cumulative}")

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"


def render_server_metrics(service, *, server=None, tracer=None) -> str:
    """The full ``GET /metrics`` page for one replica.

    ``service`` is the :class:`~repro.serving.service.InferenceService`;
    ``server`` (the :class:`~repro.serving.httpd.SelectorHTTPServer`, when
    called from inside one) contributes connection gauges and fleet
    counters; ``tracer`` contributes the trace-derived stage histograms.
    """
    from repro.obs.process import process_stats

    out = MetricsRenderer()

    export = service.metrics.export()
    # Families stay contiguous (every sample of one metric in one block),
    # as the exposition format requires: outer loop over families, inner
    # over model labels.
    families = (
        ("repro_request_latency_seconds", "latency",
         "End-to-end request latency per served model."),
        ("repro_batch_tickets", "batch_tickets",
         "Requests coalesced per executed micro-batch."),
        ("repro_batch_rows", "batch_rows",
         "Rows stacked per single-model matmul."),
        ("repro_queue_depth", "queue_depth",
         "Model queue depth observed at flush time."),
    )
    for family, key, help_text in families:
        for label, snapshot in export.items():
            out.histogram(family, snapshot[key], help_text, {"model": label})
    for label, snapshot in export.items():
        out.counter("repro_failed_requests_total", snapshot["failures"],
                    "Requests failed by their batch's compute.",
                    {"model": label})

    stats = service.batcher.stats
    out.counter("repro_requests_total", stats.requests,
                "Requests submitted to the batcher.")
    out.counter("repro_rows_requested_total", stats.rows_requested,
                "Node rows requested across all submissions.")
    out.counter("repro_batches_total", stats.batches,
                "Micro-batch flushes executed.")
    out.counter("repro_matmuls_total", stats.matmuls,
                "Stacked matmuls executed (one per model per flush).")
    out.counter("repro_coalesced_requests_total", stats.coalesced_requests,
                "Requests that shared a matmul with others.")

    shed = dict(service.shed_counts)
    out.counter("repro_shed_requests_total", sum(shed.values()),
                "Requests shed with 429 by admission control.")
    for label in sorted(shed):
        out.counter("repro_model_shed_requests_total", shed[label],
                    "Per-model requests shed with 429.", {"model": label})

    cache = dict(service.cache_stats)
    out.counter("repro_feature_cache_hits_total",
                cache.get("feature_hits", 0),
                "Session lookups served from the feature-matrix LRU.")
    out.counter("repro_feature_cache_misses_total",
                cache.get("feature_misses", 0),
                "Session lookups that built (or rebuilt) a session.")
    out.gauge("repro_sessions_loaded", len(service.loaded_digests()),
              "Distinct model digests with a live session.")

    # The versioned serving graph: current epoch per store, update counter
    # and the incremental-vs-full session rebuild split.
    graph_epochs = getattr(service, "graph_epochs", None)
    if graph_epochs is not None:
        for key, epoch in graph_epochs().items():
            out.gauge("repro_graph_epoch", epoch,
                      "Current epoch of each versioned serving graph.",
                      {"graph": key})
        graph_stats = dict(service.graph_stats)
        out.counter("repro_graph_updates_total",
                    graph_stats.get("updates", 0),
                    "Edge-delta batches applied to serving graphs.")
        for strategy in ("incremental", "full"):
            out.counter("repro_graph_session_rebuilds_total",
                        graph_stats.get(f"sessions_rebuilt_{strategy}", 0),
                        "Session rebuilds after an epoch advance, by "
                        "strategy.", {"strategy": strategy})
        out.counter("repro_graph_rows_recomputed_total",
                    graph_stats.get("rows_recomputed", 0),
                    "Feature rows re-propagated by incremental rebuilds.")
        out.counter("repro_graph_rows_reused_total",
                    graph_stats.get("rows_reused", 0),
                    "Feature rows reused bitwise by incremental rebuilds.")

    # The propagation cache behind session builds (transition matrices,
    # LU solvers, propagated features), per layer.
    propagation = getattr(service, "propagation", None)
    if propagation is not None:
        info = propagation.info()
        for counter, help_text in (
            ("hits", "Propagation-cache hits per layer."),
            ("misses", "Propagation-cache misses per layer."),
        ):
            for layer in sorted(info):
                out.counter(f"repro_propagation_cache_{counter}_total",
                            info[layer][counter], help_text, {"layer": layer})
        for layer in sorted(info):
            out.gauge("repro_propagation_cache_entries",
                      info[layer]["entries"],
                      "Propagation-cache entries currently held per layer.",
                      {"layer": layer})

    # Series other subsystems published into the registry — today the SLO
    # controller's error-budget accounting (repro_slo_*).
    external = getattr(service.metrics, "external_families", None)
    if external is not None:
        for name, kind, help_text, entries in external():
            for labels, value in entries:
                if kind == "counter":
                    out.counter(name, value, help_text, labels or None)
                else:
                    out.gauge(name, value, help_text, labels or None)

    process = process_stats(service.started_at)
    out.gauge("repro_uptime_seconds", process["uptime_seconds"],
              "Seconds since the service started.")
    if process["rss_bytes"] is not None:
        out.gauge("repro_process_resident_memory_bytes", process["rss_bytes"],
                  "Peak resident set size (resource.getrusage).")

    if server is not None:
        out.gauge("repro_open_connections", len(server._connections),
                  "Currently open HTTP connections.")
        out.gauge("repro_parked_requests", len(server._parked),
                  "Connections parked on an in-flight ticket or proxy hop.")
        for key in sorted(server.fleet_stats):
            out.counter(f"repro_fleet_{key}_total", server.fleet_stats[key],
                        f"Fleet routing outcomes: {key.replace('_', ' ')}.")

    if tracer is not None:
        for stage, snapshot in tracer.stages.export().items():
            out.histogram("repro_stage_duration_seconds", snapshot,
                          "Span duration per trace stage name.",
                          {"stage": stage})
        for key, value in tracer.counters().items():
            if key == "traces_active":
                out.gauge("repro_traces_active", value,
                          "Traces whose root span has not ended.")
            else:
                out.counter(f"repro_{key}", value,
                            f"Tracer lifecycle counter: {key}.")

    return out.render()


# --------------------------------------------------------------------------- #
# parsing (the aggregator / smoke-check half)
# --------------------------------------------------------------------------- #
def parse_prometheus_text(text: str) -> list[tuple[str, dict, float]]:
    """Parse an exposition page into ``(name, labels, value)`` samples.

    Strict: any line that is neither a comment, blank, nor a well-formed
    sample raises :class:`ValueError` — so "it parses" is a meaningful CI
    assertion, not a permissive shrug.
    """
    samples: list[tuple[str, dict, float]] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        match = _SAMPLE.match(stripped)
        if match is None:
            raise ValueError(f"malformed exposition line {lineno}: {line!r}")
        name, labels_text, value_text = match.groups()
        labels: dict[str, str] = {}
        if labels_text:
            consumed = 0
            for label_match in _LABEL.finditer(labels_text):
                labels[label_match.group(1)] = \
                    _unescape_label_value(label_match.group(2))
                consumed = label_match.end()
            remainder = labels_text[consumed:].strip().strip(",")
            if remainder:
                raise ValueError(
                    f"malformed labels on line {lineno}: {labels_text!r}")
        try:
            value = float(value_text)
        except ValueError:
            raise ValueError(
                f"malformed sample value on line {lineno}: {value_text!r}"
            ) from None
        samples.append((name, labels, value))
    return samples


def histogram_series(samples, metric: str) -> dict[tuple, dict]:
    """Regroup parsed samples into per-series histogram data.

    Returns ``{label_items: {"bounds": [...], "counts": [...], "sum": s,
    "count": n}}`` with *raw* (de-cumulated) counts including the overflow
    bucket — exactly what ``Histogram.merge`` takes.  ``label_items`` is the
    sorted tuple of non-``le`` label pairs.
    """
    buckets: dict[tuple, list[tuple[float, float]]] = {}
    sums: dict[tuple, float] = {}
    counts: dict[tuple, float] = {}
    for name, labels, value in samples:
        if name == f"{metric}_bucket":
            le = labels.get("le")
            if le is None:
                raise ValueError(f"bucket sample without le label: {labels}")
            key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            edge = float("inf") if le == "+Inf" else float(le)
            buckets.setdefault(key, []).append((edge, value))
        elif name == f"{metric}_sum":
            sums[tuple(sorted(labels.items()))] = value
        elif name == f"{metric}_count":
            counts[tuple(sorted(labels.items()))] = value
    series: dict[tuple, dict] = {}
    for key, entries in buckets.items():
        entries.sort(key=lambda pair: pair[0])
        if not entries or entries[-1][0] != float("inf"):
            raise ValueError(f"histogram series {key} lacks a +Inf bucket")
        cumulative = [count for _edge, count in entries]
        if any(b < a for a, b in zip(cumulative, cumulative[1:])):
            raise ValueError(f"non-monotone cumulative buckets in {key}")
        raw = [cumulative[0]] + [b - a for a, b in
                                 zip(cumulative, cumulative[1:])]
        series[key] = {
            "bounds": [edge for edge, _count in entries[:-1]],
            "counts": [int(count) for count in raw],
            "sum": sums.get(key, 0.0),
            "count": counts.get(key, cumulative[-1]),
        }
    return series
