"""Fleet-wide telemetry: scrape every replica, merge, summarise.

A fleet has no coordinator — replicas share only a lease directory — so the
fleet-wide view is assembled client-side: ``repro fleet status --metrics``
resolves the live replicas from their leases, scrapes each one's
``/metrics``, parses the exposition text back into raw bucket-count vectors
(:func:`~repro.obs.prometheus.histogram_series`) and folds them into one
:class:`~repro.serving.metrics.Histogram` per model with
:meth:`~repro.serving.metrics.Histogram.merge`.  That merge is exact, not an
approximation, because every replica histograms into the same fixed,
data-independent bucket bounds; the fleet p50/p95/p99 read off the merged
counts is the same estimate one replica would have produced had it seen all
the traffic.

The trace half: ``repro trace`` fetches ``/debug/traces`` listings and
per-id span sets from one or more replicas, merges the spans of a trace
that crossed a proxy hop, and renders the tree by ``parent_id`` links.
Timestamps from different replicas are not comparable (monotonic clocks),
so ordering leans on the links, and sibling order is per-replica only.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

from repro.obs.prometheus import histogram_series, parse_prometheus_text

DEFAULT_TIMEOUT = 5.0
LATENCY_METRIC = "repro_request_latency_seconds"

FLEET_QUANTILES = (0.5, 0.95, 0.99)


def _get(base_url: str, path: str, timeout: float) -> bytes:
    request = urllib.request.Request(base_url.rstrip("/") + path,
                                     headers={"Connection": "close"})
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.read()


def scrape_page(base_url: str, *,
                timeout: float = DEFAULT_TIMEOUT) -> str:
    """Fetch one replica's raw ``/metrics`` exposition text (the telemetry
    store wants the page, ``# TYPE`` comments included)."""
    return _get(base_url, "/metrics", timeout).decode("utf-8")


def scrape_metrics(base_url: str, *,
                   timeout: float = DEFAULT_TIMEOUT) -> list:
    """Fetch and parse one replica's ``/metrics`` page into samples."""
    return parse_prometheus_text(scrape_page(base_url, timeout=timeout))


def merge_latency_histograms(sample_sets, *, metric: str = LATENCY_METRIC):
    """Fold per-replica latency bucket counts into one histogram per model.

    ``sample_sets`` is an iterable of parsed sample lists (one per replica).
    Returns ``{model_label: Histogram}`` — merged across replicas, plus a
    per-model replica count in ``{model_label: int}``.
    """
    from repro.serving.metrics import Histogram

    merged: dict[str, object] = {}
    replicas: dict[str, int] = {}
    for samples in sample_sets:
        for key, series in histogram_series(samples, metric).items():
            labels = dict(key)
            model = labels.get("model", "")
            histogram = merged.get(model)
            if histogram is None:
                histogram = merged[model] = Histogram(series["bounds"])
            elif list(histogram.bounds) != [float(b)
                                            for b in series["bounds"]]:
                raise ValueError(
                    f"replica bucket bounds disagree for model {model!r}; "
                    f"cannot merge histograms across mixed versions")
            histogram.merge(series["counts"], total=series["sum"])
            replicas[model] = replicas.get(model, 0) + 1
    return merged, replicas


def fleet_metrics_report(replicas, *,
                         timeout: float = DEFAULT_TIMEOUT) -> str:
    """Scrape ``[(replica_id, base_url), ...]`` and render the fleet-wide
    per-model latency summary; unreachable replicas are reported, not fatal
    (a fleet with a dead member still has aggregate telemetry)."""
    replicas = list(replicas)
    sample_sets = []
    scraped, unreachable = [], []
    for replica_id, base_url in replicas:
        try:
            sample_sets.append(scrape_metrics(base_url, timeout=timeout))
            scraped.append(replica_id)
        except (urllib.error.URLError, OSError, ValueError) as error:
            unreachable.append((replica_id, error))
    lines = [f"fleet metrics: scraped {len(scraped)}/{len(replicas)} "
             f"replica(s)"]
    for replica_id, error in unreachable:
        lines.append(f"  !! {replica_id}: unreachable ({error})")
    if not sample_sets:
        return "\n".join(lines)
    merged, per_model_replicas = merge_latency_histograms(sample_sets)
    if not merged:
        lines.append("  no request latency recorded yet")
        return "\n".join(lines)
    header = (f"  {'model':<40} {'replicas':>8} {'requests':>9} "
              f"{'p50 ms':>9} {'p95 ms':>9} {'p99 ms':>9}")
    lines.append(header)
    for model in sorted(merged):
        histogram = merged[model]
        quantiles = [histogram.quantile(q) * 1e3 for q in FLEET_QUANTILES]
        lines.append(f"  {model:<40} {per_model_replicas[model]:>8} "
                     f"{histogram.count:>9} "
                     + " ".join(f"{value:>9.3f}" for value in quantiles))
    budgets = merge_slo_budgets(sample_sets)
    if budgets:
        target = next(iter(budgets.values()))["target_p99_seconds"]
        objective = next(iter(budgets.values()))["objective"]
        target_ms = "-" if target is None else f"{target * 1e3:g}ms"
        lines.append(f"  slo error budget (objective {objective:.2%} "
                     f"under {target_ms}, cumulative):")
        lines.append(f"  {'model':<40} {'good':>9} {'bad':>9} "
                     f"{'attain':>8} {'budget used':>12}")
        for model, budget in budgets.items():
            lines.append(f"  {model:<40} {budget['good']:>9.0f} "
                         f"{budget['bad']:>9.0f} "
                         f"{budget['attainment']:>8.4f} "
                         f"{budget['budget_used']:>11.2f}x")
    return "\n".join(lines)


def merge_slo_budgets(sample_sets) -> dict:
    """Fold per-replica SLO error-budget counters into fleet-wide budgets.

    Counters sum exactly across replicas (each request is good or bad on
    exactly one replica); the per-replica objective/target gauges must
    agree, since they come from one ``repro serve`` configuration.  Returns
    ``{model: {"good": g, "bad": b, "attainment": ..., "budget_used": ...,
    "objective": ..., "target_p99_seconds": ...}}`` — empty when no replica
    runs an SLO controller.
    """
    good: dict[str, float] = {}
    bad: dict[str, float] = {}
    objective = None
    target = None
    for samples in sample_sets:
        for name, labels, value in samples:
            model = labels.get("model", "")
            if name == "repro_slo_good_requests_total":
                good[model] = good.get(model, 0.0) + value
            elif name == "repro_slo_bad_requests_total":
                bad[model] = bad.get(model, 0.0) + value
            elif name == "repro_slo_objective_ratio":
                objective = value if objective is None else objective
            elif name == "repro_slo_target_p99_seconds":
                target = value if target is None else target
    budgets: dict[str, dict] = {}
    objective = 0.99 if objective is None else objective
    for model in sorted(set(good) | set(bad)):
        g, b = good.get(model, 0.0), bad.get(model, 0.0)
        total = g + b
        attainment = g / total if total else 1.0
        allowance = max(1e-9, 1.0 - objective)
        budgets[model] = {
            "good": g, "bad": b, "attainment": attainment,
            "budget_used": (b / total) / allowance if total else 0.0,
            "objective": objective, "target_p99_seconds": target,
        }
    return budgets


# --------------------------------------------------------------------------- #
# traces
# --------------------------------------------------------------------------- #
def fetch_recent_traces(base_urls, *, limit: int = 10,
                        timeout: float = DEFAULT_TIMEOUT) -> list[dict]:
    """``/debug/traces`` listings from every server, tagged with the URL."""
    rows: list[dict] = []
    for base_url in base_urls:
        try:
            payload = json.loads(_get(base_url, "/debug/traces", timeout))
        except (urllib.error.URLError, OSError, ValueError) as error:
            rows.append({"server": base_url, "error": str(error)})
            continue
        for summary in payload.get("traces", [])[:limit]:
            rows.append({"server": base_url, **summary})
    return rows


def fetch_trace_spans(base_urls, trace_id: str, *,
                      timeout: float = DEFAULT_TIMEOUT) -> list[dict]:
    """The union of one trace's spans across servers (a proxied predict
    stores half its spans on each replica); servers without the trace (or
    unreachable) contribute nothing."""
    spans: list[dict] = []
    seen: set[str] = set()
    for base_url in base_urls:
        try:
            payload = json.loads(
                _get(base_url, f"/debug/traces/{trace_id}", timeout))
        except (urllib.error.URLError, OSError, ValueError):
            continue
        for span in payload.get("spans", []):
            if span.get("span_id") in seen:
                continue
            seen.add(span.get("span_id"))
            spans.append(span)
    return spans


def render_trace_list(rows) -> str:
    if not rows:
        return "no traces recorded"
    lines = [f"{'trace_id':<34} {'root':<12} {'spans':>5} "
             f"{'ms':>10}  server"]
    for row in rows:
        if "error" in row:
            lines.append(f"!! {row['server']}: {row['error']}")
            continue
        lines.append(f"{row.get('trace_id', ''):<34} "
                     f"{row.get('root', ''):<12} "
                     f"{row.get('span_count', 0):>5} "
                     f"{row.get('duration_ms', 0.0):>10.3f}  "
                     f"{row['server']}")
    return "\n".join(lines)


def render_trace_tree(spans) -> str:
    """ASCII tree of one trace: nesting by ``parent_id``, siblings in
    start order (meaningful within a replica), orphans promoted to roots."""
    if not spans:
        return "trace has no spans"
    by_id = {span["span_id"]: span for span in spans}
    children: dict[str | None, list[dict]] = {}
    roots: list[dict] = []
    for span in spans:
        parent = span.get("parent_id")
        if parent and parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)
    for siblings in children.values():
        siblings.sort(key=lambda span: span.get("start_ns", 0))
    roots.sort(key=lambda span: span.get("start_ns", 0))

    lines = [f"trace {spans[0]['trace_id']} "
             f"({len(spans)} span{'s' if len(spans) != 1 else ''})"]

    def _describe(span: dict) -> str:
        attrs = span.get("attrs") or {}
        noted = " ".join(f"{key}={attrs[key]}"
                         for key in sorted(attrs)
                         if isinstance(attrs[key], (str, int, float, bool)))
        status = span.get("status", "ok")
        flag = "" if status == "ok" else f" [{status}]"
        text = f"{span['name']} {span.get('duration_ms', 0.0):.3f}ms{flag}"
        return f"{text}  ({noted})" if noted else text

    def _walk(span: dict, prefix: str, is_last: bool) -> None:
        branch = "└─ " if is_last else "├─ "
        lines.append(prefix + branch + _describe(span))
        child_prefix = prefix + ("   " if is_last else "│  ")
        kids = children.get(span["span_id"], [])
        for index, child in enumerate(kids):
            _walk(child, child_prefix, index == len(kids) - 1)

    for index, root in enumerate(roots):
        _walk(root, "", index == len(roots) - 1)
    return "\n".join(lines)
