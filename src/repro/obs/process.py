"""Process-level gauges for ``/stats`` and ``/metrics``: uptime and RSS.

``resource.getrusage`` is the only stdlib way to read resident memory
without parsing ``/proc``; ``ru_maxrss`` is the *peak* RSS, reported in
kibibytes on Linux and bytes on macOS (normalised here).  The module is
import-safe on platforms without ``resource`` (it degrades to ``None``).
"""

from __future__ import annotations

import sys
import time

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platform
    resource = None


def process_rss_bytes() -> int | None:
    """Peak resident set size in bytes, or ``None`` where unavailable."""
    if resource is None:  # pragma: no cover - non-POSIX platform
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        return int(peak)
    return int(peak) * 1024


def process_stats(started_at: float) -> dict:
    """The ``/stats`` ``process`` section (the HTTP frontend overlays its
    connection counts on top)."""
    return {
        "uptime_seconds": round(time.time() - started_at, 3),
        "rss_bytes": process_rss_bytes(),
    }
