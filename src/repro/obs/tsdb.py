"""An append-only, crash-tolerant time-series store over ``/metrics`` scrapes.

PR 8 made every metric *instantaneously* observable; this module makes them
observable **over time** without an external Prometheus.  A
:class:`TelemetryStore` is a directory of time-bucketed JSONL segment files:

    telemetry/
      seg-000001754640000.jsonl      # records with t in [bucket, bucket+len)
      seg-000001754640600.jsonl
      alerts.jsonl                   # alert transition history (alerts.py)

Each ``append_scrape`` writes one line per sample as parsed from the strict
exposition parser (:func:`repro.obs.prometheus.parse_prometheus_text`):
counters and histogram bucket vectors are stored **raw and cumulative**,
exactly as scraped.  Deltas are derived at *query* time by walking
consecutive samples of one underlying series (one ``(replica, name,
labels)``), so a replica restart — the counter drops below its predecessor —
is detected as a monotonic reset and the post-restart value is taken as the
increase, the standard ``increase()`` treatment.  Storing raw values keeps
appends stateless: a collector restart, a torn final line after a crash
(skipped on read, like ``JsonlResultStore.load(on_corrupt="skip")``), or two
collectors sharing one directory never corrupt derived rates.

Retention is bounded by construction: records land in the segment file of
their timestamp's bucket, and :meth:`TelemetryStore.sweep_retention` unlinks
whole segments older than the retention horizon — no rewrite, no index.

The windowed query API mirrors the PromQL verbs the alert rules need:

* :meth:`window_sum` / :meth:`rate` — counter increase over a trailing
  window (reset-aware, summed across replicas, optionally grouped ``by`` a
  label);
* :meth:`quantile_over_time` — merge histogram bucket *increases* across
  the window and all replicas (exact: fixed data-independent bounds) and
  read an interpolated quantile via
  :func:`repro.serving.metrics.bucket_quantile`;
* :meth:`latest` — most recent gauge value (summed across replicas, or
  grouped).

``root=None`` gives an in-memory store with the same API — what
``repro fleet watch`` feeds from live scrapes.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.obs.prometheus import histogram_series, parse_prometheus_text
from repro.serving.metrics import bucket_quantile

DEFAULT_SEGMENT_SECONDS = 600.0
DEFAULT_RETENTION_SECONDS = 6 * 3600.0

_SEGMENT_PREFIX = "seg-"
_SEGMENT_SUFFIX = ".jsonl"


def parse_metric_types(text: str) -> dict[str, str]:
    """``{family_name: kind}`` from the ``# TYPE`` comment lines of an
    exposition page.  The strict sample parser discards comments; the store
    needs them to tell a counter (delta semantics) from a gauge (raw)."""
    types: dict[str, str] = {}
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped.startswith("# TYPE "):
            continue
        parts = stripped.split()
        if len(parts) >= 4:
            types[parts[2]] = parts[3]
    return types


def infer_metric_types(samples) -> dict[str, str]:
    """Fallback classification when no ``# TYPE`` metadata is available:
    ``*_bucket``/``*_sum``/``*_count`` triples are histogram families,
    ``*_total`` are counters, everything else is a gauge."""
    names = {name for name, _labels, _value in samples}
    types: dict[str, str] = {}
    for name in names:
        if name.endswith("_bucket") and name[:-len("_bucket")]:
            types[name[: -len("_bucket")]] = "histogram"
    for name in names:
        family = None
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and types.get(name[: -len(suffix)]) == \
                    "histogram":
                family = name[: -len(suffix)]
                break
        if family is not None:
            continue
        types[name] = "counter" if name.endswith("_total") else "gauge"
    return types


def counter_increase(points) -> tuple[float, int]:
    """``(increase, resets)`` over ``[(t, value), ...]`` sorted by ``t``.

    Consecutive differences are summed; a drop (``cur < prev``) means the
    process restarted and its counter began again from zero, so the current
    value *is* the increase since the reset.
    """
    total = 0.0
    resets = 0
    for (_, prev), (_, cur) in zip(points, points[1:]):
        delta = cur - prev
        if delta < 0:
            total += cur
            resets += 1
        else:
            total += delta
    return total, resets


def vector_increase(vectors) -> tuple[list[float], int]:
    """Componentwise :func:`counter_increase` over ``[(t, counts), ...]``;
    any component dropping marks the whole vector as reset (the buckets of
    one histogram restart together)."""
    total: list[float] | None = None
    resets = 0
    for (_, prev), (_, cur) in zip(vectors, vectors[1:]):
        if len(prev) != len(cur):
            raise ValueError("histogram bucket count changed mid-series")
        if any(c < p for p, c in zip(prev, cur)):
            delta = list(cur)
            resets += 1
        else:
            delta = [c - p for p, c in zip(prev, cur)]
        if total is None:
            total = delta
        else:
            total = [a + b for a, b in zip(total, delta)]
    if total is None and vectors:
        total = [0.0] * len(vectors[0][1])
    return total or [], resets


def _labels_match(labels: dict, want: dict | None) -> bool:
    if not want:
        return True
    return all(labels.get(key) == value for key, value in want.items())


class TelemetryStore:
    """See module docstring.  ``clock`` is injectable for tests."""

    def __init__(self, root=None, *,
                 segment_seconds: float = DEFAULT_SEGMENT_SECONDS,
                 retention: float = DEFAULT_RETENTION_SECONDS,
                 clock=time.time):
        if segment_seconds <= 0:
            raise ValueError("segment_seconds must be positive")
        if retention < segment_seconds:
            raise ValueError("retention must cover at least one segment")
        self.root = Path(root) if root is not None else None
        self.segment_seconds = float(segment_seconds)
        self.retention = float(retention)
        self.clock = clock
        self.corrupt_lines = 0
        self._memory: list[dict] = []
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def append_page(self, text: str, *, replica: str = "local",
                    at: float | None = None) -> int:
        """Parse one exposition page (strictly) and append every sample."""
        samples = parse_prometheus_text(text)
        types = parse_metric_types(text) or None
        return self.append_scrape(samples, types, replica=replica, at=at)

    def append_scrape(self, samples, types: dict[str, str] | None = None, *,
                      replica: str = "local", at: float | None = None) -> int:
        """Append one scrape's samples; returns the number of records.

        ``samples`` is ``[(name, labels, value), ...]`` from
        :func:`parse_prometheus_text`; ``types`` maps family names to
        ``counter`` / ``gauge`` / ``histogram`` (inferred from naming
        conventions when absent).
        """
        t = float(self.clock() if at is None else at)
        if types is None:
            types = infer_metric_types(samples)
        records: list[dict] = [
            {"t": t, "r": replica, "k": "s", "n": "__scrape__",
             "v": float(len(samples))}]
        histogram_families = sorted(
            name for name, kind in types.items() if kind == "histogram")
        histogram_sample_names = set()
        for family in histogram_families:
            histogram_sample_names.update(
                (f"{family}_bucket", f"{family}_sum", f"{family}_count"))
            for label_items, data in histogram_series(samples, family).items():
                records.append({
                    "t": t, "r": replica, "k": "h", "n": family,
                    "l": dict(label_items),
                    "b": [float(edge) for edge in data["bounds"]],
                    "c": [float(count) for count in data["counts"]],
                    "sm": float(data["sum"]), "ct": float(data["count"]),
                })
        for name, labels, value in samples:
            if name in histogram_sample_names:
                continue
            kind = types.get(name, "counter" if name.endswith("_total")
                             else "gauge")
            records.append({
                "t": t, "r": replica, "k": "c" if kind == "counter" else "g",
                "n": name, "l": dict(labels), "v": float(value)})
        self._write(records)
        return len(records)

    def _write(self, records: list[dict]) -> None:
        if self.root is None:
            self._memory.extend(records)
            horizon = max((rec["t"] for rec in self._memory),
                          default=0.0) - self.retention
            if self._memory and self._memory[0]["t"] < horizon:
                self._memory = [rec for rec in self._memory
                                if rec["t"] >= horizon]
            return
        by_segment: dict[float, list[dict]] = {}
        for rec in records:
            by_segment.setdefault(self._bucket(rec["t"]), []).append(rec)
        for bucket, bucket_records in sorted(by_segment.items()):
            path = self._segment_path(bucket)
            with path.open("a", encoding="utf-8") as handle:
                for rec in bucket_records:
                    handle.write(json.dumps(rec, separators=(",", ":")))
                    handle.write("\n")

    def _bucket(self, t: float) -> float:
        return (t // self.segment_seconds) * self.segment_seconds

    def _segment_path(self, bucket: float) -> Path:
        return self.root / (
            f"{_SEGMENT_PREFIX}{int(bucket):015d}{_SEGMENT_SUFFIX}")

    # ------------------------------------------------------------------ #
    # retention
    # ------------------------------------------------------------------ #
    def segments(self) -> list[Path]:
        if self.root is None:
            return []
        return sorted(path for path in self.root.glob(
            f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}"))

    def sweep_retention(self, now: float | None = None) -> int:
        """Unlink segments that end before ``now - retention``; returns the
        number removed.  In-memory stores trim on every append instead."""
        if self.root is None:
            return 0
        now = float(self.clock() if now is None else now)
        horizon = now - self.retention
        removed = 0
        for path in self.segments():
            bucket = self._segment_bucket(path)
            if bucket is not None and bucket + self.segment_seconds < horizon:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    @staticmethod
    def _segment_bucket(path: Path) -> float | None:
        stem = path.name[len(_SEGMENT_PREFIX): -len(_SEGMENT_SUFFIX)]
        try:
            return float(int(stem))
        except ValueError:
            return None

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def _records(self, start: float, end: float):
        """Every record with ``start <= t <= end`` (tolerant read: a torn or
        garbage line — a crash mid-append — is counted and skipped)."""
        if self.root is None:
            for rec in self._memory:
                if start <= rec["t"] <= end:
                    yield rec
            return
        for path in self.segments():
            bucket = self._segment_bucket(path)
            if bucket is None:
                continue
            if bucket + self.segment_seconds <= start or bucket > end:
                continue
            try:
                text = path.read_text(encoding="utf-8")
            except OSError:
                continue
            for line in text.splitlines():
                if not line.strip():
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    self.corrupt_lines += 1
                    continue
                if not isinstance(rec, dict) or "t" not in rec \
                        or "k" not in rec or "n" not in rec:
                    self.corrupt_lines += 1
                    continue
                if start <= rec["t"] <= end:
                    yield rec

    def _series(self, name: str, kind: str, start: float, end: float,
                labels: dict | None, replica: str | None):
        """Group matching records into underlying series:
        ``{(replica, label_items): [(t, record), ...]} `` sorted by time."""
        series: dict[tuple, list] = {}
        for rec in self._records(start, end):
            if rec["n"] != name or rec["k"] != kind:
                continue
            if replica is not None and rec.get("r") != replica:
                continue
            rec_labels = rec.get("l") or {}
            if not _labels_match(rec_labels, labels):
                continue
            key = (rec.get("r", ""), tuple(sorted(rec_labels.items())))
            series.setdefault(key, []).append((rec["t"], rec))
        for points in series.values():
            points.sort(key=lambda pair: pair[0])
        return series

    def _group_key(self, series_key: tuple, by: str | None):
        if by is None:
            return None
        replica_id, label_items = series_key
        if by == "replica":
            return replica_id
        return dict(label_items).get(by, "")

    def window_sum(self, name: str, *, window: float,
                   at: float | None = None, labels: dict | None = None,
                   replica: str | None = None, by: str | None = None):
        """Counter increase over ``(at - window, at]``, reset-aware.

        The sample just *before* the window start anchors the first delta
        (one extra segment of lookback), so a window that contains k scrapes
        accounts for k increases, not k - 1.  Summed across every matching
        underlying series; ``by`` groups the result by a label key (or the
        special key ``"replica"``) into a dict.
        """
        at = float(self.clock() if at is None else at)
        start = at - float(window)
        lookback = start - self.segment_seconds
        groups: dict = {}
        for key, points in self._series(
                name, "c", lookback, at, labels, replica).items():
            values = [(t, rec["v"]) for t, rec in points]
            anchored = self._anchor(values, start)
            increase, _resets = counter_increase(anchored)
            group = self._group_key(key, by)
            groups[group] = groups.get(group, 0.0) + increase
        if by is None:
            return groups.get(None, 0.0)
        return groups

    def counter_resets(self, name: str, *, window: float,
                       at: float | None = None, labels: dict | None = None,
                       replica: str | None = None) -> int:
        """Monotonic resets (replica restarts) detected in the window."""
        at = float(self.clock() if at is None else at)
        start = at - float(window)
        total = 0
        for points in self._series(name, "c", start - self.segment_seconds,
                                   at, labels, replica).values():
            values = self._anchor([(t, rec["v"]) for t, rec in points], start)
            _increase, resets = counter_increase(values)
            total += resets
        return total

    @staticmethod
    def _anchor(points, start: float):
        """Drop points before ``start`` except the last one (the anchor for
        the first in-window delta)."""
        anchor = None
        in_window = []
        for t, value in points:
            if t <= start:
                anchor = (t, value)
            else:
                in_window.append((t, value))
        return ([anchor] if anchor is not None else []) + in_window

    def rate(self, name: str, *, window: float, at: float | None = None,
             labels: dict | None = None, replica: str | None = None,
             by: str | None = None):
        """Per-second counter rate: :meth:`window_sum` / ``window``."""
        result = self.window_sum(name, window=window, at=at, labels=labels,
                                 replica=replica, by=by)
        if by is None:
            return result / float(window)
        return {key: value / float(window) for key, value in result.items()}

    def histogram_window(self, name: str, *, window: float,
                         at: float | None = None, labels: dict | None = None,
                         replica: str | None = None, by: str | None = None):
        """Merged ``{"bounds", "counts", "count", "sum"}`` of the histogram
        *increase* over the window, exact across replicas because all series
        share the fixed bounds (mismatched bounds raise)."""
        at = float(self.clock() if at is None else at)
        start = at - float(window)
        groups: dict = {}
        for key, points in self._series(
                name, "h", start - self.segment_seconds, at,
                labels, replica).items():
            vectors = self._anchor(
                [(t, rec["c"]) for t, rec in points], start)
            counts, _resets = vector_increase(vectors)
            sums = self._anchor([(t, rec["sm"]) for t, rec in points], start)
            sum_increase, _ = counter_increase(sums)
            bounds = points[-1][1]["b"]
            group = self._group_key(key, by)
            merged = groups.get(group)
            if merged is None:
                groups[group] = {"bounds": list(bounds),
                                 "counts": list(counts),
                                 "count": sum(counts), "sum": sum_increase}
            else:
                if merged["bounds"] != list(bounds):
                    raise ValueError(
                        f"histogram bounds differ across series of {name}")
                if len(counts) != len(merged["counts"]):
                    raise ValueError(
                        f"histogram arity differs across series of {name}")
                merged["counts"] = [a + b for a, b in
                                    zip(merged["counts"], counts)]
                merged["count"] = sum(merged["counts"])
                merged["sum"] += sum_increase
        if by is None:
            return groups.get(None)
        return groups

    def quantile_over_time(self, name: str, q: float, *, window: float,
                           at: float | None = None,
                           labels: dict | None = None,
                           replica: str | None = None,
                           by: str | None = None):
        """Interpolated quantile of the merged histogram increase over the
        window (0.0 when the window is empty; None when no series exist)."""
        merged = self.histogram_window(name, window=window, at=at,
                                       labels=labels, replica=replica, by=by)
        if by is None:
            if merged is None:
                return None
            return bucket_quantile(merged["bounds"], merged["counts"], q)
        return {key: bucket_quantile(data["bounds"], data["counts"], q)
                for key, data in merged.items()}

    def latest(self, name: str, *, at: float | None = None,
               max_age: float | None = None, labels: dict | None = None,
               replica: str | None = None, by: str | None = None):
        """Most recent gauge value per underlying series, **summed** within
        each group (so ``by=None`` over a fleet is the fleet total; use
        ``by="replica"`` for per-replica values).  ``None`` / ``{}`` when
        nothing matched within ``max_age`` (default: retention)."""
        at = float(self.clock() if at is None else at)
        age = self.retention if max_age is None else float(max_age)
        groups: dict = {}
        for key, points in self._series(
                name, "g", at - age, at, labels, replica).items():
            value = points[-1][1]["v"]
            group = self._group_key(key, by)
            groups[group] = groups.get(group, 0.0) + value
        if by is None:
            return groups.get(None)
        return groups

    def scrape_times(self, *, start: float | None = None,
                     end: float | None = None,
                     replica: str | None = None) -> list[float]:
        """Distinct scrape timestamps recorded in ``[start, end]`` — the
        evaluation points ``repro alerts`` replays the rule engine over."""
        end = float(self.clock() if end is None else end)
        start = end - self.retention if start is None else float(start)
        times = set()
        for rec in self._records(start, end):
            if rec["k"] != "s":
                continue
            if replica is not None and rec.get("r") != replica:
                continue
            times.add(float(rec["t"]))
        return sorted(times)

    def series_names(self, *, window: float | None = None,
                     at: float | None = None) -> dict[str, str]:
        """``{name: kind}`` of every series seen in the window (debugging
        and dashboard discovery)."""
        at = float(self.clock() if at is None else at)
        start = at - (self.retention if window is None else float(window))
        kinds = {"c": "counter", "g": "gauge", "h": "histogram"}
        names: dict[str, str] = {}
        for rec in self._records(start, at):
            if rec["k"] in kinds:
                names[rec["n"]] = kinds[rec["k"]]
        return names
