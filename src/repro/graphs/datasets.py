"""Named dataset registry matching the paper's Table II.

``load_dataset("cora_ml")`` returns a synthetic graph calibrated to the
Cora-ML statistics (2995 nodes, 8158 undirected edges, 2879 features, 7
classes, homophily 0.81).  A ``scale`` argument shrinks the graph for fast
tests and benchmarks while preserving density, homophily and class structure.

Note on edge counts: Table II reports directed edge counts (both orientations);
the registry stores the equivalent undirected counts.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.graphs.generators import CitationGraphSpec, generate_citation_graph
from repro.graphs.graph import GraphDataset

# Table II of the paper.  Edges are stored as undirected counts (Table II
# counts each edge in both directions).
_REGISTRY: dict[str, CitationGraphSpec] = {
    "cora_ml": CitationGraphSpec(
        name="cora_ml",
        num_nodes=2995,
        num_edges=8158,
        num_features=2879,
        num_classes=7,
        homophily=0.81,
        feature_active=12,
        feature_signal=0.27,
        split="planetoid",
    ),
    "citeseer": CitationGraphSpec(
        name="citeseer",
        num_nodes=3327,
        num_edges=4552,
        num_features=3703,
        num_classes=6,
        homophily=0.71,
        feature_active=12,
        feature_signal=0.24,
        split="planetoid",
    ),
    "pubmed": CitationGraphSpec(
        name="pubmed",
        num_nodes=19717,
        num_edges=44324,
        num_features=500,
        num_classes=3,
        homophily=0.79,
        feature_active=14,
        feature_signal=0.25,
        split="planetoid",
    ),
    "actor": CitationGraphSpec(
        name="actor",
        num_nodes=7600,
        num_edges=15009,
        num_features=932,
        num_classes=5,
        homophily=0.22,
        feature_active=12,
        feature_signal=0.30,
        split="fractional",
    ),
}


def list_datasets() -> list[str]:
    """Return the names of all registered dataset presets."""
    return sorted(_REGISTRY)


def get_spec(name: str) -> CitationGraphSpec:
    """Return the :class:`CitationGraphSpec` registered under ``name``."""
    key = name.lower().replace("-", "_")
    if key not in _REGISTRY:
        raise ConfigurationError(
            f"unknown dataset {name!r}; available: {', '.join(list_datasets())}"
        )
    return _REGISTRY[key]


def load_dataset(name: str, scale: float = 1.0,
                 seed: int | np.random.Generator | None = 0) -> GraphDataset:
    """Load (generate) a named dataset preset.

    Parameters
    ----------
    name:
        One of :func:`list_datasets` (case-insensitive, ``-`` and ``_``
        interchangeable).
    scale:
        Down-scaling factor in ``(0, 1]`` applied to node/edge counts; used by
        tests and benchmarks.
    seed:
        Seed or generator controlling the synthetic sample.
    """
    spec = get_spec(name).scaled(scale)
    return generate_citation_graph(spec, seed=seed)


def dataset_statistics(names: list[str] | None = None, scale: float = 1.0,
                       seed: int = 0) -> list[dict[str, float]]:
    """Return Table-II style statistics for the requested datasets."""
    names = names or list_datasets()
    return [load_dataset(name, scale=scale, seed=seed).summary() for name in names]


def reference_statistics() -> dict[str, dict[str, float]]:
    """The paper's Table II values (undirected edge counts), for comparison."""
    return {
        name: {
            "nodes": spec.num_nodes,
            "edges": spec.num_edges,
            "features": spec.num_features,
            "classes": spec.num_classes,
            "homophily": spec.homophily,
        }
        for name, spec in _REGISTRY.items()
    }
