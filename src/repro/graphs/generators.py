"""Synthetic citation-graph generators.

The paper evaluates on four public benchmark graphs (Cora-ML, CiteSeer,
PubMed, Actor).  Those files are not available in this offline environment,
so this module provides a calibrated synthetic substitute: a degree-corrected
planted-partition generator whose knobs map directly onto the quantities the
paper's experiments depend on --

* number of nodes, undirected edges, feature dimensionality, classes
  (Table II columns),
* homophily ratio (Definition 7), which controls how much signal graph
  convolution adds over a plain MLP,
* a power-law degree propensity, reproducing the skewed degree distributions
  of citation graphs,
* class-conditional sparse bag-of-words features whose informativeness
  controls the MLP baseline's accuracy.

The behaviour the paper measures (utility orderings of DP mechanisms across
privacy budgets, sensitivity trade-offs in α and m) depends on these graph
properties rather than on the identity of the concrete citation network, so
the substitution preserves the relevant phenomena (see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError
from repro.graphs.adjacency import build_adjacency
from repro.graphs.graph import GraphDataset
from repro.graphs.splits import fractional_split, per_class_split
from repro.utils.random import as_rng


@dataclass(frozen=True)
class CitationGraphSpec:
    """Parameters of a synthetic citation graph.

    Attributes
    ----------
    name:
        Dataset name used in summaries and experiment reports.
    num_nodes, num_edges, num_features, num_classes:
        The four Table-II size columns.
    homophily:
        Target edge homophily (probability that an edge connects same-label
        endpoints).  Node homophily (Definition 7) tracks this closely.
    degree_exponent:
        Exponent of the power-law degree propensity (larger = more skewed).
    feature_active:
        Expected number of non-zero (bag-of-words) features per node.
    feature_signal:
        Probability that an active feature is drawn from the node's class
        topic rather than from the background vocabulary.  Controls how
        accurate a graph-free MLP can be.
    class_imbalance:
        Dirichlet concentration for class proportions (large = balanced).
    split:
        Either ``"planetoid"`` (20 per class / 500 val / 1000 test) or
        ``"fractional"`` (60/20/20), matching Appendix P.
    """

    name: str
    num_nodes: int
    num_edges: int
    num_features: int
    num_classes: int
    homophily: float
    degree_exponent: float = 0.9
    feature_active: int = 18
    feature_signal: float = 0.8
    class_imbalance: float = 12.0
    split: str = "planetoid"
    train_per_class: int = 20
    num_val: int = 500
    num_test: int = 1000

    def __post_init__(self) -> None:
        if self.num_nodes < self.num_classes:
            raise ConfigurationError("num_nodes must be at least num_classes")
        if self.num_edges < 0:
            raise ConfigurationError("num_edges must be non-negative")
        if not 0.0 <= self.homophily <= 1.0:
            raise ConfigurationError(f"homophily must be in [0, 1], got {self.homophily}")
        if not 0.0 <= self.feature_signal <= 1.0:
            raise ConfigurationError("feature_signal must be in [0, 1]")
        if self.split not in ("planetoid", "fractional"):
            raise ConfigurationError(f"unknown split protocol {self.split!r}")

    def scaled(self, scale: float) -> "CitationGraphSpec":
        """Return a down-scaled copy (node/edge/val/test counts multiplied by ``scale``).

        Used by tests and benchmarks to keep runtimes small while preserving
        density, homophily and feature statistics.
        """
        if not 0.0 < scale <= 1.0:
            raise ConfigurationError(f"scale must be in (0, 1], got {scale}")
        if scale == 1.0:
            return self
        nodes = max(self.num_classes * (self.train_per_class + 2), int(self.num_nodes * scale))
        edges = max(nodes, int(self.num_edges * scale))
        features = max(16, int(self.num_features * min(1.0, scale * 4)))
        return CitationGraphSpec(
            name=self.name,
            num_nodes=nodes,
            num_edges=edges,
            num_features=features,
            num_classes=self.num_classes,
            homophily=self.homophily,
            degree_exponent=self.degree_exponent,
            feature_active=min(self.feature_active, max(4, features // 8)),
            feature_signal=self.feature_signal,
            class_imbalance=self.class_imbalance,
            split=self.split,
            train_per_class=self.train_per_class,
            num_val=max(20, int(self.num_val * scale)),
            num_test=max(40, int(self.num_test * scale)),
        )


def _sample_labels(spec: CitationGraphSpec, rng: np.random.Generator) -> np.ndarray:
    """Sample integer labels with mildly imbalanced class proportions."""
    proportions = rng.dirichlet([spec.class_imbalance] * spec.num_classes)
    labels = rng.choice(spec.num_classes, size=spec.num_nodes, p=proportions)
    # Guarantee every class has enough members for the planetoid split.
    needed = spec.train_per_class + 2
    for cls in range(spec.num_classes):
        members = np.flatnonzero(labels == cls)
        shortfall = needed - members.size
        if shortfall > 0:
            donors = rng.permutation(np.flatnonzero(labels != cls))[:shortfall]
            labels[donors] = cls
    return labels.astype(np.int64)


def _sample_edges(spec: CitationGraphSpec, labels: np.ndarray,
                  rng: np.random.Generator) -> np.ndarray:
    """Sample undirected edges with target homophily and power-law degrees."""
    n = spec.num_nodes
    propensity = rng.pareto(1.0 / max(spec.degree_exponent, 1e-6), size=n) + 1.0
    by_class: dict[int, np.ndarray] = {}
    class_probs: dict[int, np.ndarray] = {}
    for cls in range(spec.num_classes):
        members = np.flatnonzero(labels == cls)
        by_class[cls] = members
        weights = propensity[members]
        class_probs[cls] = weights / weights.sum() if members.size else weights
    all_probs = propensity / propensity.sum()
    class_sizes = np.array([by_class[c].size for c in range(spec.num_classes)], dtype=np.float64)
    class_weights = class_sizes / class_sizes.sum()

    seen: set[tuple[int, int]] = set()
    edges: list[tuple[int, int]] = []
    max_attempts = 60 * max(spec.num_edges, 1)
    attempts = 0
    while len(edges) < spec.num_edges and attempts < max_attempts:
        attempts += 1
        if rng.random() < spec.homophily:
            cls = int(rng.choice(spec.num_classes, p=class_weights))
            members = by_class[cls]
            if members.size < 2:
                continue
            u, v = rng.choice(members, size=2, replace=False, p=class_probs[cls])
        else:
            u = int(rng.choice(n, p=all_probs))
            v = int(rng.choice(n, p=all_probs))
            if labels[u] == labels[v] or u == v:
                continue
        u, v = int(u), int(v)
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in seen:
            continue
        seen.add(key)
        edges.append(key)
    return np.array(edges, dtype=np.int64).reshape(-1, 2)


def _sample_features(spec: CitationGraphSpec, labels: np.ndarray,
                     rng: np.random.Generator) -> np.ndarray:
    """Sample class-conditional sparse binary bag-of-words features."""
    d0 = spec.num_features
    # Concentrated per-class vocabularies: citation-graph bags-of-words have a
    # relatively small set of highly class-indicative terms, so the topic size
    # is capped rather than splitting the whole vocabulary evenly.
    topic_size = max(4, min(d0 // spec.num_classes, 48))
    class_topics = [
        rng.choice(d0, size=min(topic_size, d0), replace=False)
        for _ in range(spec.num_classes)
    ]
    features = np.zeros((spec.num_nodes, d0), dtype=np.float64)
    active = max(1, min(spec.feature_active, d0))
    for node in range(spec.num_nodes):
        topic = class_topics[labels[node]]
        count = max(1, rng.poisson(active))
        from_topic = rng.random(count) < spec.feature_signal
        n_topic = int(from_topic.sum())
        dims: list[int] = []
        if n_topic:
            dims.extend(rng.choice(topic, size=n_topic, replace=True).tolist())
        n_bg = count - n_topic
        if n_bg:
            dims.extend(rng.choice(d0, size=n_bg, replace=True).tolist())
        features[node, np.unique(dims)] = 1.0
    return features


def generate_citation_graph(spec: CitationGraphSpec, seed: int | np.random.Generator | None = 0,
                            ) -> GraphDataset:
    """Generate a synthetic citation graph matching ``spec``.

    The returned :class:`GraphDataset` already carries train/val/test splits
    according to the spec's split protocol.
    """
    rng = as_rng(seed)
    labels = _sample_labels(spec, rng)
    edge_list = _sample_edges(spec, labels, rng)
    adjacency = build_adjacency(edge_list, spec.num_nodes)
    features = _sample_features(spec, labels, rng)
    if spec.split == "planetoid":
        train_idx, val_idx, test_idx = per_class_split(
            labels,
            train_per_class=spec.train_per_class,
            num_val=spec.num_val,
            num_test=spec.num_test,
            rng=rng,
        )
    else:
        train_idx, val_idx, test_idx = fractional_split(spec.num_nodes, rng=rng)
    return GraphDataset(
        adjacency=adjacency,
        features=features,
        labels=labels,
        train_idx=train_idx,
        val_idx=val_idx,
        test_idx=test_idx,
        name=spec.name,
    )
