"""Structural statistics of :class:`~repro.graphs.graph.GraphDataset` objects.

These utilities back the Table-II regeneration, the DESIGN.md calibration of
the synthetic presets and several diagnostics in the examples: degree
statistics, sparsity, connected components, clustering coefficients and both
the node-averaged homophily ratio of Definition 7 (provided by
:mod:`repro.graphs.homophily`) and its edge-averaged variant.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components

from repro.exceptions import GraphDataError
from repro.graphs.graph import GraphDataset
from repro.graphs.homophily import homophily_ratio


@dataclass(frozen=True)
class GraphStatistics:
    """Headline structural statistics of an attributed graph."""

    name: str
    num_nodes: int
    num_edges: int
    num_features: int
    num_classes: int
    density: float
    average_degree: float
    max_degree: int
    min_degree: int
    degree_std: float
    num_isolated_nodes: int
    num_connected_components: int
    largest_component_fraction: float
    average_clustering: float
    node_homophily: float
    edge_homophily: float
    label_entropy: float

    def as_dict(self) -> dict:
        return asdict(self)


def degree_histogram(graph: GraphDataset) -> np.ndarray:
    """Counts of nodes per degree: ``hist[k]`` is the number of nodes with degree ``k``."""
    degrees = graph.degrees.astype(np.int64)
    if degrees.size == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(degrees, minlength=int(degrees.max()) + 1)


def edge_homophily_ratio(graph: GraphDataset) -> float:
    """Fraction of edges whose endpoints share a label (edge-averaged homophily)."""
    edges = graph.edges()
    if edges.shape[0] == 0:
        return 0.0
    same = graph.labels[edges[:, 0]] == graph.labels[edges[:, 1]]
    return float(np.mean(same))


def label_entropy(graph: GraphDataset) -> float:
    """Shannon entropy (nats) of the empirical label distribution."""
    if graph.labels.size == 0:
        return 0.0
    counts = np.bincount(graph.labels, minlength=graph.num_classes).astype(np.float64)
    probabilities = counts / counts.sum()
    nonzero = probabilities[probabilities > 0]
    return float(-(nonzero * np.log(nonzero)).sum())


def clustering_coefficients(graph: GraphDataset) -> np.ndarray:
    """Local clustering coefficient of every node.

    For node ``i`` with degree ``k_i``, the coefficient is the number of
    triangles through ``i`` divided by ``k_i (k_i - 1) / 2``; nodes with
    degree < 2 have coefficient 0.  Computed from the diagonal of ``A^3``.
    """
    adjacency = graph.adjacency.astype(np.float64)
    if adjacency.shape[0] == 0:
        return np.zeros(0)
    triangles = (adjacency @ adjacency @ adjacency).diagonal() / 2.0
    degrees = graph.degrees
    possible = degrees * (degrees - 1) / 2.0
    coefficients = np.zeros_like(triangles)
    mask = possible > 0
    coefficients[mask] = triangles[mask] / possible[mask]
    return coefficients


def average_clustering(graph: GraphDataset) -> float:
    """Mean local clustering coefficient over all nodes."""
    coefficients = clustering_coefficients(graph)
    return float(coefficients.mean()) if coefficients.size else 0.0


def component_sizes(graph: GraphDataset) -> np.ndarray:
    """Sizes of the connected components, sorted descending."""
    if graph.num_nodes == 0:
        return np.zeros(0, dtype=np.int64)
    count, labels = connected_components(graph.adjacency, directed=False)
    sizes = np.bincount(labels, minlength=count)
    return np.sort(sizes)[::-1].astype(np.int64)


def graph_density(graph: GraphDataset) -> float:
    """Edge density ``2m / (n (n - 1))`` of the undirected simple graph."""
    n = graph.num_nodes
    if n < 2:
        return 0.0
    return float(2.0 * graph.num_edges / (n * (n - 1)))


def compute_statistics(graph: GraphDataset) -> GraphStatistics:
    """Compute the full :class:`GraphStatistics` record for ``graph``."""
    if graph.num_nodes == 0:
        raise GraphDataError("cannot compute statistics of an empty graph")
    degrees = graph.degrees
    sizes = component_sizes(graph)
    return GraphStatistics(
        name=graph.name,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        num_features=graph.num_features,
        num_classes=graph.num_classes,
        density=graph_density(graph),
        average_degree=float(degrees.mean()),
        max_degree=int(degrees.max()),
        min_degree=int(degrees.min()),
        degree_std=float(degrees.std()),
        num_isolated_nodes=int(np.sum(degrees == 0)),
        num_connected_components=int(sizes.size),
        largest_component_fraction=float(sizes[0] / graph.num_nodes) if sizes.size else 0.0,
        average_clustering=average_clustering(graph),
        node_homophily=homophily_ratio(graph),
        edge_homophily=edge_homophily_ratio(graph),
        label_entropy=label_entropy(graph),
    )


def statistics_table(graphs: list[GraphDataset]) -> tuple[list[str], list[list]]:
    """Headers and rows summarising several graphs (for text-table rendering)."""
    headers = ["dataset", "nodes", "edges", "avg deg", "density",
               "components", "clustering", "homophily"]
    rows = []
    for graph in graphs:
        statistics = compute_statistics(graph)
        rows.append([
            statistics.name,
            statistics.num_nodes,
            statistics.num_edges,
            f"{statistics.average_degree:.2f}",
            f"{statistics.density:.4f}",
            statistics.num_connected_components,
            f"{statistics.average_clustering:.3f}",
            f"{statistics.node_homophily:.3f}",
        ])
    return headers, rows


def to_networkx(graph: GraphDataset):
    """Convert to a ``networkx.Graph`` with ``label`` node attributes (for interop)."""
    import networkx as nx

    nx_graph = nx.from_scipy_sparse_array(sp.csr_matrix(graph.adjacency))
    labels = {int(i): int(label) for i, label in enumerate(graph.labels)}
    nx.set_node_attributes(nx_graph, labels, name="label")
    return nx_graph
