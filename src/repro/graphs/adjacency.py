"""Adjacency-matrix construction and normalisation utilities.

The paper's propagation uses the row-stochastic normalisation
``Ã = D^{-1}(A + I)`` (Section IV-C2 with r = 0); the non-private GCN
baseline uses the symmetric normalisation ``D^{-1/2}(A + I)D^{-1/2}`` of Kipf
& Welling.  Both are provided here, along with edge add/remove helpers used
to construct edge-level neighbouring graphs for sensitivity experiments.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphDataError


def build_adjacency(edge_list: np.ndarray, num_nodes: int) -> sp.csr_matrix:
    """Build a symmetric binary adjacency matrix from an undirected edge list.

    Parameters
    ----------
    edge_list:
        Array of shape ``(m, 2)``; each row is an undirected edge.  Duplicate
        edges and both orientations are tolerated; self-loops are rejected.
    num_nodes:
        Number of nodes ``n``.
    """
    edge_list = np.asarray(edge_list, dtype=np.int64)
    if edge_list.size == 0:
        return sp.csr_matrix((num_nodes, num_nodes), dtype=np.float64)
    if edge_list.ndim != 2 or edge_list.shape[1] != 2:
        raise GraphDataError(f"edge_list must have shape (m, 2), got {edge_list.shape}")
    if np.any(edge_list < 0) or np.any(edge_list >= num_nodes):
        raise GraphDataError("edge_list contains out-of-range node indices")
    if np.any(edge_list[:, 0] == edge_list[:, 1]):
        raise GraphDataError("edge_list must not contain self-loops")
    rows = np.concatenate([edge_list[:, 0], edge_list[:, 1]])
    cols = np.concatenate([edge_list[:, 1], edge_list[:, 0]])
    data = np.ones(rows.shape[0], dtype=np.float64)
    adjacency = sp.coo_matrix((data, (rows, cols)), shape=(num_nodes, num_nodes)).tocsr()
    # Collapse duplicates to binary entries.
    adjacency.data[:] = 1.0
    adjacency.sum_duplicates()
    adjacency.data[:] = 1.0
    return adjacency


def add_self_loops(adjacency: sp.spmatrix) -> sp.csr_matrix:
    """Return ``A + I`` (the paper's ``Â``)."""
    n = adjacency.shape[0]
    return (sp.csr_matrix(adjacency) + sp.identity(n, format="csr")).tocsr()


def row_stochastic_normalize(adjacency: sp.spmatrix, add_loops: bool = True) -> sp.csr_matrix:
    """Row-stochastic message-passing matrix ``Ã = D^{-1}(A + I)``.

    This is the ``r = 0`` normalisation used by GCON (Section IV-C2): every
    row sums to one, which is the property Lemma 1 relies on.
    """
    matrix = add_self_loops(adjacency) if add_loops else sp.csr_matrix(adjacency)
    degrees = np.asarray(matrix.sum(axis=1)).ravel()
    inv = np.zeros_like(degrees)
    nonzero = degrees > 0
    inv[nonzero] = 1.0 / degrees[nonzero]
    return sp.diags(inv).dot(matrix).tocsr()


def symmetric_normalize(adjacency: sp.spmatrix, add_loops: bool = True) -> sp.csr_matrix:
    """Symmetric normalisation ``D^{-1/2}(A + I)D^{-1/2}`` (Kipf & Welling GCN)."""
    matrix = add_self_loops(adjacency) if add_loops else sp.csr_matrix(adjacency)
    degrees = np.asarray(matrix.sum(axis=1)).ravel()
    inv_sqrt = np.zeros_like(degrees)
    nonzero = degrees > 0
    inv_sqrt[nonzero] = 1.0 / np.sqrt(degrees[nonzero])
    diag = sp.diags(inv_sqrt)
    return diag.dot(matrix).dot(diag).tocsr()


def general_normalize(adjacency: sp.spmatrix, r: float, add_loops: bool = True) -> sp.csr_matrix:
    """General normalisation ``D^{r-1}(A + I)D^{-r}`` with ``r`` in ``[0, 1]``.

    ``r = 0`` recovers :func:`row_stochastic_normalize` and ``r = 0.5`` the
    symmetric normalisation.
    """
    if not 0.0 <= r <= 1.0:
        raise GraphDataError(f"r must be in [0, 1], got {r}")
    matrix = add_self_loops(adjacency) if add_loops else sp.csr_matrix(adjacency)
    degrees = np.asarray(matrix.sum(axis=1)).ravel()
    with np.errstate(divide="ignore"):
        left = np.where(degrees > 0, degrees ** (r - 1.0), 0.0)
        right = np.where(degrees > 0, degrees ** (-r), 0.0)
    return sp.diags(left).dot(matrix).dot(sp.diags(right)).tocsr()


def remove_edge(adjacency: sp.spmatrix, u: int, v: int) -> sp.csr_matrix:
    """Return a copy of ``adjacency`` with the undirected edge (u, v) removed."""
    if u == v:
        raise GraphDataError("cannot remove a self-loop: u == v")
    matrix = sp.lil_matrix(adjacency, dtype=np.float64)
    if matrix[u, v] == 0:
        raise GraphDataError(f"edge ({u}, {v}) is not present")
    matrix[u, v] = 0.0
    matrix[v, u] = 0.0
    out = matrix.tocsr()
    out.eliminate_zeros()
    return out


def add_edge(adjacency: sp.spmatrix, u: int, v: int) -> sp.csr_matrix:
    """Return a copy of ``adjacency`` with the undirected edge (u, v) added."""
    if u == v:
        raise GraphDataError("cannot add a self-loop: u == v")
    matrix = sp.lil_matrix(adjacency, dtype=np.float64)
    if matrix[u, v] != 0:
        raise GraphDataError(f"edge ({u}, {v}) is already present")
    matrix[u, v] = 1.0
    matrix[v, u] = 1.0
    return matrix.tocsr()
