"""Train/validation/test split strategies.

The paper follows the standard citation-graph protocol (Appendix P): a fixed
split with 20 labelled nodes per class for training, 500 validation nodes and
1000 test nodes on Cora-ML / CiteSeer / PubMed, and random 60/20/20 splits on
Actor.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.random import as_rng


def per_class_split(labels: np.ndarray, train_per_class: int = 20, num_val: int = 500,
                    num_test: int = 1000, rng=None) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Planetoid-style split: ``train_per_class`` per class, then val, then test.

    Returns ``(train_idx, val_idx, test_idx)``.  If the graph is too small to
    honour ``num_val``/``num_test`` the remaining nodes are shared between
    validation and test proportionally.
    """
    labels = np.asarray(labels, dtype=np.int64)
    rng = as_rng(rng)
    n = labels.shape[0]
    classes = np.unique(labels)
    train: list[int] = []
    for cls in classes:
        members = np.flatnonzero(labels == cls)
        if members.size == 0:
            continue
        chosen = rng.permutation(members)[:min(train_per_class, members.size)]
        train.extend(chosen.tolist())
    train_idx = np.array(sorted(train), dtype=np.int64)
    remaining = np.setdiff1d(np.arange(n), train_idx)
    remaining = rng.permutation(remaining)
    if remaining.size < num_val + num_test:
        num_val_eff = int(remaining.size * num_val / max(num_val + num_test, 1))
        num_test_eff = remaining.size - num_val_eff
    else:
        num_val_eff, num_test_eff = num_val, num_test
    val_idx = np.sort(remaining[:num_val_eff]).astype(np.int64)
    test_idx = np.sort(remaining[num_val_eff:num_val_eff + num_test_eff]).astype(np.int64)
    return train_idx, val_idx, test_idx


def fractional_split(num_nodes: int, fractions: tuple[float, float, float] = (0.6, 0.2, 0.2),
                     rng=None) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Random split by fractions (the paper's Actor protocol: 60/20/20)."""
    if len(fractions) != 3:
        raise ConfigurationError("fractions must have exactly three entries")
    if any(f < 0 for f in fractions) or abs(sum(fractions) - 1.0) > 1e-8:
        raise ConfigurationError(f"fractions must be non-negative and sum to 1, got {fractions}")
    rng = as_rng(rng)
    order = rng.permutation(num_nodes)
    n_train = int(round(fractions[0] * num_nodes))
    n_val = int(round(fractions[1] * num_nodes))
    train_idx = np.sort(order[:n_train]).astype(np.int64)
    val_idx = np.sort(order[n_train:n_train + n_val]).astype(np.int64)
    test_idx = np.sort(order[n_train + n_val:]).astype(np.int64)
    return train_idx, val_idx, test_idx
