"""Persistence for :class:`GraphDataset` objects (compressed ``.npz``)."""

from __future__ import annotations

from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import GraphDataset


def save_graph(graph: GraphDataset, path: str | Path) -> Path:
    """Serialise ``graph`` to a compressed ``.npz`` file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    adjacency = sp.csr_matrix(graph.adjacency)
    np.savez_compressed(
        path,
        adj_data=adjacency.data,
        adj_indices=adjacency.indices,
        adj_indptr=adjacency.indptr,
        adj_shape=np.array(adjacency.shape),
        features=graph.features,
        labels=graph.labels,
        train_idx=graph.train_idx,
        val_idx=graph.val_idx,
        test_idx=graph.test_idx,
        name=np.array(graph.name),
    )
    return path


def load_graph(path: str | Path) -> GraphDataset:
    """Load a :class:`GraphDataset` previously written by :func:`save_graph`."""
    with np.load(Path(path), allow_pickle=False) as data:
        adjacency = sp.csr_matrix(
            (data["adj_data"], data["adj_indices"], data["adj_indptr"]),
            shape=tuple(data["adj_shape"]),
        )
        return GraphDataset(
            adjacency=adjacency,
            features=data["features"],
            labels=data["labels"],
            train_idx=data["train_idx"],
            val_idx=data["val_idx"],
            test_idx=data["test_idx"],
            name=str(data["name"]),
        )
