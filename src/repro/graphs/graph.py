"""The :class:`GraphDataset` container used throughout the library.

A dataset is the tuple ``D = <V, E, X, Y>`` of the paper's problem setting
(Section III): an undirected simple graph over ``n`` nodes, a dense feature
matrix ``X`` of shape ``(n, d0)``, integer class labels ``Y`` of shape
``(n,)`` and train/validation/test index splits.  The edge set is stored as a
symmetric ``scipy.sparse.csr_matrix`` without self-loops; edge-level DP
treats a single undirected edge as one record.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphDataError
from repro.utils.math import one_hot


@dataclass
class GraphDataset:
    """An attributed graph with node labels and index splits.

    Attributes
    ----------
    adjacency:
        Symmetric binary sparse matrix of shape ``(n, n)`` with zero diagonal.
    features:
        Dense node feature matrix of shape ``(n, d0)``.
    labels:
        Integer class labels of shape ``(n,)`` in ``[0, num_classes)``.
    train_idx, val_idx, test_idx:
        Disjoint integer index arrays into the node set.
    name:
        Human-readable dataset name (e.g. ``"cora_ml"``).
    """

    adjacency: sp.csr_matrix
    features: np.ndarray
    labels: np.ndarray
    train_idx: np.ndarray = field(default_factory=lambda: np.array([], dtype=np.int64))
    val_idx: np.ndarray = field(default_factory=lambda: np.array([], dtype=np.int64))
    test_idx: np.ndarray = field(default_factory=lambda: np.array([], dtype=np.int64))
    name: str = "graph"

    def __post_init__(self) -> None:
        self.adjacency = sp.csr_matrix(self.adjacency, dtype=np.float64)
        self.features = np.asarray(self.features, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        self.train_idx = np.asarray(self.train_idx, dtype=np.int64)
        self.val_idx = np.asarray(self.val_idx, dtype=np.int64)
        self.test_idx = np.asarray(self.test_idx, dtype=np.int64)
        self.validate()

    # ------------------------------------------------------------------ #
    # validation and basic statistics
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Raise :class:`GraphDataError` if the dataset is inconsistent."""
        n = self.adjacency.shape[0]
        if self.adjacency.shape[0] != self.adjacency.shape[1]:
            raise GraphDataError(f"adjacency must be square, got {self.adjacency.shape}")
        if self.features.ndim != 2 or self.features.shape[0] != n:
            raise GraphDataError(
                f"features must have shape (n, d0) with n={n}, got {self.features.shape}"
            )
        if self.labels.shape != (n,):
            raise GraphDataError(f"labels must have shape ({n},), got {self.labels.shape}")
        if self.labels.size and self.labels.min() < 0:
            raise GraphDataError("labels must be non-negative integers")
        if self.adjacency.diagonal().sum() != 0:
            raise GraphDataError("adjacency must not contain self-loops")
        diff = (self.adjacency - self.adjacency.T)
        if diff.nnz and np.abs(diff.data).max() > 1e-9:
            raise GraphDataError("adjacency must be symmetric (undirected graph)")
        for split_name in ("train_idx", "val_idx", "test_idx"):
            idx = getattr(self, split_name)
            if idx.size and (idx.min() < 0 or idx.max() >= n):
                raise GraphDataError(f"{split_name} contains out-of-range node indices")

    @property
    def num_nodes(self) -> int:
        return self.adjacency.shape[0]

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (each counted once)."""
        return int(self.adjacency.nnz // 2)

    @property
    def num_features(self) -> int:
        return self.features.shape[1]

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1 if self.labels.size else 0

    @property
    def degrees(self) -> np.ndarray:
        """Node degrees (not counting self-loops)."""
        return np.asarray(self.adjacency.sum(axis=1)).ravel()

    def label_matrix(self) -> np.ndarray:
        """One-hot encoded label matrix ``Y`` of shape ``(n, c)``."""
        return one_hot(self.labels, self.num_classes)

    # ------------------------------------------------------------------ #
    # edge-level neighbouring datasets
    # ------------------------------------------------------------------ #
    def edges(self) -> np.ndarray:
        """Return the undirected edge list as an ``(m, 2)`` array with u < v."""
        coo = sp.triu(self.adjacency, k=1).tocoo()
        return np.stack([coo.row, coo.col], axis=1).astype(np.int64)

    def without_edge(self, u: int, v: int) -> "GraphDataset":
        """Return the edge-level neighbouring dataset with edge (u, v) removed."""
        from repro.graphs.adjacency import remove_edge

        return replace(self, adjacency=remove_edge(self.adjacency, u, v), name=self.name)

    def with_edge(self, u: int, v: int) -> "GraphDataset":
        """Return the edge-level neighbouring dataset with edge (u, v) added."""
        from repro.graphs.adjacency import add_edge

        return replace(self, adjacency=add_edge(self.adjacency, u, v), name=self.name)

    # ------------------------------------------------------------------ #
    # convenience
    # ------------------------------------------------------------------ #
    def subgraph(self, nodes: np.ndarray, name: str | None = None) -> "GraphDataset":
        """Return the induced subgraph on ``nodes`` (splits are re-indexed)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        mapping = -np.ones(self.num_nodes, dtype=np.int64)
        mapping[nodes] = np.arange(nodes.size)
        sub_adj = self.adjacency[nodes][:, nodes].tocsr()

        def remap(idx: np.ndarray) -> np.ndarray:
            remapped = mapping[idx]
            return remapped[remapped >= 0]

        return GraphDataset(
            adjacency=sub_adj,
            features=self.features[nodes],
            labels=self.labels[nodes],
            train_idx=remap(self.train_idx),
            val_idx=remap(self.val_idx),
            test_idx=remap(self.test_idx),
            name=name or f"{self.name}_sub",
        )

    def summary(self) -> dict[str, float]:
        """Return headline statistics (the columns of the paper's Table II)."""
        from repro.graphs.homophily import homophily_ratio

        return {
            "name": self.name,
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "features": self.num_features,
            "classes": self.num_classes,
            "homophily": homophily_ratio(self),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"GraphDataset(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges}, features={self.num_features}, "
            f"classes={self.num_classes})"
        )
