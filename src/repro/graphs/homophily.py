"""Homophily ratio (Definition 7 of the paper).

The homophily ratio is the average, over nodes with at least one neighbour, of
the fraction of a node's neighbours that share its label.  Homophilous
citation graphs (Cora-ML, CiteSeer, PubMed) have ratios around 0.7-0.8 while
the heterophilous Actor graph sits near 0.22.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def homophily_ratio(graph) -> float:
    """Compute the node-averaged homophily ratio of a :class:`GraphDataset`.

    Nodes without neighbours are excluded from the average (they contribute
    no edges and Definition 7's inner average is undefined for them).
    """
    adjacency = sp.csr_matrix(graph.adjacency)
    labels = np.asarray(graph.labels)
    n = adjacency.shape[0]
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    indptr, indices = adjacency.indptr, adjacency.indices
    ratios = []
    for node in range(n):
        neighbours = indices[indptr[node]:indptr[node + 1]]
        if neighbours.size == 0:
            continue
        same = np.count_nonzero(labels[neighbours] == labels[node])
        ratios.append(same / neighbours.size)
    if not ratios:
        return 0.0
    # Definition 7 normalises by |V|; we follow the common convention of
    # averaging over nodes that actually have neighbours, which matches the
    # reported Table II values for connected benchmark graphs.
    _ = degrees  # degrees retained for clarity of the definition
    return float(np.mean(ratios))


def edge_homophily_ratio(graph) -> float:
    """Fraction of edges whose endpoints share a label (edge-level homophily)."""
    edges = graph.edges()
    if edges.shape[0] == 0:
        return 0.0
    labels = np.asarray(graph.labels)
    same = labels[edges[:, 0]] == labels[edges[:, 1]]
    return float(np.mean(same))
