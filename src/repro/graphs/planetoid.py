"""Loader for Planetoid/Cora-style plain-text graph files.

The paper's graphs (Cora-ML, CiteSeer, PubMed) are normally distributed as a
pair of plain-text files in the "content/cites" format popularised by the
original Cora release:

* ``<name>.content`` — one line per node: ``node_id  f_1 ... f_d  class_label``;
* ``<name>.cites``   — one line per edge: ``citing_id  cited_id``.

This environment has no network access, so the benchmark harness uses the
synthetic presets of :mod:`repro.graphs.datasets`; but a downstream user with
the real files on disk can load them through this module and run every
experiment on the genuine data.  Unknown node ids in the edge file are
skipped with a warning counter (the convention used by most public loaders),
and the split protocol of Appendix P (20 per class / 500 / 1000) is applied.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.exceptions import GraphDataError
from repro.graphs.adjacency import build_adjacency
from repro.graphs.graph import GraphDataset
from repro.graphs.splits import fractional_split, per_class_split
from repro.utils.random import as_rng


@dataclass(frozen=True)
class PlanetoidLoadReport:
    """Bookkeeping of one content/cites load (returned next to the dataset)."""

    num_nodes: int
    num_edges: int
    num_skipped_edges: int
    num_self_loops_dropped: int
    num_duplicate_edges: int
    label_names: tuple


def parse_content_file(path: str | Path) -> tuple[list[str], np.ndarray, np.ndarray, tuple]:
    """Parse a ``.content`` file into (node_ids, features, labels, label_names)."""
    path = Path(path)
    if not path.exists():
        raise GraphDataError(f"content file {path} does not exist")
    node_ids: list[str] = []
    rows: list[np.ndarray] = []
    raw_labels: list[str] = []
    expected_width: int | None = None
    for line_number, line in enumerate(path.read_text().splitlines(), start=1):
        tokens = line.split()
        if not tokens:
            continue
        if len(tokens) < 3:
            raise GraphDataError(
                f"{path}:{line_number}: expected 'id features... label', got {len(tokens)} tokens"
            )
        if expected_width is None:
            expected_width = len(tokens)
        elif len(tokens) != expected_width:
            raise GraphDataError(
                f"{path}:{line_number}: inconsistent column count "
                f"({len(tokens)} vs {expected_width})"
            )
        node_ids.append(tokens[0])
        rows.append(np.asarray([float(value) for value in tokens[1:-1]], dtype=np.float64))
        raw_labels.append(tokens[-1])
    if not node_ids:
        raise GraphDataError(f"content file {path} is empty")
    if len(set(node_ids)) != len(node_ids):
        raise GraphDataError(f"content file {path} contains duplicate node ids")
    label_names = tuple(sorted(set(raw_labels)))
    label_index = {name: index for index, name in enumerate(label_names)}
    labels = np.asarray([label_index[label] for label in raw_labels], dtype=np.int64)
    return node_ids, np.vstack(rows), labels, label_names


def parse_cites_file(path: str | Path, node_ids: list[str],
                     ) -> tuple[np.ndarray, int, int, int]:
    """Parse a ``.cites`` file into an edge list over known node indices.

    Returns ``(edges, skipped, self_loops, duplicates)`` where ``edges`` is an
    ``(m, 2)`` array of undirected edges with ``u < v``.
    """
    path = Path(path)
    if not path.exists():
        raise GraphDataError(f"cites file {path} does not exist")
    index = {node_id: position for position, node_id in enumerate(node_ids)}
    seen: set[tuple[int, int]] = set()
    skipped = 0
    self_loops = 0
    duplicates = 0
    for line_number, line in enumerate(path.read_text().splitlines(), start=1):
        tokens = line.split()
        if not tokens:
            continue
        if len(tokens) != 2:
            raise GraphDataError(
                f"{path}:{line_number}: expected 'citing cited', got {len(tokens)} tokens"
            )
        source, target = tokens
        if source not in index or target not in index:
            skipped += 1
            continue
        u, v = index[source], index[target]
        if u == v:
            self_loops += 1
            continue
        edge = (u, v) if u < v else (v, u)
        if edge in seen:
            duplicates += 1
            continue
        seen.add(edge)
    edges = np.asarray(sorted(seen), dtype=np.int64).reshape(-1, 2)
    return edges, skipped, self_loops, duplicates


def load_planetoid(content_path: str | Path, cites_path: str | Path, *,
                   name: str = "planetoid", split: str = "planetoid",
                   train_per_class: int = 20, num_val: int = 500, num_test: int = 1000,
                   normalize_features: bool = True,
                   seed: int | np.random.Generator | None = 0,
                   ) -> tuple[GraphDataset, PlanetoidLoadReport]:
    """Load a content/cites pair into a :class:`GraphDataset` plus a load report.

    ``split="planetoid"`` applies the Appendix-P protocol (20 labelled nodes
    per class, 500 validation, 1000 test); ``split="fractional"`` applies the
    Actor-style random 60/20/20 split.
    """
    if split not in ("planetoid", "fractional"):
        raise GraphDataError(f"split must be 'planetoid' or 'fractional', got {split!r}")
    rng = as_rng(seed)
    node_ids, features, labels, label_names = parse_content_file(content_path)
    edges, skipped, self_loops, duplicates = parse_cites_file(cites_path, node_ids)
    adjacency = build_adjacency(edges, len(node_ids))

    if normalize_features:
        row_sums = features.sum(axis=1, keepdims=True)
        features = np.divide(features, np.maximum(row_sums, 1e-12))

    if split == "planetoid":
        train_idx, val_idx, test_idx = per_class_split(
            labels, train_per_class=train_per_class, num_val=num_val, num_test=num_test,
            rng=rng,
        )
    else:
        train_idx, val_idx, test_idx = fractional_split(len(node_ids), rng=rng)

    graph = GraphDataset(
        adjacency=adjacency, features=features, labels=labels,
        train_idx=train_idx, val_idx=val_idx, test_idx=test_idx, name=name,
    )
    report = PlanetoidLoadReport(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        num_skipped_edges=skipped,
        num_self_loops_dropped=self_loops,
        num_duplicate_edges=duplicates,
        label_names=label_names,
    )
    return graph, report


def write_planetoid(graph: GraphDataset, directory: str | Path,
                    name: str | None = None) -> tuple[Path, Path]:
    """Write a :class:`GraphDataset` out in content/cites format (round-trip helper)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    name = name or graph.name
    content_path = directory / f"{name}.content"
    cites_path = directory / f"{name}.cites"
    with content_path.open("w") as handle:
        for node in range(graph.num_nodes):
            feature_text = " ".join(f"{value:g}" for value in graph.features[node])
            handle.write(f"n{node} {feature_text} class_{graph.labels[node]}\n")
    with cites_path.open("w") as handle:
        for u, v in graph.edges():
            handle.write(f"n{u} n{v}\n")
    return content_path, cites_path
