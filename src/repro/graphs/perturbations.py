"""Edge-level neighbouring-graph construction and edge perturbation utilities.

Edge DP reasons about pairs of graphs that differ in exactly one undirected
edge (Definition 2 specialised to graphs, Section II-C).  The helpers here
enumerate and sample such pairs — they power the empirical sensitivity checks
of Lemma 2 in the test suite, the privacy audit, and the attack-candidate
sampling — and provide bulk random edge addition/removal used to study
robustness to graph noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.exceptions import GraphDataError
from repro.graphs.graph import GraphDataset
from repro.utils.random import as_rng


@dataclass(frozen=True)
class NeighboringPair:
    """A graph and one of its edge-level neighbours.

    ``kind`` is ``"remove"`` when the neighbour lacks an edge present in the
    original graph and ``"add"`` when the neighbour has one extra edge.
    """

    original: GraphDataset
    neighbor: GraphDataset
    edge: tuple[int, int]
    kind: str


def sample_absent_edge(graph: GraphDataset,
                       rng: int | np.random.Generator | None = None) -> tuple[int, int]:
    """Sample a uniformly random node pair (u < v) that is *not* an edge."""
    rng = as_rng(rng)
    n = graph.num_nodes
    if n < 2:
        raise GraphDataError("need at least two nodes to sample a non-edge")
    max_edges = n * (n - 1) // 2
    if graph.num_edges >= max_edges:
        raise GraphDataError("the graph is complete; no absent edge exists")
    adjacency = graph.adjacency
    while True:
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u == v:
            continue
        u, v = (u, v) if u < v else (v, u)
        if adjacency[u, v] == 0:
            return u, v


def sample_present_edge(graph: GraphDataset,
                        rng: int | np.random.Generator | None = None) -> tuple[int, int]:
    """Sample a uniformly random existing undirected edge (u < v)."""
    rng = as_rng(rng)
    edges = graph.edges()
    if edges.shape[0] == 0:
        raise GraphDataError("the graph has no edges to sample")
    index = int(rng.integers(0, edges.shape[0]))
    return int(edges[index, 0]), int(edges[index, 1])


def sample_neighboring_pair(graph: GraphDataset, kind: str = "remove",
                            rng: int | np.random.Generator | None = None) -> NeighboringPair:
    """Sample one edge-level neighbouring pair of ``graph``.

    ``kind="remove"`` drops a random existing edge; ``kind="add"`` inserts a
    random absent edge; ``kind="either"`` flips a fair coin between the two.
    """
    rng = as_rng(rng)
    if kind == "either":
        kind = "remove" if rng.random() < 0.5 else "add"
    if kind == "remove":
        u, v = sample_present_edge(graph, rng)
        return NeighboringPair(graph, graph.without_edge(u, v), (u, v), "remove")
    if kind == "add":
        u, v = sample_absent_edge(graph, rng)
        return NeighboringPair(graph, graph.with_edge(u, v), (u, v), "add")
    raise GraphDataError(f"kind must be 'remove', 'add' or 'either', got {kind!r}")


def iter_neighboring_pairs(graph: GraphDataset, count: int, kind: str = "remove",
                           rng: int | np.random.Generator | None = None,
                           ) -> Iterator[NeighboringPair]:
    """Yield ``count`` independently sampled neighbouring pairs."""
    if count < 0:
        raise GraphDataError(f"count must be >= 0, got {count}")
    rng = as_rng(rng)
    for _ in range(count):
        yield sample_neighboring_pair(graph, kind=kind, rng=rng)


def remove_random_edges(graph: GraphDataset, fraction: float,
                        rng: int | np.random.Generator | None = None) -> GraphDataset:
    """Return a copy of ``graph`` with a random ``fraction`` of its edges removed."""
    if not 0.0 <= fraction <= 1.0:
        raise GraphDataError(f"fraction must be in [0, 1], got {fraction}")
    rng = as_rng(rng)
    edges = graph.edges()
    num_remove = int(round(fraction * edges.shape[0]))
    if num_remove == 0:
        return graph
    chosen = rng.choice(edges.shape[0], size=num_remove, replace=False)
    perturbed = graph
    for index in chosen:
        u, v = int(edges[index, 0]), int(edges[index, 1])
        perturbed = perturbed.without_edge(u, v)
    return perturbed


def add_random_edges(graph: GraphDataset, count: int,
                     rng: int | np.random.Generator | None = None) -> GraphDataset:
    """Return a copy of ``graph`` with ``count`` uniformly random new edges added."""
    if count < 0:
        raise GraphDataError(f"count must be >= 0, got {count}")
    rng = as_rng(rng)
    perturbed = graph
    for _ in range(count):
        u, v = sample_absent_edge(perturbed, rng)
        perturbed = perturbed.with_edge(u, v)
    return perturbed


def rewire_edges(graph: GraphDataset, fraction: float,
                 rng: int | np.random.Generator | None = None) -> GraphDataset:
    """Rewire a random ``fraction`` of edges (remove each and add a random non-edge).

    Keeps the edge count constant while destroying structure; used to study
    how homophily degradation affects GCON versus the baselines.
    """
    if not 0.0 <= fraction <= 1.0:
        raise GraphDataError(f"fraction must be in [0, 1], got {fraction}")
    rng = as_rng(rng)
    edges = graph.edges()
    num_rewire = int(round(fraction * edges.shape[0]))
    if num_rewire == 0:
        return graph
    chosen = rng.choice(edges.shape[0], size=num_rewire, replace=False)
    perturbed = graph
    for index in chosen:
        u, v = int(edges[index, 0]), int(edges[index, 1])
        perturbed = perturbed.without_edge(u, v)
        new_u, new_v = sample_absent_edge(perturbed, rng)
        perturbed = perturbed.with_edge(new_u, new_v)
    return perturbed


def edge_flip_distance(first: GraphDataset, second: GraphDataset) -> int:
    """Number of undirected edges by which two graphs over the same node set differ."""
    if first.num_nodes != second.num_nodes:
        raise GraphDataError("graphs must share the same node set")
    difference = (first.adjacency != second.adjacency)
    return int(difference.nnz // 2)
