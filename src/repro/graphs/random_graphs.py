"""Classic random-graph models wrapped as :class:`GraphDataset` factories.

The paper's evaluation runs on citation-style graphs, but several of its
claims (the Lemma-1/2 sensitivity bounds, the robustness of GCON's unaltered
aggregation) are structural and worth exercising on other topologies.  These
factories build Erdős–Rényi, Barabási–Albert and planted-partition (SBM)
graphs and attach class-conditional Gaussian features so every model in the
library can train on them.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphDataError
from repro.graphs.graph import GraphDataset
from repro.graphs.splits import fractional_split
from repro.utils.random import as_rng


def _attach_features_and_splits(adjacency: sp.csr_matrix, labels: np.ndarray,
                                num_features: int, feature_signal: float,
                                rng: np.random.Generator, name: str) -> GraphDataset:
    """Attach class-conditional Gaussian features and 60/20/20 splits."""
    num_nodes = labels.size
    num_classes = int(labels.max()) + 1 if num_nodes else 0
    centroids = rng.normal(0.0, 1.0, size=(num_classes, num_features))
    features = rng.normal(0.0, 1.0, size=(num_nodes, num_features))
    features += feature_signal * centroids[labels]
    train_idx, val_idx, test_idx = fractional_split(num_nodes, rng=rng)
    return GraphDataset(
        adjacency=adjacency,
        features=features,
        labels=labels,
        train_idx=train_idx,
        val_idx=val_idx,
        test_idx=test_idx,
        name=name,
    )


def _symmetric_from_pairs(num_nodes: int, rows: np.ndarray, cols: np.ndarray) -> sp.csr_matrix:
    """Build a symmetric binary adjacency matrix from (row, col) index arrays."""
    if rows.size == 0:
        return sp.csr_matrix((num_nodes, num_nodes), dtype=np.float64)
    data = np.ones(rows.size, dtype=np.float64)
    upper = sp.coo_matrix((data, (rows, cols)), shape=(num_nodes, num_nodes))
    adjacency = upper + upper.T
    adjacency.data = np.minimum(adjacency.data, 1.0)
    adjacency.setdiag(0.0)
    adjacency.eliminate_zeros()
    return adjacency.tocsr()


def erdos_renyi_graph(num_nodes: int, edge_probability: float, num_classes: int = 2,
                      num_features: int = 16, feature_signal: float = 1.0,
                      seed: int | np.random.Generator | None = 0) -> GraphDataset:
    """G(n, p) Erdős–Rényi graph with uniformly random labels."""
    if num_nodes < 1:
        raise GraphDataError(f"num_nodes must be >= 1, got {num_nodes}")
    if not 0.0 <= edge_probability <= 1.0:
        raise GraphDataError(f"edge_probability must be in [0, 1], got {edge_probability}")
    if num_classes < 1:
        raise GraphDataError(f"num_classes must be >= 1, got {num_classes}")
    rng = as_rng(seed)
    upper_i, upper_j = np.triu_indices(num_nodes, k=1)
    mask = rng.random(upper_i.size) < edge_probability
    adjacency = _symmetric_from_pairs(num_nodes, upper_i[mask], upper_j[mask])
    labels = rng.integers(0, num_classes, size=num_nodes)
    return _attach_features_and_splits(
        adjacency, labels, num_features, feature_signal, rng, name="erdos_renyi",
    )


def barabasi_albert_graph(num_nodes: int, attachment: int = 2, num_classes: int = 2,
                          num_features: int = 16, feature_signal: float = 1.0,
                          seed: int | np.random.Generator | None = 0) -> GraphDataset:
    """Barabási–Albert preferential-attachment graph (heavy-tailed degrees).

    Each new node attaches to ``attachment`` existing nodes chosen with
    probability proportional to their current degree.
    """
    if num_nodes < 2:
        raise GraphDataError(f"num_nodes must be >= 2, got {num_nodes}")
    if not 1 <= attachment < num_nodes:
        raise GraphDataError(
            f"attachment must be in [1, num_nodes), got {attachment} for n={num_nodes}"
        )
    rng = as_rng(seed)
    rows: list[int] = []
    cols: list[int] = []
    # Repeated-node list implements preferential attachment in O(m).
    repeated: list[int] = list(range(attachment))
    for new_node in range(attachment, num_nodes):
        targets: set[int] = set()
        while len(targets) < attachment:
            if repeated and rng.random() > 1.0 / (len(targets) + 2):
                candidate = int(repeated[int(rng.integers(0, len(repeated)))])
            else:
                candidate = int(rng.integers(0, new_node))
            if candidate != new_node:
                targets.add(candidate)
        for target in targets:
            rows.append(min(new_node, target))
            cols.append(max(new_node, target))
            repeated.extend([new_node, target])
    adjacency = _symmetric_from_pairs(num_nodes, np.asarray(rows), np.asarray(cols))
    labels = rng.integers(0, num_classes, size=num_nodes)
    return _attach_features_and_splits(
        adjacency, labels, num_features, feature_signal, rng, name="barabasi_albert",
    )


def planted_partition_graph(num_nodes: int, num_classes: int = 4,
                            intra_probability: float = 0.05,
                            inter_probability: float = 0.005,
                            num_features: int = 16, feature_signal: float = 1.0,
                            seed: int | np.random.Generator | None = 0) -> GraphDataset:
    """Planted-partition stochastic block model with balanced communities.

    ``intra_probability > inter_probability`` yields a homophilous graph;
    reversing them yields a heterophilous one (the Actor-like regime).
    """
    if num_nodes < num_classes:
        raise GraphDataError("num_nodes must be at least num_classes")
    for name, value in (("intra_probability", intra_probability),
                        ("inter_probability", inter_probability)):
        if not 0.0 <= value <= 1.0:
            raise GraphDataError(f"{name} must be in [0, 1], got {value}")
    rng = as_rng(seed)
    labels = np.sort(rng.integers(0, num_classes, size=num_nodes))
    upper_i, upper_j = np.triu_indices(num_nodes, k=1)
    same_block = labels[upper_i] == labels[upper_j]
    probabilities = np.where(same_block, intra_probability, inter_probability)
    mask = rng.random(upper_i.size) < probabilities
    adjacency = _symmetric_from_pairs(num_nodes, upper_i[mask], upper_j[mask])
    return _attach_features_and_splits(
        adjacency, labels, num_features, feature_signal, rng, name="planted_partition",
    )


def ring_of_cliques(num_cliques: int, clique_size: int, num_features: int = 8,
                    feature_signal: float = 1.0,
                    seed: int | np.random.Generator | None = 0) -> GraphDataset:
    """A ring of fully connected cliques — a deterministic, perfectly homophilous graph.

    Each clique is one class; consecutive cliques are joined by a single
    bridge edge.  Useful as a worst-case/best-case fixture: bridges are the
    only heterophilous edges, so homophily approaches 1 as cliques grow.
    """
    if num_cliques < 2:
        raise GraphDataError(f"num_cliques must be >= 2, got {num_cliques}")
    if clique_size < 2:
        raise GraphDataError(f"clique_size must be >= 2, got {clique_size}")
    rng = as_rng(seed)
    num_nodes = num_cliques * clique_size
    rows: list[int] = []
    cols: list[int] = []
    labels = np.zeros(num_nodes, dtype=np.int64)
    for clique in range(num_cliques):
        start = clique * clique_size
        members = range(start, start + clique_size)
        labels[start:start + clique_size] = clique
        for u in members:
            for v in members:
                if u < v:
                    rows.append(u)
                    cols.append(v)
        bridge_from = start + clique_size - 1
        bridge_to = ((clique + 1) % num_cliques) * clique_size
        rows.append(min(bridge_from, bridge_to))
        cols.append(max(bridge_from, bridge_to))
    adjacency = _symmetric_from_pairs(num_nodes, np.asarray(rows), np.asarray(cols))
    return _attach_features_and_splits(
        adjacency, labels, num_features, feature_signal, rng, name="ring_of_cliques",
    )
