"""Graph dataset substrate: containers, normalisation, generators and splits."""

from repro.graphs.graph import GraphDataset
from repro.graphs.adjacency import (
    build_adjacency,
    add_self_loops,
    row_stochastic_normalize,
    symmetric_normalize,
    remove_edge,
    add_edge,
)
from repro.graphs.homophily import homophily_ratio
from repro.graphs.generators import generate_citation_graph, CitationGraphSpec
from repro.graphs.datasets import load_dataset, list_datasets, dataset_statistics
from repro.graphs.splits import per_class_split, fractional_split
from repro.graphs.statistics import (
    GraphStatistics,
    compute_statistics,
    degree_histogram,
    edge_homophily_ratio,
    average_clustering,
    component_sizes,
    graph_density,
)
from repro.graphs.perturbations import (
    NeighboringPair,
    sample_neighboring_pair,
    iter_neighboring_pairs,
    remove_random_edges,
    add_random_edges,
    rewire_edges,
    edge_flip_distance,
)
from repro.graphs.planetoid import load_planetoid, write_planetoid, PlanetoidLoadReport
from repro.graphs.random_graphs import (
    erdos_renyi_graph,
    barabasi_albert_graph,
    planted_partition_graph,
    ring_of_cliques,
)

__all__ = [
    "GraphDataset",
    "build_adjacency",
    "add_self_loops",
    "row_stochastic_normalize",
    "symmetric_normalize",
    "remove_edge",
    "add_edge",
    "homophily_ratio",
    "generate_citation_graph",
    "CitationGraphSpec",
    "load_dataset",
    "list_datasets",
    "dataset_statistics",
    "per_class_split",
    "fractional_split",
    "GraphStatistics",
    "compute_statistics",
    "degree_histogram",
    "edge_homophily_ratio",
    "average_clustering",
    "component_sizes",
    "graph_density",
    "NeighboringPair",
    "sample_neighboring_pair",
    "iter_neighboring_pairs",
    "remove_random_edges",
    "add_random_edges",
    "rewire_edges",
    "edge_flip_distance",
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "planted_partition_graph",
    "ring_of_cliques",
    "load_planetoid",
    "write_planetoid",
    "PlanetoidLoadReport",
]
