"""The sweep specification a distributed queue is built from.

A :class:`SweepSpec` is the complete, serialisable description of one
``method x dataset x epsilon x repeat`` sweep: the axes plus every numerical
knob that influences the numbers (scale, seeds, epochs, encoder settings,
delta).  It is the unit of submission — the coordinator writes it into the
queue directory once, every worker on every machine reads it back and builds
an identical cell runner from it, so the sweep's numbers cannot depend on
which machine executed which group.

Two digests matter:

* :meth:`SweepSpec.digest` addresses the spec *itself*: one queue directory
  hosts exactly one spec, and resubmitting the same spec is a no-op while
  submitting a different one into the same directory is an error;
* :meth:`SweepSpec.context_digest` is the engine's resume-context fingerprint
  (:func:`repro.runtime.engine.context_digest` over
  :meth:`SweepSpec.resume_context`), stamped into every result record.  It is
  shared with the single-process ``repro sweep`` path, which makes a merged
  distributed store and a single-machine store interchangeable — either can
  resume or verify the other.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.runtime.cells import SweepCell, expand_cells
from repro.runtime.engine import context_digest

SPEC_FORMAT_VERSION = 1


def _encode_epsilon(value: float) -> float | str:
    return value if math.isfinite(value) else "inf"


def _decode_epsilon(value) -> float:
    return math.inf if value == "inf" else float(value)


@dataclass(frozen=True)
class SweepSpec:
    """Everything needed to expand, execute and fingerprint one sweep."""

    methods: tuple
    datasets: tuple
    epsilons: tuple
    repeats: int = 1
    seed: int = 0
    scale: float = 0.25
    delta: float | None = None
    epochs: int = 120
    encoder_epochs: int = 150
    encoder_dim: int = 16
    encoder_hidden: int = 64
    lambda_reg: float = 0.2
    use_pseudo_labels: bool = True
    inference_mode: str = "private"
    fast_sweep: bool = True
    sweep_strategy: str = "warm_start"

    def __post_init__(self):
        object.__setattr__(self, "methods", tuple(self.methods))
        object.__setattr__(self, "datasets", tuple(self.datasets))
        object.__setattr__(self, "epsilons",
                           tuple(float(eps) for eps in self.epsilons))
        if self.repeats < 1:
            raise ConfigurationError(f"repeats must be >= 1, got {self.repeats}")

    @classmethod
    def from_settings(cls, settings, methods, *, delta: float | None = None,
                      fast_sweep: bool = True,
                      sweep_strategy: str = "warm_start") -> "SweepSpec":
        """Build a spec from a :class:`FigureSettings` (benchmarks, examples)."""
        if getattr(settings, "extra_gcon", None):
            raise ConfigurationError(
                "FigureSettings.extra_gcon overrides are not representable in "
                "a SweepSpec; distributed sweeps support the standard knobs only")
        return cls(
            methods=tuple(methods), datasets=tuple(settings.datasets),
            epsilons=tuple(settings.epsilons), repeats=settings.repeats,
            seed=settings.seed, scale=settings.scale, delta=delta,
            epochs=settings.epochs, encoder_epochs=settings.encoder_epochs,
            encoder_dim=settings.encoder_dim,
            encoder_hidden=settings.encoder_hidden,
            lambda_reg=settings.lambda_reg,
            use_pseudo_labels=settings.use_pseudo_labels,
            fast_sweep=fast_sweep, sweep_strategy=sweep_strategy,
        )

    # ------------------------------------------------------------------ #
    # expansion and execution
    # ------------------------------------------------------------------ #
    def expand(self) -> list[SweepCell]:
        """The sweep's cells in canonical serial order (deterministic seeds)."""
        return expand_cells(self.methods, self.datasets, self.epsilons,
                            self.repeats, seed=self.seed)

    def settings(self):
        """The :class:`FigureSettings` every worker rebuilds from this spec."""
        from repro.evaluation.figures import FigureSettings

        return FigureSettings(
            scale=self.scale, repeats=self.repeats, seed=self.seed,
            epochs=self.epochs, encoder_epochs=self.encoder_epochs,
            encoder_dim=self.encoder_dim, encoder_hidden=self.encoder_hidden,
            lambda_reg=self.lambda_reg, use_pseudo_labels=self.use_pseudo_labels,
            datasets=self.datasets, epsilons=self.epsilons,
        )

    def cell_runner(self, preparation_cache: str | None = None):
        """A :class:`FigureCellRunner` configured exactly as ``repro sweep``
        would configure it for these settings (so results are bitwise equal)."""
        from repro.runtime.workers import FigureCellRunner

        return FigureCellRunner(
            settings=self.settings(), inference_mode=self.inference_mode,
            delta=self.delta, fast_sweep=self.fast_sweep,
            sweep_strategy=self.sweep_strategy,
            preparation_cache=preparation_cache,
        )

    # ------------------------------------------------------------------ #
    # fingerprints
    # ------------------------------------------------------------------ #
    def resume_context(self) -> dict:
        """The engine resume context: identical to what ``repro sweep`` builds."""
        return dict(self.settings().resume_context(), delta=self.delta)

    def context_digest(self) -> str:
        """The fingerprint stamped into every record of this sweep."""
        return context_digest(self.resume_context())

    def digest(self) -> str:
        """Content address of the full spec (axes + every knob)."""
        payload = json.dumps(self._payload(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def _payload(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["methods"] = list(self.methods)
        payload["datasets"] = list(self.datasets)
        payload["epsilons"] = [_encode_epsilon(eps) for eps in self.epsilons]
        payload["format"] = SPEC_FORMAT_VERSION
        return payload

    def to_json(self) -> str:
        return json.dumps(self._payload(), sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        payload = json.loads(text)
        version = payload.pop("format", SPEC_FORMAT_VERSION)
        if version != SPEC_FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported sweep spec format {version} "
                f"(expected {SPEC_FORMAT_VERSION})")
        payload["epsilons"] = [_decode_epsilon(eps) for eps in payload["epsilons"]]
        return cls(**payload)

    def describe(self) -> str:
        cells = (len(self.methods) * len(self.datasets) * len(self.epsilons)
                 * self.repeats)
        return (f"{len(self.methods)} method(s) x {len(self.datasets)} dataset(s) "
                f"x {len(self.epsilons)} epsilon(s) x {self.repeats} repeat(s) "
                f"= {cells} cells (scale={self.scale:g}, seed={self.seed})")
