"""The coordinator: submit sweeps, watch progress, merge shards.

The coordinator is the only component that understands the *whole* sweep;
workers only ever see one group at a time.  Its three verbs:

* :meth:`Coordinator.submit` expands a :class:`SweepSpec` into cell groups
  and enqueues each as a content-addressed task — idempotent, so
  resubmitting a running or finished sweep changes nothing;
* :meth:`Coordinator.wait` polls the done markers and narrates cell-level
  progress through the injectable
  :class:`~repro.runtime.progress.ProgressReporter`;
* :meth:`Coordinator.merge` folds the completed shards into one
  deduplicated, fingerprint-checked store, ordered canonically — byte-level
  interchangeable with what a single-process ``repro sweep`` run writes.

:func:`run_local_workers` is the single-machine convenience used by
``repro sweep --dist-dir`` and the benchmarks: it forks N worker processes
against a local queue directory, which exercises the exact protocol a
multi-machine deployment uses.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from pathlib import Path

from repro.distributed.lease import LeaseManager
from repro.distributed.queue import GroupTask, WorkQueue, group_id_for
from repro.distributed.spec import SweepSpec
from repro.runtime.progress import ProgressReporter
from repro.runtime.store import MergeReport, merge_stores


@dataclass
class SubmitReport:
    """What one submission did to the queue."""

    created: bool
    groups_total: int
    groups_enqueued: int
    groups_done: int
    cells_total: int

    def summary(self) -> str:
        if self.groups_enqueued == 0:
            state = ("already complete" if self.groups_done == self.groups_total
                     else "already submitted")
            return (f"no-op ({state}): {self.groups_total} group(s), "
                    f"{self.cells_total} cell(s)")
        return (f"enqueued {self.groups_enqueued} of {self.groups_total} "
                f"group(s) ({self.cells_total} cells total)")


@dataclass
class QueueStatus:
    """A point-in-time census of the queue."""

    groups_total: int
    groups_done: int
    groups_leased: int
    groups_expired: int
    groups_claimable: int
    cells_total: int
    cells_done: int
    failures: int
    workers: dict
    groups_quarantined: int = 0

    @property
    def complete(self) -> bool:
        return self.groups_total > 0 and self.groups_done == self.groups_total

    @property
    def stalled(self) -> bool:
        """Every remaining group is quarantined: no worker can make progress."""
        return (self.groups_quarantined > 0 and
                self.groups_done + self.groups_quarantined == self.groups_total)

    def summary(self) -> str:
        lines = [
            f"groups: {self.groups_done}/{self.groups_total} done, "
            f"{self.groups_leased} leased, {self.groups_expired} expired, "
            f"{self.groups_claimable} claimable",
            f"cells:  {self.cells_done}/{self.cells_total} done",
        ]
        for worker_id, held in sorted(self.workers.items()):
            lines.append(f"  {worker_id}: holding {held} group(s)")
        if self.groups_quarantined:
            lines.append(f"quarantined: {self.groups_quarantined} group(s) "
                         f"exceeded their retry budget (see failed/*.quarantined.json)")
        if self.failures:
            lines.append(f"failures recorded: {self.failures} (see failed/)")
        return "\n".join(lines)


class Coordinator:
    """Drives one sweep through a :class:`WorkQueue` directory."""

    def __init__(self, dist_dir, lease_ttl: float = 60.0, clock=None):
        self.queue = WorkQueue(dist_dir)
        self.leases = LeaseManager(self.queue.leases_dir, ttl=lease_ttl,
                                   clock=clock)
        # Task files are created once and never mutated, so their cell
        # counts are cached here: a polling wait() must not re-read every
        # task file from the (possibly network) filesystem twice a second.
        self._group_sizes: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # submit
    # ------------------------------------------------------------------ #
    def submit(self, spec: SweepSpec) -> SubmitReport:
        """Expand ``spec`` into group tasks and enqueue the missing ones."""
        created = self.queue.initialize(spec)
        digest = spec.digest()
        groups: dict[int, list] = {}
        cells = spec.expand()
        for cell in cells:
            groups.setdefault(cell.group, []).append(cell)
        enqueued = 0
        for group_cells in groups.values():
            task = GroupTask(group_id=group_id_for(digest, group_cells),
                             spec_digest=digest, cells=tuple(group_cells))
            if self.queue.enqueue(task):
                enqueued += 1
        return SubmitReport(created=created, groups_total=len(groups),
                            groups_enqueued=enqueued,
                            groups_done=len(self.queue.done_ids()),
                            cells_total=len(cells))

    def spec(self) -> SweepSpec:
        return self.queue.load_spec()

    # ------------------------------------------------------------------ #
    # observe
    # ------------------------------------------------------------------ #
    def _group_size(self, group_id: str) -> int:
        size = self._group_sizes.get(group_id)
        if size is None:
            size = len(self.queue.read_task(group_id).cells)
            self._group_sizes[group_id] = size
        return size

    def status(self) -> QueueStatus:
        task_ids = self.queue.task_ids()
        done = self.queue.done_ids()
        quarantined_ids = self.queue.quarantined_ids()
        leased = expired = claimable = cells_total = cells_done = 0
        quarantined = 0
        workers: dict[str, int] = {}
        for group_id in task_ids:
            size = self._group_size(group_id)
            cells_total += size
            if group_id in done:
                cells_done += size
                continue
            if group_id in quarantined_ids:
                quarantined += 1
                continue
            lease = self.leases.read(group_id)
            if lease is None:
                claimable += 1
            elif self.leases.is_expired(lease):
                expired += 1
                claimable += 1
            else:
                leased += 1
                workers[lease.worker_id] = workers.get(lease.worker_id, 0) + 1
        return QueueStatus(groups_total=len(task_ids), groups_done=len(done),
                           groups_leased=leased, groups_expired=expired,
                           groups_claimable=claimable, cells_total=cells_total,
                           cells_done=cells_done,
                           failures=self.queue.failure_count(), workers=workers,
                           groups_quarantined=quarantined)

    def wait(self, poll_interval: float = 0.5, timeout: float | None = None,
             progress: bool | ProgressReporter = False,
             should_abort=None) -> bool:
        """Block until every group is done; False on timeout/abort.

        ``should_abort`` is an optional zero-argument callable polled each
        round — ``repro sweep --dist-dir`` uses it to stop waiting when all
        of its local workers have died.
        """
        status = self.status()
        reporter = None
        if isinstance(progress, ProgressReporter):
            reporter = progress
        elif progress:
            reporter = ProgressReporter(status.cells_total, label="dist sweep")
        deadline = None if timeout is None else time.monotonic() + timeout
        try:
            while True:
                if reporter is not None:
                    reporter.update(advance=status.cells_done - reporter.done,
                                    note=f"{status.groups_done}/"
                                         f"{status.groups_total} groups")
                if status.complete:
                    return True
                if status.stalled:
                    # Only quarantined groups remain; no amount of waiting
                    # (or workers) will finish this sweep as submitted.
                    return False
                if deadline is not None and time.monotonic() >= deadline:
                    return False
                if should_abort is not None and should_abort():
                    return False
                time.sleep(poll_interval)
                status = self.status()
        finally:
            if reporter is not None:
                reporter.finish()

    # ------------------------------------------------------------------ #
    # merge
    # ------------------------------------------------------------------ #
    def expected_keys(self) -> list[tuple]:
        """Every cell key of the sweep, in canonical serial order."""
        return [cell.key() for cell in self.spec().expand()]

    def merge(self, output_path=None, require_complete: bool = True) -> MergeReport:
        """Fold completed shards into one canonical store.

        With ``require_complete`` (the default) an unfinished sweep raises,
        and the merged store is pinned to contain *exactly* the spec's cells
        in canonical order; ``require_complete=False`` merges whatever shards
        exist (a monitoring convenience for partial sweeps).
        """
        spec = self.spec()
        done = sorted(self.queue.done_ids())
        pending = self.queue.pending_ids()
        if require_complete and pending:
            quarantined = self.queue.quarantined_ids() & set(pending)
            if quarantined:
                raise RuntimeError(
                    f"sweep cannot complete: {len(quarantined)} group(s) are "
                    f"quarantined after exhausting their retry budget (first: "
                    f"{sorted(quarantined)[0]}; see failed/*.quarantined.json); "
                    f"fix the failure and resubmit, or pass "
                    f"require_complete=False to merge the surviving shards")
            raise RuntimeError(
                f"sweep is incomplete: {len(pending)} group(s) still pending "
                f"(first: {pending[0]}); run more workers or pass "
                f"require_complete=False")
        output = (Path(output_path) if output_path is not None
                  else self.queue.root / "merged.jsonl")
        return merge_stores(
            [self.queue.shard_path(group_id) for group_id in done],
            output,
            context_digest=spec.context_digest(),
            expected_keys=self.expected_keys() if require_complete else None,
        )


# --------------------------------------------------------------------------- #
# local worker fan-out (single machine, N processes)
# --------------------------------------------------------------------------- #
def _local_worker_entry(dist_dir: str, worker_id: str, lease_ttl: float,
                        poll_interval: float,
                        preparation_cache: str | None) -> None:
    from repro.distributed.worker import DistributedWorker

    worker = DistributedWorker(dist_dir, worker_id, lease_ttl=lease_ttl,
                               poll_interval=poll_interval,
                               preparation_cache=preparation_cache)
    worker.run()


def start_local_workers(dist_dir, jobs: int, *, lease_ttl: float = 60.0,
                        poll_interval: float = 0.2,
                        preparation_cache: str | None = None,
                        worker_prefix: str = "local") -> list:
    """Fork ``jobs`` worker processes against a local queue directory."""
    context = multiprocessing.get_context("spawn")
    processes = []
    for index in range(jobs):
        process = context.Process(
            target=_local_worker_entry,
            args=(str(dist_dir), f"{worker_prefix}-{index}", lease_ttl,
                  poll_interval, preparation_cache),
            daemon=False,
        )
        process.start()
        processes.append(process)
    return processes
