"""Multi-machine sweep execution over a shared filesystem.

The third layer of the execution stack — PR 1 fanned cells over local
processes, PR 2 collapsed each epsilon axis into one vectorised solve, this
package shards whole sweeps across machines with nothing but a shared
directory as the coordination substrate:

* :mod:`repro.distributed.spec`        -- the serialisable sweep description;
* :mod:`repro.distributed.queue`       -- the content-addressed work queue;
* :mod:`repro.distributed.lease`       -- atomic claims with heartbeats;
* :mod:`repro.distributed.worker`      -- the claim/execute/publish loop;
* :mod:`repro.distributed.coordinator` -- submit, watch, merge.

Determinism carries through: every cell's seed lives in the queue's task
files, so any assignment of groups to machines — including crashes,
re-leases and duplicated executions — merges into results bitwise identical
to a single-process run of the same spec.
"""

from repro.distributed.coordinator import (
    Coordinator,
    QueueStatus,
    SubmitReport,
    start_local_workers,
)
from repro.distributed.lease import Lease, LeaseManager
from repro.distributed.queue import GroupTask, WorkQueue, group_id_for
from repro.distributed.spec import SweepSpec
from repro.distributed.worker import DistributedWorker, WorkerReport, default_worker_id

__all__ = [
    "Coordinator",
    "QueueStatus",
    "SubmitReport",
    "start_local_workers",
    "Lease",
    "LeaseManager",
    "GroupTask",
    "WorkQueue",
    "group_id_for",
    "SweepSpec",
    "DistributedWorker",
    "WorkerReport",
    "default_worker_id",
]
