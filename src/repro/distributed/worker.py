"""The distributed worker loop: claim a group, run it, publish its shard.

A worker is stateless beyond its id — point any number of them (from any
machine that mounts the queue directory) at a ``--dist-dir`` and they drain
it cooperatively:

1. **claim**: walk the pending groups and take the first claimable lease
   (unleased, or expired and stolen — see :mod:`repro.distributed.lease`);
2. **execute**: rebuild the cell runner from the queue's spec and run the
   group through the same ``run_group`` protocol as the single-machine
   engine — a GCON epsilon axis takes the vectorised
   :class:`~repro.core.sweep.SweepSolver` fast path, everything else runs
   cell by cell with a heartbeat between cells;
3. **publish**: results stream into a private work-in-progress JSONL shard,
   which is renamed into place atomically only when the group is complete,
   then the done marker is written and the lease released.

A crash at any point leaves either nothing (before the rename) or a
complete shard (after), never a half-published group: the lease expires,
another worker re-claims, recomputes the bitwise-identical results and
publishes.  Workers share the content-addressed
:class:`~repro.core.persistence.PreparationStore` over the same filesystem
when ``preparation_cache`` (or ``REPRO_PREPARATION_CACHE``) is set, so only
the first worker to touch a ``(graph, seed, config)`` pays for encoder
training and propagation.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import traceback
import uuid
from dataclasses import dataclass, field

from repro.distributed.lease import LeaseManager
from repro.distributed.queue import GroupTask, WorkQueue
from repro.obs.trace import get_tracer
from repro.runtime.cells import result_key
from repro.runtime.engine import run_cell_group
from repro.runtime.store import JsonlResultStore


def default_worker_id() -> str:
    """host-pid-nonce: unique per process, readable in queue listings."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


class _HeartbeatPump:
    """Refreshes a lease from a daemon thread while a group executes.

    A group's vectorised solve can outlast any fixed TTL, so the heartbeat
    cannot live between cells only — the pump refreshes every ``ttl / 3``
    seconds for as long as the execution runs.  If the refresh reports the
    lease lost (the worker was partitioned long enough to be reaped), the
    pump records it and stops; the worker checks :attr:`lost` afterwards
    and abandons the group.
    """

    def __init__(self, manager, lease):
        self.manager = manager
        self.lease = lease
        self.interval = lease.ttl / 3.0
        self.lost = False
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "_HeartbeatPump":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                refreshed = self.manager.heartbeat(self.lease)
            except OSError:  # pragma: no cover - transient filesystem hiccup
                continue
            if refreshed is None:
                self.lost = True
                return
            self.lease = refreshed


@dataclass
class WorkerReport:
    """What one :meth:`DistributedWorker.run` call accomplished."""

    worker_id: str
    groups_completed: int = 0
    cells_completed: int = 0
    groups_stolen: int = 0
    groups_lost: int = 0
    groups_failed: int = 0
    groups_quarantined: int = 0
    elapsed_seconds: float = 0.0
    completed_group_ids: list = field(default_factory=list)

    def summary(self) -> str:
        text = (f"worker {self.worker_id}: {self.groups_completed} group(s), "
                f"{self.cells_completed} cell(s) in {self.elapsed_seconds:.1f}s")
        if self.groups_stolen:
            text += f", {self.groups_stolen} re-leased from expired worker(s)"
        if self.groups_lost:
            text += f", {self.groups_lost} lease(s) lost mid-run"
        if self.groups_failed:
            text += f", {self.groups_failed} failed execution(s)"
        if self.groups_quarantined:
            text += (f", {self.groups_quarantined} group(s) quarantined "
                     f"(see failed/)")
        return text


class DistributedWorker:
    """Claims and executes cell groups from a :class:`WorkQueue`.

    ``wait_for_completion=True`` (the default) keeps the worker polling
    while other workers still hold pending groups, so ``run`` returns only
    once the whole sweep is done — a crashed peer's groups are picked up
    after lease expiry.  ``False`` exits as soon as nothing is claimable.

    ``cell_runner`` overrides the runner built from the spec (tests inject
    cheap deterministic runners); ``max_groups`` bounds how many groups this
    call may execute; ``clock`` feeds the lease manager for deterministic
    expiry tests.

    ``max_attempts`` is the retry-then-quarantine budget: a group whose
    execution *raises* (as opposed to crashing the process) leaves a numbered
    breadcrumb with the captured traceback under ``failed/`` and goes back to
    the pool; once the breadcrumb count reaches ``max_attempts`` the group is
    quarantined — taken out of the claimable set for every worker — so a
    deterministically failing group cannot starve the sweep by being
    re-leased forever.  The worker itself survives failures and moves on to
    other groups.
    """

    def __init__(self, dist_dir, worker_id: str | None = None, *,
                 lease_ttl: float = 60.0, poll_interval: float = 0.5,
                 max_groups: int | None = None, wait_for_completion: bool = True,
                 cell_runner=None, preparation_cache: str | None = None,
                 max_attempts: int = 3, clock=None, log_stream=None):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.queue = WorkQueue(dist_dir)
        self.worker_id = worker_id or default_worker_id()
        self.leases = LeaseManager(self.queue.leases_dir, ttl=lease_ttl,
                                   clock=clock)
        self.poll_interval = poll_interval
        self.max_groups = max_groups
        self.wait_for_completion = wait_for_completion
        self.cell_runner = cell_runner
        self.preparation_cache = preparation_cache
        self.max_attempts = max_attempts
        self.log_stream = log_stream

    # ------------------------------------------------------------------ #
    # the loop
    # ------------------------------------------------------------------ #
    def run(self) -> WorkerReport:
        """Drain the queue; return once the sweep is complete (or bounded)."""
        spec = self.queue.load_spec()
        runner = self.cell_runner if self.cell_runner is not None \
            else spec.cell_runner(preparation_cache=self.preparation_cache)
        context = spec.context_digest()
        report = WorkerReport(worker_id=self.worker_id)
        start = time.perf_counter()
        while True:
            if self.max_groups is not None \
                    and report.groups_completed >= self.max_groups:
                break
            claim_started_ns = time.monotonic_ns()
            claim = self._claim_next(report)
            if claim is None:
                if not self.queue.runnable_ids():
                    # Sweep complete, or every remaining group is quarantined
                    # — either way there is nothing left any worker may run.
                    break
                if not self.wait_for_completion:
                    break  # someone else holds the rest
                time.sleep(self.poll_interval)
                continue
            task, lease = claim
            self._execute(task, lease, runner, context, report,
                          claim_started_ns=claim_started_ns)
        report.elapsed_seconds = time.perf_counter() - start
        return report

    def _claim_next(self, report: WorkerReport):
        for group_id in self.queue.runnable_ids():
            holder = self.leases.read(group_id)
            lease = self.leases.acquire(group_id, self.worker_id)
            if lease is None:
                continue
            if self.queue.is_done(group_id):
                # Completed between our listing and the claim.
                self.leases.release(lease)
                continue
            if holder is not None and self.leases.is_expired(holder) \
                    and holder.worker_id != self.worker_id:
                report.groups_stolen += 1
                self._log(f"re-leased {group_id} from expired "
                          f"worker {holder.worker_id}")
            return self.queue.read_task(group_id), lease
        return None

    # ------------------------------------------------------------------ #
    # executing one group
    # ------------------------------------------------------------------ #
    def _execute(self, task: GroupTask, lease, runner, context: str,
                 report: WorkerReport, *,
                 claim_started_ns: int | None = None) -> None:
        """Trace wrapper: one ``dist.group`` trace per executed group.

        The worker shares the process-global tracer (:func:`get_tracer`);
        ``repro trace`` and tests read its store.  Tracing failures never
        fail the group — the root is always ended in ``finally``.
        """
        tracer = get_tracer()
        root = tracer.start_trace("dist.group", attrs={
            "group_id": task.group_id, "worker_id": self.worker_id,
            "cells": len(task.cells)})
        if claim_started_ns is not None:
            # The claim walk (lease scan + acquire) happened just before
            # this trace existed; backfill it from its captured start.
            tracer.add_span("lease.claim", parent=root,
                            start_ns=claim_started_ns,
                            end_ns=tracer.clock_ns())
        outcome = "failed"
        try:
            with tracer.activate(root):
                outcome = self._execute_group(task, lease, runner, context,
                                              report, tracer)
        finally:
            root.attrs["outcome"] = outcome
            tracer.end(root,
                       status="ok" if outcome == "completed" else "error")

    def _execute_group(self, task: GroupTask, lease, runner, context: str,
                       report: WorkerReport, tracer) -> str:
        """Run one claimed group; returns the outcome recorded on the trace:
        ``completed`` / ``failed`` / ``quarantined`` / ``lost``."""
        cells = list(task.cells)
        wip = self.queue.wip_shard_path(task.group_id, self.worker_id)
        wip.unlink(missing_ok=True)
        store = JsonlResultStore(wip)
        failing = cells[0]
        pump = _HeartbeatPump(self.leases, lease)
        try:
            with pump, tracer.span("group.run"):
                if self._group_dispatch(runner, cells):
                    records = run_cell_group(runner, cells)
                    self._append(store, cells, records, context)
                else:
                    records = []
                    for cell in cells:
                        if pump.lost:
                            break
                        failing = cell
                        with tracer.span("cell.run",
                                         attrs={"cell": cell.key()}):
                            record = runner(cell)
                        records.append(record)
                        self._append(store, [cell], [record], context)
        except Exception as error:
            store.close()
            wip.unlink(missing_ok=True)
            attempt = self.queue.record_failure(
                task.group_id, self.worker_id,
                f"cell {failing.key()}: {error!r}", traceback.format_exc())
            report.groups_failed += 1
            self._log(f"execution of {task.group_id} failed "
                      f"(attempt {attempt}/{self.max_attempts}): {error!r}")
            if attempt >= self.max_attempts:
                self.queue.quarantine(task.group_id, self.worker_id,
                                      f"cell {failing.key()}: {error!r}",
                                      attempt, traceback.format_exc())
                report.groups_quarantined += 1
                self._log(f"quarantined {task.group_id} after "
                          f"{attempt} failed attempt(s)")
                self.leases.release(pump.lease)
                return "quarantined"
            self.leases.release(pump.lease)
            return "failed"
        store.close()
        if pump.lost:
            # Partitioned long enough to be reaped: abandon the group, the
            # new holder recomputes bitwise-identical results.
            report.groups_lost += 1
            self._log(f"lost lease on {task.group_id}; abandoning")
            wip.unlink(missing_ok=True)
            return "lost"
        with tracer.span("shard.publish"):
            published = self._publish(task.group_id, wip)
            if published:
                self.queue.mark_done(task.group_id, self.worker_id,
                                     len(records))
                self.queue.clean_wips(task.group_id)
        if not published:
            report.groups_lost += 1
            self.leases.release(pump.lease)
            return "lost"
        self.leases.release(pump.lease)
        report.groups_completed += 1
        report.cells_completed += len(records)
        report.completed_group_ids.append(task.group_id)
        first = cells[0]
        self._log(f"completed {task.group_id} "
                  f"({first.method}/{first.dataset}, {len(records)} cells)")
        return "completed"

    def _publish(self, group_id: str, wip) -> bool:
        """Atomically promote our wip shard; False if a racing holder beat us.

        The loser of a re-lease race may find its wip already swept away by
        the winner's ``clean_wips`` — harmless, because both computed the
        same records from the same seeds; the winner's published shard (and
        done marker) stand.
        """
        try:
            os.replace(wip, self.queue.shard_path(group_id))
        except FileNotFoundError:
            if not self.queue.shard_path(group_id).exists():
                raise
            self._log(f"{group_id} was already published by another worker")
            return False
        return True

    @staticmethod
    def _group_dispatch(runner, cells) -> bool:
        """Same policy as the engine: whole-group only when the runner would
        actually take its fast path, so the per-cell path keeps streaming
        results (and heartbeats) between cells."""
        if getattr(runner, "run_group", None) is None:
            return False
        wants_group = getattr(runner, "wants_group", None)
        return True if wants_group is None else bool(wants_group(cells))

    def _append(self, store: JsonlResultStore, cells, records,
                context: str) -> None:
        if len(records) != len(cells):
            raise ValueError(f"cell runner returned {len(records)} results "
                             f"for {len(cells)} cells")
        for cell, record in zip(cells, records):
            if result_key(record) != cell.key():
                raise ValueError(f"cell runner returned mismatched result "
                                 f"{result_key(record)} for cell {cell.key()}")
            record.extra["sweep_context"] = context
            store.append(record)

    def _log(self, message: str) -> None:
        if self.log_stream is not None:
            print(f"[{self.worker_id}] {message}", file=self.log_stream,
                  flush=True)
