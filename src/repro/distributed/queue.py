"""The filesystem-backed work queue: one sweep, many machines, no server.

A queue is a directory on a filesystem every participating machine can
reach (local disk for multi-process runs, NFS/Lustre for multi-machine):

.. code-block:: text

    dist_dir/
      spec.json             the submitted SweepSpec + its content digest
      tasks/<gid>.json      one task per cell group (a whole epsilon axis)
      leases/<gid>.lease    active claims: worker id + heartbeat (lease.py)
      shards/<gid>.jsonl    completed per-group result shards
      done/<gid>.json       completion markers (worker id, record count)
      failed/<gid>.attempt-*.json      numbered failure breadcrumbs (+ traceback)
      failed/<gid>.quarantined.json    terminal marker after max_attempts failures

The unit of work is a cell *group* — every cell of one
``(dataset, method, repeat)`` bucket, i.e. one epsilon axis — so the
vectorised :class:`~repro.core.sweep.SweepSolver` fast path keeps working
per shard and a claimed group amortises one preparation across all budgets.

Everything is content-addressed and idempotent: group ids derive from the
spec digest plus the group's cell identities, task files are only ever
created (never mutated), shards are published by atomic rename, and done
markers are plain idempotent writes — so resubmitting a sweep is a no-op,
two workers racing on the same group converge on bitwise-identical shards,
and a crashed process leaves nothing that needs repair.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import re
from dataclasses import dataclass
from pathlib import Path

from repro.distributed.spec import SweepSpec
from repro.exceptions import ConfigurationError
from repro.runtime.cells import SweepCell
from repro.utils.fs import atomic_write_text

TASK_FORMAT_VERSION = 1


def _slug(text: str) -> str:
    """A filesystem-safe token from a method/dataset name."""
    return re.sub(r"[^A-Za-z0-9_.-]+", "_", text).strip("_") or "x"


@dataclass(frozen=True)
class GroupTask:
    """One queued unit of work: a whole epsilon axis of cells."""

    group_id: str
    spec_digest: str
    cells: tuple

    @property
    def key(self) -> tuple:
        first = self.cells[0]
        return (first.dataset, first.method, first.repeat)

    def to_json(self) -> str:
        return json.dumps({
            "format": TASK_FORMAT_VERSION,
            "group_id": self.group_id,
            "spec_digest": self.spec_digest,
            "cells": [{
                "index": cell.index, "method": cell.method,
                "dataset": cell.dataset,
                "epsilon": cell.epsilon if math.isfinite(cell.epsilon) else "inf",
                "repeat": cell.repeat, "seed": cell.seed, "group": cell.group,
            } for cell in self.cells],
        }, sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "GroupTask":
        payload = json.loads(text)
        version = payload.get("format", TASK_FORMAT_VERSION)
        if version != TASK_FORMAT_VERSION:
            raise ConfigurationError(f"unsupported task format {version}")
        cells = tuple(SweepCell(
            index=int(raw["index"]), method=str(raw["method"]),
            dataset=str(raw["dataset"]),
            epsilon=math.inf if raw["epsilon"] == "inf" else float(raw["epsilon"]),
            repeat=int(raw["repeat"]), seed=int(raw["seed"]),
            group=int(raw["group"]),
        ) for raw in payload["cells"])
        if not cells:
            raise ConfigurationError("a group task must contain at least one cell")
        return cls(group_id=str(payload["group_id"]),
                   spec_digest=str(payload["spec_digest"]), cells=cells)


def group_id_for(spec_digest: str, cells) -> str:
    """Deterministic, human-scannable id of one cell group.

    The readable prefix names the ``(dataset, method, repeat)`` bucket; the
    hash suffix covers the spec digest and the full cell identities, so two
    different sweeps (or a regrouped sweep) can never collide on an id.
    """
    first = cells[0]
    identity = json.dumps([spec_digest] + [
        [cell.index, cell.method, cell.dataset, repr(cell.epsilon),
         cell.repeat, cell.seed] for cell in cells
    ], sort_keys=True)
    suffix = hashlib.sha256(identity.encode("utf-8")).hexdigest()[:12]
    return f"{_slug(first.dataset)}-{_slug(first.method)}-r{first.repeat}-{suffix}"


class WorkQueue:
    """Filesystem layout plus the atomic operations the protocol needs."""

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)

    # -- paths --------------------------------------------------------- #
    @property
    def spec_path(self) -> Path:
        return self.root / "spec.json"

    @property
    def tasks_dir(self) -> Path:
        return self.root / "tasks"

    @property
    def leases_dir(self) -> Path:
        return self.root / "leases"

    @property
    def shards_dir(self) -> Path:
        return self.root / "shards"

    @property
    def done_dir(self) -> Path:
        return self.root / "done"

    @property
    def failed_dir(self) -> Path:
        return self.root / "failed"

    def task_path(self, group_id: str) -> Path:
        return self.tasks_dir / f"{group_id}.json"

    def shard_path(self, group_id: str) -> Path:
        return self.shards_dir / f"{group_id}.jsonl"

    def wip_shard_path(self, group_id: str, worker_id: str) -> Path:
        return self.shards_dir / f"{group_id}.jsonl.wip-{_slug(worker_id)}"

    def done_path(self, group_id: str) -> Path:
        return self.done_dir / f"{group_id}.json"

    # -- spec ---------------------------------------------------------- #
    def initialize(self, spec: SweepSpec) -> bool:
        """Write ``spec`` into the queue; True if this call created it.

        Idempotent on resubmission of the same spec; a *different* spec in
        an already-initialised directory is refused — one queue directory
        hosts exactly one sweep.
        """
        digest = spec.digest()
        if self.spec_path.exists():
            existing = self.load_spec()
            if existing.digest() != digest:
                raise ConfigurationError(
                    f"{self.root} already hosts a different sweep "
                    f"({existing.digest()[:12]} != {digest[:12]}); "
                    f"use a fresh --dist-dir per sweep")
            return False
        for directory in (self.tasks_dir, self.leases_dir, self.shards_dir,
                          self.done_dir, self.failed_dir):
            directory.mkdir(parents=True, exist_ok=True)
        atomic_write_text(self.spec_path, spec.to_json() + "\n")
        return True

    def load_spec(self) -> SweepSpec:
        if not self.spec_path.exists():
            raise ConfigurationError(
                f"{self.root} is not an initialised queue (no spec.json); "
                f"submit a sweep first")
        return SweepSpec.from_json(self.spec_path.read_text(encoding="utf-8"))

    # -- tasks --------------------------------------------------------- #
    def enqueue(self, task: GroupTask) -> bool:
        """Persist ``task`` if absent; True if this call enqueued it."""
        path = self.task_path(task.group_id)
        if path.exists():
            return False
        self.tasks_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, task.to_json() + "\n")
        return True

    def read_task(self, group_id: str) -> GroupTask:
        return GroupTask.from_json(
            self.task_path(group_id).read_text(encoding="utf-8"))

    def task_ids(self) -> list[str]:
        if not self.tasks_dir.exists():
            return []
        return sorted(path.stem for path in self.tasks_dir.glob("*.json"))

    # -- completion ---------------------------------------------------- #
    def done_ids(self) -> set[str]:
        if not self.done_dir.exists():
            return set()
        return {path.stem for path in self.done_dir.glob("*.json")}

    def is_done(self, group_id: str) -> bool:
        return self.done_path(group_id).exists()

    def pending_ids(self) -> list[str]:
        """Task ids without a done marker, in stable (sorted) order."""
        done = self.done_ids()
        return [gid for gid in self.task_ids() if gid not in done]

    def mark_done(self, group_id: str, worker_id: str, num_records: int) -> None:
        """Publish the completion marker (idempotent: last writer wins, and
        every writer computed bitwise-identical records)."""
        self.done_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_text(self.done_path(group_id), json.dumps({
            "group_id": group_id, "worker_id": worker_id,
            "num_records": num_records,
        }, sort_keys=True) + "\n")

    def clean_wips(self, group_id: str) -> None:
        """Drop leftover work-in-progress shards of ``group_id`` (crashed or
        out-raced workers); the published shard is the only one that counts."""
        for path in self.shards_dir.glob(f"{group_id}.jsonl.wip-*"):
            path.unlink(missing_ok=True)

    # -- failure breadcrumbs and quarantine ---------------------------- #
    # Task files are immutable, so the retry budget of a group is not a
    # counter *in* the task file but the count of its attempt breadcrumbs
    # under failed/: every failed execution leaves one, numbered, with the
    # captured traceback.  Once the count reaches the worker's max_attempts
    # the group is quarantined — a terminal marker that takes it out of the
    # claimable set, so a deterministically failing group stops being
    # re-leased forever and the rest of the sweep can finish.
    def quarantine_path(self, group_id: str) -> Path:
        return self.failed_dir / f"{group_id}.quarantined.json"

    def record_failure(self, group_id: str, worker_id: str, error: str,
                       traceback_text: str = "") -> int:
        """Leave one attempt breadcrumb; returns the attempt number it records.

        Two workers racing on the same attempt number both leave their file
        (the names differ by worker id), which only over-counts attempts —
        quarantine triggers at the latest after ``max_attempts`` real
        failures, never before a genuine one.
        """
        self.failed_dir.mkdir(parents=True, exist_ok=True)
        attempt = self.attempts(group_id) + 1
        atomic_write_text(
            self.failed_dir / f"{group_id}.attempt-{attempt:03d}-{_slug(worker_id)}.json",
            json.dumps({"group_id": group_id, "worker_id": worker_id,
                        "attempt": attempt, "error": error,
                        "traceback": traceback_text}, sort_keys=True, indent=2) + "\n")
        return attempt

    def attempts(self, group_id: str) -> int:
        """How many failed executions of ``group_id`` left breadcrumbs."""
        if not self.failed_dir.exists():
            return 0
        return sum(1 for _ in self.failed_dir.glob(f"{group_id}.attempt-*.json"))

    def quarantine(self, group_id: str, worker_id: str, error: str,
                   attempts: int, traceback_text: str = "") -> None:
        """Write the terminal quarantine marker (idempotent: every writer saw
        the same deterministic failure)."""
        self.failed_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_text(self.quarantine_path(group_id), json.dumps({
            "group_id": group_id, "worker_id": worker_id, "attempts": attempts,
            "error": error, "traceback": traceback_text,
        }, sort_keys=True, indent=2) + "\n")

    def is_quarantined(self, group_id: str) -> bool:
        return self.quarantine_path(group_id).exists()

    def quarantined_ids(self) -> set[str]:
        if not self.failed_dir.exists():
            return set()
        return {path.name[:-len(".quarantined.json")]
                for path in self.failed_dir.glob("*.quarantined.json")}

    def runnable_ids(self) -> list[str]:
        """Pending groups a worker may still claim (not done, not quarantined)."""
        quarantined = self.quarantined_ids()
        return [gid for gid in self.pending_ids() if gid not in quarantined]

    def failure_count(self) -> int:
        """Number of attempt breadcrumbs on record (quarantine markers excluded)."""
        if not self.failed_dir.exists():
            return 0
        return sum(1 for _ in self.failed_dir.glob("*.attempt-*.json"))
