"""Atomic filesystem leases: claim files with worker ids and heartbeats.

A lease is a JSON claim file created with ``O_CREAT | O_EXCL`` — the one
filesystem primitive that is atomic on local disks and on the network
filesystems (NFSv3+, Lustre, CIFS) a multi-machine sweep shares — so exactly
one worker can hold a group at a time.  The holder refreshes a heartbeat
timestamp inside the file; a lease whose heartbeat is older than its TTL is
*expired* and may be stolen by any other worker:

1. the stealer atomically renames the stale file to a private reap token
   (two concurrent stealers race on the rename; exactly one wins, the loser
   gets ``FileNotFoundError`` and walks away);
2. the winner deletes the token and claims the group with a fresh exclusive
   create, exactly like a first claim.

Every acquisition is stamped with a fresh *nonce*, so two claims by the same
worker id (a restart, a zombie thread of a previous incarnation) are
distinguishable.  All mutating operations verify the nonce, never just the
worker id:

* :meth:`LeaseManager.heartbeat` refuses to refresh a lease that is already
  expired (it is up for grabs; refreshing it would race a stealer's reap)
  and re-reads the file after the atomic rewrite — if the file no longer
  carries our nonce, a stealer won the window and the refresh reports the
  lease as lost instead of silently resurrecting it.
* :meth:`LeaseManager.release` never does check-then-unlink.  It atomically
  renames the claim file to a private token (mirroring the reap protocol),
  inspects the token, and — if the claim turns out to belong to a newer
  acquisition — restores it instead of deleting it.

A partitioned-but-alive worker therefore loses its lease rather than
wedging the sweep; when it reconnects, :meth:`LeaseManager.heartbeat`
reports the loss and the worker abandons the group.  Because every cell
carries a deterministic seed, the work the zombie already did is bitwise
identical to the re-claimer's — double execution wastes time, never
correctness.

Expiry compares the heartbeat against this machine's wall clock, so
machines sharing a queue need loosely synchronised clocks (NTP-level skew
is fine for the minute-scale TTLs used here).  The clock is injectable for
deterministic tests.

Leases can carry a small JSON ``meta`` payload alongside the claim — the
serving fleet advertises each replica's address, port and loaded model
digests through it (see :mod:`repro.serving.fleet`); the sweep workers
leave it empty.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path

from repro.utils.fs import atomic_write_text


@dataclass(frozen=True)
class Lease:
    """One worker's claim on one group.

    ``nonce`` identifies the *acquisition*, not the worker: a worker that
    loses a lease and re-acquires it holds a new nonce, so stale handles
    from the previous incarnation can never mutate the new claim.
    """

    group_id: str
    worker_id: str
    acquired_at: float
    heartbeat_at: float
    ttl: float
    nonce: str = ""
    meta: dict = field(default_factory=dict)

    def to_json(self) -> str:
        payload = {
            "group_id": self.group_id, "worker_id": self.worker_id,
            "acquired_at": self.acquired_at, "heartbeat_at": self.heartbeat_at,
            "ttl": self.ttl, "nonce": self.nonce,
        }
        if self.meta:
            payload["meta"] = self.meta
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Lease":
        payload = json.loads(text)
        return cls(group_id=str(payload["group_id"]),
                   worker_id=str(payload["worker_id"]),
                   acquired_at=float(payload["acquired_at"]),
                   heartbeat_at=float(payload["heartbeat_at"]),
                   ttl=float(payload["ttl"]),
                   nonce=str(payload.get("nonce", "")),
                   meta=dict(payload.get("meta") or {}))


class LeaseManager:
    """Acquire, refresh, steal and release leases under one directory."""

    def __init__(self, root: str | os.PathLike, ttl: float = 60.0, clock=None):
        if ttl <= 0:
            raise ValueError(f"lease ttl must be positive, got {ttl}")
        self.root = Path(root)
        self.ttl = float(ttl)
        self.clock = clock if clock is not None else time.time

    def path_for(self, group_id: str) -> Path:
        return self.root / f"{group_id}.lease"

    # ------------------------------------------------------------------ #
    # claiming
    # ------------------------------------------------------------------ #
    def acquire(self, group_id: str, worker_id: str,
                meta: dict | None = None) -> Lease | None:
        """Claim ``group_id`` for ``worker_id``; ``None`` if validly held.

        An expired lease is stolen (see the module docstring for the
        race-free protocol); a fresh lease held by someone else — including
        a past incarnation of this very worker id — is respected.
        """
        lease = self._try_create(group_id, worker_id, meta)
        if lease is not None:
            return lease
        current = self.read(group_id)
        if current is None:
            # The holder released (or was reaped) between our create attempt
            # and the read; try once more, then let the caller's next poll
            # retry.
            return self._try_create(group_id, worker_id, meta)
        if not self.is_expired(current):
            return None
        if not self._reap(group_id):
            return None
        return self._try_create(group_id, worker_id, meta)

    def _try_create(self, group_id: str, worker_id: str,
                    meta: dict | None = None) -> Lease | None:
        now = self.clock()
        lease = Lease(group_id=group_id, worker_id=worker_id,
                      acquired_at=now, heartbeat_at=now, ttl=self.ttl,
                      nonce=uuid.uuid4().hex, meta=dict(meta or {}))
        self.root.mkdir(parents=True, exist_ok=True)
        try:
            handle = os.open(self.path_for(group_id),
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return None
        try:
            os.write(handle, (lease.to_json() + "\n").encode("utf-8"))
        finally:
            os.close(handle)
        return lease

    def _reap(self, group_id: str) -> bool:
        """Atomically retire an expired lease file; True if *we* retired it."""
        token = self.root / f".reap-{group_id}-{uuid.uuid4().hex}"
        try:
            os.replace(self.path_for(group_id), token)
        except FileNotFoundError:
            return False  # a concurrent stealer won the rename
        token.unlink(missing_ok=True)
        return True

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    def read(self, group_id: str) -> Lease | None:
        """The current lease on ``group_id``, ``None`` if absent/corrupt."""
        try:
            text = self.path_for(group_id).read_text(encoding="utf-8")
            return Lease.from_json(text)
        except (OSError, ValueError, KeyError):
            return None

    def is_expired(self, lease: Lease) -> bool:
        return self.clock() - lease.heartbeat_at > lease.ttl

    def holder(self, group_id: str) -> str | None:
        """The worker id validly holding ``group_id``, ``None`` otherwise."""
        lease = self.read(group_id)
        if lease is None or self.is_expired(lease):
            return None
        return lease.worker_id

    def group_ids(self) -> list[str]:
        """Every group with a claim file under this root (sorted)."""
        if not self.root.exists():
            return []
        return sorted(path.stem for path in self.root.glob("*.lease"))

    # ------------------------------------------------------------------ #
    # holding
    # ------------------------------------------------------------------ #
    def heartbeat(self, lease: Lease, meta: dict | None = None) -> Lease | None:
        """Refresh ``lease``; ``None`` if it was lost (stolen or released).

        Verified at both edges of the rewrite: the claim file must carry our
        acquisition nonce *before* the refresh (a reaped or re-acquired
        group is abandoned, never resurrected — an already-expired lease is
        up for grabs and refusing to touch it keeps the stealer's reap
        race-free), and is re-read *after* the atomic rename — if a stealer
        claimed the group inside the write window, the file no longer
        carries our nonce and the refresh reports the lease as lost.

        ``meta`` replaces the advertised payload for this and subsequent
        refreshes (``None`` keeps the current one).
        """
        current = self.read(lease.group_id)
        if current is None or current.worker_id != lease.worker_id \
                or current.nonce != lease.nonce:
            return None
        if self.is_expired(current):
            return None
        refreshed = Lease(group_id=lease.group_id, worker_id=lease.worker_id,
                          acquired_at=lease.acquired_at,
                          heartbeat_at=self.clock(), ttl=lease.ttl,
                          nonce=lease.nonce,
                          meta=dict(lease.meta if meta is None else meta))
        atomic_write_text(self.path_for(lease.group_id),
                          refreshed.to_json() + "\n")
        verify = self.read(lease.group_id)
        if verify is None or verify.nonce != lease.nonce:
            return None  # a stealer won the write window; the lease is lost
        return refreshed

    def release(self, lease: Lease) -> None:
        """Drop ``lease`` if still ours; a lost lease is released silently.

        Never check-then-unlink: the claim file is atomically renamed to a
        private token first (mirroring :meth:`_reap`), then verified.  If
        the token turns out to carry a *different* acquisition — the lease
        expired and was re-claimed between our last heartbeat and this call
        — the claim is restored instead of deleted, so releasing a stale
        handle can never destroy the new holder's valid lease.
        """
        path = self.path_for(lease.group_id)
        token = self.root / f".release-{lease.group_id}-{uuid.uuid4().hex}"
        try:
            os.replace(path, token)
        except FileNotFoundError:
            return  # already released or reaped; nothing to drop
        try:
            current = Lease.from_json(token.read_text(encoding="utf-8"))
        except (OSError, ValueError, KeyError):
            current = None  # corrupt claim: drop it like a reap would
        if current is not None and (current.worker_id != lease.worker_id
                                    or current.nonce != lease.nonce):
            # Not our acquisition: put the rightful claim back.  ``link``
            # fails atomically if an even newer claim appeared while the
            # file was renamed away — in that window the group looked
            # unclaimed — and in that case the newest claim is kept and the
            # displaced holder learns the loss at its next heartbeat.
            try:
                os.link(token, path)
            except FileExistsError:
                pass
            except OSError:
                # Filesystem without hard links: fall back to the rename.
                try:
                    os.replace(token, path)
                    return
                except FileNotFoundError:
                    return
        token.unlink(missing_ok=True)
