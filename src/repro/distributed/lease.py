"""Atomic filesystem leases: claim files with worker ids and heartbeats.

A lease is a JSON claim file created with ``O_CREAT | O_EXCL`` — the one
filesystem primitive that is atomic on local disks and on the network
filesystems (NFSv3+, Lustre, CIFS) a multi-machine sweep shares — so exactly
one worker can hold a group at a time.  The holder refreshes a heartbeat
timestamp inside the file; a lease whose heartbeat is older than its TTL is
*expired* and may be stolen by any other worker:

1. the stealer atomically renames the stale file to a private reap token
   (two concurrent stealers race on the rename; exactly one wins, the loser
   gets ``FileNotFoundError`` and walks away);
2. the winner deletes the token and claims the group with a fresh exclusive
   create, exactly like a first claim.

A partitioned-but-alive worker therefore loses its lease rather than
wedging the sweep; when it reconnects, :meth:`LeaseManager.heartbeat`
reports the loss and the worker abandons the group.  Because every cell
carries a deterministic seed, the work the zombie already did is bitwise
identical to the re-claimer's — double execution wastes time, never
correctness.

Expiry compares the heartbeat against this machine's wall clock, so
machines sharing a queue need loosely synchronised clocks (NTP-level skew
is fine for the minute-scale TTLs used here).  The clock is injectable for
deterministic tests.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass
from pathlib import Path

from repro.utils.fs import atomic_write_text


@dataclass(frozen=True)
class Lease:
    """One worker's claim on one group."""

    group_id: str
    worker_id: str
    acquired_at: float
    heartbeat_at: float
    ttl: float

    def to_json(self) -> str:
        return json.dumps({
            "group_id": self.group_id, "worker_id": self.worker_id,
            "acquired_at": self.acquired_at, "heartbeat_at": self.heartbeat_at,
            "ttl": self.ttl,
        }, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Lease":
        payload = json.loads(text)
        return cls(group_id=str(payload["group_id"]),
                   worker_id=str(payload["worker_id"]),
                   acquired_at=float(payload["acquired_at"]),
                   heartbeat_at=float(payload["heartbeat_at"]),
                   ttl=float(payload["ttl"]))


class LeaseManager:
    """Acquire, refresh, steal and release leases under one directory."""

    def __init__(self, root: str | os.PathLike, ttl: float = 60.0, clock=None):
        if ttl <= 0:
            raise ValueError(f"lease ttl must be positive, got {ttl}")
        self.root = Path(root)
        self.ttl = float(ttl)
        self.clock = clock if clock is not None else time.time

    def path_for(self, group_id: str) -> Path:
        return self.root / f"{group_id}.lease"

    # ------------------------------------------------------------------ #
    # claiming
    # ------------------------------------------------------------------ #
    def acquire(self, group_id: str, worker_id: str) -> Lease | None:
        """Claim ``group_id`` for ``worker_id``; ``None`` if validly held.

        An expired lease is stolen (see the module docstring for the
        race-free protocol); a fresh lease held by someone else — including
        a past incarnation of this very worker id — is respected.
        """
        lease = self._try_create(group_id, worker_id)
        if lease is not None:
            return lease
        current = self.read(group_id)
        if current is None:
            # The holder released (or was reaped) between our create attempt
            # and the read; try once more, then let the caller's next poll
            # retry.
            return self._try_create(group_id, worker_id)
        if not self.is_expired(current):
            return None
        if not self._reap(group_id):
            return None
        return self._try_create(group_id, worker_id)

    def _try_create(self, group_id: str, worker_id: str) -> Lease | None:
        now = self.clock()
        lease = Lease(group_id=group_id, worker_id=worker_id,
                      acquired_at=now, heartbeat_at=now, ttl=self.ttl)
        self.root.mkdir(parents=True, exist_ok=True)
        try:
            handle = os.open(self.path_for(group_id),
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return None
        try:
            os.write(handle, (lease.to_json() + "\n").encode("utf-8"))
        finally:
            os.close(handle)
        return lease

    def _reap(self, group_id: str) -> bool:
        """Atomically retire an expired lease file; True if *we* retired it."""
        token = self.root / f".reap-{group_id}-{uuid.uuid4().hex}"
        try:
            os.replace(self.path_for(group_id), token)
        except FileNotFoundError:
            return False  # a concurrent stealer won the rename
        token.unlink(missing_ok=True)
        return True

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    def read(self, group_id: str) -> Lease | None:
        """The current lease on ``group_id``, ``None`` if absent/corrupt."""
        try:
            text = self.path_for(group_id).read_text(encoding="utf-8")
            return Lease.from_json(text)
        except (OSError, ValueError, KeyError):
            return None

    def is_expired(self, lease: Lease) -> bool:
        return self.clock() - lease.heartbeat_at > lease.ttl

    def holder(self, group_id: str) -> str | None:
        """The worker id validly holding ``group_id``, ``None`` otherwise."""
        lease = self.read(group_id)
        if lease is None or self.is_expired(lease):
            return None
        return lease.worker_id

    # ------------------------------------------------------------------ #
    # holding
    # ------------------------------------------------------------------ #
    def heartbeat(self, lease: Lease) -> Lease | None:
        """Refresh ``lease``; ``None`` if it was lost (stolen or released).

        The refresh rewrites the claim file atomically (temp + rename) after
        verifying the file still names this worker — a worker that was
        partitioned long enough to be reaped learns it here and must abandon
        the group.
        """
        current = self.read(lease.group_id)
        if current is None or current.worker_id != lease.worker_id:
            return None
        refreshed = Lease(group_id=lease.group_id, worker_id=lease.worker_id,
                          acquired_at=lease.acquired_at,
                          heartbeat_at=self.clock(), ttl=lease.ttl)
        atomic_write_text(self.path_for(lease.group_id),
                          refreshed.to_json() + "\n")
        return refreshed

    def release(self, lease: Lease) -> None:
        """Drop ``lease`` if still ours; a lost lease is released silently."""
        current = self.read(lease.group_id)
        if current is not None and current.worker_id == lease.worker_id:
            self.path_for(lease.group_id).unlink(missing_ok=True)
