"""LinkTeller-style influence attack (Wu et al., IEEE S&P 2022).

The attacker holds the features of the target nodes and can query the model's
predictions for chosen feature matrices.  To test whether an edge (u, v)
exists, it perturbs node u's features by a small amount, re-queries, and
measures how much node v's prediction changes: in a GNN that propagates over
real edges, influence flows only along edges, so a large influence score
indicates a likely edge.

The attack takes a ``predict_fn`` mapping a feature matrix to per-node scores,
so it can be mounted against any of this repository's estimators (the
non-private GCN leaks strongly; GCON's private inference, which only uses the
querying node's own edges, does not expose other nodes' edges).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import ConfigurationError


def influence_link_attack(predict_fn: Callable[[np.ndarray], np.ndarray],
                          features: np.ndarray, pairs: np.ndarray,
                          perturbation: float = 1e-3) -> np.ndarray:
    """Score candidate ``pairs`` by feature-influence magnitude.

    Parameters
    ----------
    predict_fn:
        Callable returning per-node scores ``(n, c)`` for a feature matrix.
    features:
        Baseline feature matrix of shape ``(n, d0)``.
    pairs:
        Candidate node pairs ``(k, 2)``; the influence of the first node on
        the second node's prediction is measured.
    perturbation:
        Relative magnitude of the feature perturbation.
    """
    features = np.asarray(features, dtype=np.float64)
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ConfigurationError(f"pairs must have shape (k, 2), got {pairs.shape}")
    if perturbation <= 0:
        raise ConfigurationError(f"perturbation must be > 0, got {perturbation}")
    baseline = np.asarray(predict_fn(features), dtype=np.float64)
    scores = np.zeros(pairs.shape[0], dtype=np.float64)
    # Group pairs by the perturbed node so each source node is queried once.
    for source in np.unique(pairs[:, 0]):
        perturbed = features.copy()
        perturbed[source] = perturbed[source] * (1.0 + perturbation) + perturbation
        response = np.asarray(predict_fn(perturbed), dtype=np.float64)
        influence = np.linalg.norm(response - baseline, axis=1)
        mask = pairs[:, 0] == source
        scores[mask] = influence[pairs[mask, 1]]
    return scores
