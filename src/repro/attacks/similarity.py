"""The eight similarity-based link-stealing scores of He et al. (USENIX Sec. '21).

"Stealing links from graph neural networks" shows that many simple
similarity measures between two nodes' posterior vectors already recover
edges from a trained GNN.  GCON's motivation (Section I) is precisely this
class of attack; this module implements the full metric suite so that the
attack benchmark can report the strongest attacker rather than a single
arbitrary score.

Every function maps two posterior matrices (rows aligned with the candidate
pairs) to a score per pair where *higher means more likely connected*;
distance-type metrics are therefore negated.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError


def _validate(first: np.ndarray, second: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    first = np.asarray(first, dtype=np.float64)
    second = np.asarray(second, dtype=np.float64)
    if first.shape != second.shape:
        raise ConfigurationError(
            f"posterior blocks must have the same shape, got {first.shape} vs {second.shape}"
        )
    if first.ndim != 2:
        raise ConfigurationError(f"posteriors must be 2-D, got {first.ndim}-D")
    return first, second


def cosine_similarity(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    first, second = _validate(first, second)
    numerator = np.sum(first * second, axis=1)
    denominator = np.linalg.norm(first, axis=1) * np.linalg.norm(second, axis=1)
    return numerator / np.maximum(denominator, 1e-12)


def euclidean_similarity(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    first, second = _validate(first, second)
    return -np.linalg.norm(first - second, axis=1)


def squared_euclidean_similarity(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    first, second = _validate(first, second)
    return -np.sum((first - second) ** 2, axis=1)


def correlation_similarity(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    first, second = _validate(first, second)
    first_centered = first - first.mean(axis=1, keepdims=True)
    second_centered = second - second.mean(axis=1, keepdims=True)
    numerator = np.sum(first_centered * second_centered, axis=1)
    denominator = (np.linalg.norm(first_centered, axis=1)
                   * np.linalg.norm(second_centered, axis=1))
    return numerator / np.maximum(denominator, 1e-12)


def chebyshev_similarity(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    first, second = _validate(first, second)
    return -np.max(np.abs(first - second), axis=1)


def manhattan_similarity(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    first, second = _validate(first, second)
    return -np.sum(np.abs(first - second), axis=1)


def braycurtis_similarity(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    first, second = _validate(first, second)
    numerator = np.sum(np.abs(first - second), axis=1)
    denominator = np.sum(np.abs(first + second), axis=1)
    return -numerator / np.maximum(denominator, 1e-12)


def canberra_similarity(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    first, second = _validate(first, second)
    denominator = np.abs(first) + np.abs(second)
    terms = np.where(denominator > 1e-12, np.abs(first - second) / np.maximum(denominator, 1e-12), 0.0)
    return -np.sum(terms, axis=1)


SIMILARITY_METRICS = {
    "cosine": cosine_similarity,
    "euclidean": euclidean_similarity,
    "sqeuclidean": squared_euclidean_similarity,
    "correlation": correlation_similarity,
    "chebyshev": chebyshev_similarity,
    "manhattan": manhattan_similarity,
    "braycurtis": braycurtis_similarity,
    "canberra": canberra_similarity,
}


def similarity_scores(posteriors: np.ndarray, pairs: np.ndarray,
                      metric: str = "cosine") -> np.ndarray:
    """Attack scores for candidate node ``pairs`` using one named metric.

    Parameters
    ----------
    posteriors:
        Model output matrix of shape ``(n, c)`` (logits or probabilities).
    pairs:
        Integer array of shape ``(k, 2)`` of candidate node pairs.
    metric:
        One of :data:`SIMILARITY_METRICS`.
    """
    if metric not in SIMILARITY_METRICS:
        raise ConfigurationError(
            f"unknown metric {metric!r}; available: {sorted(SIMILARITY_METRICS)}"
        )
    posteriors = np.asarray(posteriors, dtype=np.float64)
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ConfigurationError(f"pairs must have shape (k, 2), got {pairs.shape}")
    first = posteriors[pairs[:, 0]]
    second = posteriors[pairs[:, 1]]
    return SIMILARITY_METRICS[metric](first, second)


def all_similarity_scores(posteriors: np.ndarray, pairs: np.ndarray) -> dict[str, np.ndarray]:
    """Scores from every metric in the suite, keyed by metric name."""
    return {
        name: similarity_scores(posteriors, pairs, metric=name)
        for name in SIMILARITY_METRICS
    }


def strongest_attack_auc(posteriors: np.ndarray, pairs: np.ndarray,
                         labels: np.ndarray) -> tuple[str, float]:
    """AUC of the best-performing similarity metric (the attacker's free choice)."""
    from repro.attacks.evaluation import attack_auc

    best_name = ""
    best_auc = -np.inf
    for name, scores in all_similarity_scores(posteriors, pairs).items():
        auc = attack_auc(scores, labels)
        if auc > best_auc:
            best_name, best_auc = name, auc
    return best_name, float(best_auc)
