"""Similarity-based link-stealing attack (He et al., USENIX Security 2021, attack 0).

The attacker queries the released model for the posterior (class-score)
vectors of two nodes and scores the pair by the similarity of the posteriors:
GNNs smooth predictions along edges, so connected nodes tend to have more
similar outputs than unconnected ones.  Only black-box access to predictions
is required.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.math import softmax


def similarity_link_attack(scores: np.ndarray, pairs: np.ndarray,
                           metric: str = "cosine") -> np.ndarray:
    """Score candidate ``pairs`` by posterior similarity.

    Parameters
    ----------
    scores:
        Model output scores for every node, shape ``(n, c)``.
    pairs:
        Candidate node pairs, shape ``(k, 2)``.
    metric:
        ``"cosine"`` (cosine similarity of softmax posteriors) or
        ``"correlation"`` (Pearson correlation).
    """
    scores = np.asarray(scores, dtype=np.float64)
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ConfigurationError(f"pairs must have shape (k, 2), got {pairs.shape}")
    posteriors = softmax(scores, axis=1)
    left = posteriors[pairs[:, 0]]
    right = posteriors[pairs[:, 1]]
    if metric == "cosine":
        numerator = np.sum(left * right, axis=1)
        denominator = np.linalg.norm(left, axis=1) * np.linalg.norm(right, axis=1) + 1e-12
        return numerator / denominator
    if metric == "correlation":
        left_centered = left - left.mean(axis=1, keepdims=True)
        right_centered = right - right.mean(axis=1, keepdims=True)
        numerator = np.sum(left_centered * right_centered, axis=1)
        denominator = (np.linalg.norm(left_centered, axis=1)
                       * np.linalg.norm(right_centered, axis=1) + 1e-12)
        return numerator / denominator
    raise ConfigurationError(f"unknown metric {metric!r}; expected 'cosine' or 'correlation'")
