"""Shared utilities for evaluating edge-inference attacks.

An attack produces, for every candidate node pair, a confidence score that an
edge exists between the pair.  We evaluate attacks with ROC-AUC over a
balanced set of true edges and non-edges, the standard protocol of the link
stealing / LinkTeller literature.  A value near 0.5 means the released model
leaks (almost) nothing about individual edges.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.metrics import roc_auc
from repro.exceptions import ConfigurationError
from repro.graphs.graph import GraphDataset
from repro.utils.random import as_rng


def sample_edge_candidates(graph: GraphDataset, num_pairs: int = 200,
                           rng=None) -> tuple[np.ndarray, np.ndarray]:
    """Sample a balanced set of existing edges and non-edges.

    Returns ``(pairs, labels)`` where ``pairs`` has shape ``(k, 2)`` and
    ``labels`` marks true edges with 1.
    """
    if num_pairs < 2:
        raise ConfigurationError(f"num_pairs must be >= 2, got {num_pairs}")
    rng = as_rng(rng)
    edges = graph.edges()
    if edges.shape[0] == 0:
        raise ConfigurationError("graph has no edges to attack")
    per_side = min(num_pairs // 2, edges.shape[0])
    chosen = edges[rng.choice(edges.shape[0], size=per_side, replace=False)]

    adjacency = graph.adjacency
    non_edges: list[tuple[int, int]] = []
    attempts = 0
    while len(non_edges) < per_side and attempts < 100 * per_side:
        attempts += 1
        u, v = rng.integers(0, graph.num_nodes, size=2)
        if u == v or adjacency[u, v] != 0:
            continue
        non_edges.append((int(u), int(v)))
    pairs = np.concatenate([chosen, np.array(non_edges, dtype=np.int64).reshape(-1, 2)])
    labels = np.concatenate([
        np.ones(chosen.shape[0], dtype=np.int64),
        np.zeros(len(non_edges), dtype=np.int64),
    ])
    return pairs, labels


def attack_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """ROC-AUC of an attack's edge-confidence scores."""
    return roc_auc(labels, scores)
