"""Edge-inference attacks motivating edge-level DP (Section I of the paper)."""

from repro.attacks.linkstealing import similarity_link_attack
from repro.attacks.linkteller import influence_link_attack
from repro.attacks.evaluation import sample_edge_candidates, attack_auc
from repro.attacks.similarity import (
    SIMILARITY_METRICS,
    similarity_scores,
    all_similarity_scores,
    strongest_attack_auc,
)

__all__ = [
    "similarity_link_attack",
    "influence_link_attack",
    "sample_edge_candidates",
    "attack_auc",
    "SIMILARITY_METRICS",
    "similarity_scores",
    "all_similarity_scores",
    "strongest_attack_auc",
]
