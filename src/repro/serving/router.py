"""Per-model routing of inference traffic: one micro-batch queue per model.

A single shared forming batch is wrong under mixed traffic: rows from every
model count toward one ``max_batch_size`` and share one ``max_latency``
deadline, so a cheap model's tickets queue behind an expensive model's flush
and matmul — head-of-line blocking.  The :class:`ModelRouter` kills that bug
by construction: each resolved model key gets its **own**
:class:`~repro.serving.batcher.MicroBatcher` (own forming batch, own row
budget, own deadline, own dispatch thread), created lazily on first traffic.
Batch sizing can be tuned per model with :meth:`configure_model`; everything
else inherits the router-wide defaults.

The router duck-types the public ``MicroBatcher`` surface the service and
tests already speak — ``submit`` / ``predict_scores`` / ``run_once`` /
``start`` / ``close`` / ``stats`` — so it drops into
:class:`~repro.serving.service.InferenceService` as the drop-in data plane.
``stats`` is an aggregate view merged across queues; ``per_model_stats`` and
the attached :class:`~repro.serving.metrics.ServingMetrics` (latency /
batch-size / queue-depth histograms) expose the per-model breakdown that
``/stats`` serves.
"""

from __future__ import annotations

import threading
import time

from repro.serving.batcher import BatchStats, MicroBatcher
from repro.serving.metrics import ServingMetrics


class ModelRouter:
    """Routes ``submit(model_key, nodes)`` to that model's own queue.

    Parameters
    ----------
    compute:
        ``(model_key, node_indices) -> scores``, exactly the
        :class:`MicroBatcher` contract; shared by every queue.
    max_batch_size / max_latency:
        Router-wide defaults for newly created per-model queues.
    metrics:
        A :class:`ServingMetrics` to observe into (one is created when
        omitted); wired into every queue as its observer.
    label:
        ``model_key -> str`` used for stats and metrics labels (default
        ``str``); the service maps session keys to ``name@digest:mode``.
    """

    def __init__(self, compute, *, max_batch_size: int = 64,
                 max_latency: float = 0.005, metrics: ServingMetrics | None = None,
                 clock=time.monotonic, label=str):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_latency < 0:
            raise ValueError(f"max_latency must be >= 0, got {max_latency}")
        self._compute = compute
        self.max_batch_size = int(max_batch_size)
        self.max_latency = float(max_latency)
        self.metrics = metrics if metrics is not None else ServingMetrics()
        self._clock = clock
        self._label = label
        self._queues: dict = {}
        self._overrides: dict[str, dict] = {}
        self._lock = threading.Lock()
        self._started = False

    # ------------------------------------------------------------------ #
    # per-model configuration
    # ------------------------------------------------------------------ #
    def configure_model(self, label: str, *, max_batch_size: int | None = None,
                        max_latency: float | None = None) -> None:
        """Override batch limits for one model label (affects its queue even
        if already created; applies to future flushes, not the forming one)."""
        override: dict = {}
        if max_batch_size is not None:
            if max_batch_size < 1:
                raise ValueError(
                    f"max_batch_size must be >= 1, got {max_batch_size}")
            override["max_batch_size"] = int(max_batch_size)
        if max_latency is not None:
            if max_latency < 0:
                raise ValueError(f"max_latency must be >= 0, got {max_latency}")
            override["max_latency"] = float(max_latency)
        with self._lock:
            self._overrides.setdefault(label, {}).update(override)
            for model_key, queue in self._queues.items():
                if self._label(model_key) == label:
                    # One atomic swap per queue: the dispatch thread picks the
                    # new pair up at its next batch boundary, never mid-flush
                    # and never as a torn (new size, old deadline) mix.
                    queue.configure(
                        max_batch_size=override.get("max_batch_size"),
                        max_latency=override.get("max_latency"))

    def model_limits(self, label: str) -> tuple[int, float]:
        """The effective ``(max_batch_size, max_latency)`` a queue for
        ``label`` runs (or would be created) with — what the SLO controller
        reads before deciding its next adjustment."""
        with self._lock:
            override = self._overrides.get(label, {})
            return (override.get("max_batch_size", self.max_batch_size),
                    override.get("max_latency", self.max_latency))

    def depth(self, model_key) -> int:
        """In-flight tickets on one model's queue (0 when it has no queue):
        the signal admission control sheds on, read without creating a
        queue so a rejected request costs no allocation."""
        with self._lock:
            queue = self._queues.get(model_key)
        return queue.depth() if queue is not None else 0

    def queue_for(self, model_key) -> MicroBatcher:
        """The model's own queue, created (and started, if the router is
        running) on first use."""
        with self._lock:
            queue = self._queues.get(model_key)
            if queue is None:
                label = self._label(model_key)
                override = self._overrides.get(label, {})
                queue = MicroBatcher(
                    self._compute,
                    max_batch_size=override.get("max_batch_size",
                                                self.max_batch_size),
                    max_latency=override.get("max_latency", self.max_latency),
                    clock=self._clock, observer=self.metrics,
                    label=self._label)
                self._queues[model_key] = queue
                if self._started:
                    queue.start()
            return queue

    # ------------------------------------------------------------------ #
    # the MicroBatcher surface
    # ------------------------------------------------------------------ #
    def submit(self, model_key, nodes):
        """Enqueue on the model's own queue; returns the ticket."""
        return self.queue_for(model_key).submit(model_key, nodes)

    def predict_scores(self, model_key, nodes, timeout: float | None = 30.0):
        """Submit and wait; inline execution when the router is not started
        drains only *this model's* queue (independence even in library use)."""
        queue = self.queue_for(model_key)
        ticket = queue.submit(model_key, nodes)
        if not self._started:
            queue.run_once()
        return ticket.result(timeout)

    def run_once(self) -> int:
        """Drain every queue once, synchronously; returns tickets executed.

        Each model's backlog becomes one batch on its own queue — the
        deterministic entry point tests and benchmarks share."""
        with self._lock:
            queues = list(self._queues.values())
        return sum(queue.run_once() for queue in queues)

    def retire(self, model_key) -> bool:
        """Drop one model's queue (flushing queued tickets, stopping its
        dispatch thread).  Returns True when a queue existed.  The service
        calls this when a session is evicted, so retired model versions do
        not leak a thread per publish; new traffic simply recreates the
        queue."""
        with self._lock:
            queue = self._queues.pop(model_key, None)
        if queue is None:
            return False
        queue.close()
        return True

    def start(self) -> "ModelRouter":
        """Start a dispatch thread per existing queue; future queues start
        on creation (idempotent)."""
        with self._lock:
            self._started = True
            queues = list(self._queues.values())
        for queue in queues:
            queue.start()
        return self

    def close(self) -> None:
        """Flush and stop every queue's dispatch thread."""
        with self._lock:
            self._started = False
            queues = list(self._queues.values())
        for queue in queues:
            queue.close()

    def __enter__(self) -> "ModelRouter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> BatchStats:
        """Aggregate counters merged across every per-model queue."""
        merged = BatchStats()
        with self._lock:
            queues = list(self._queues.values())
        for queue in queues:
            with queue._stats_lock:
                merged.merge(queue.stats)
        return merged

    def per_model_stats(self) -> dict:
        """Label -> that queue's counters plus its effective batch limits."""
        with self._lock:
            items = [(self._label(key), queue)
                     for key, queue in self._queues.items()]
        out = {}
        for label, queue in sorted(items):
            with queue._stats_lock:
                counters = queue.stats.as_dict()
            counters["max_batch_size"] = queue.max_batch_size
            counters["max_latency_seconds"] = queue.max_latency
            out[label] = counters
        return out

    def queue_count(self) -> int:
        with self._lock:
            return len(self._queues)
