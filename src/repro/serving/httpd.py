"""A single-threaded, ``selectors``-based HTTP/1.1 frontend for serving.

The PR 4 frontend was ``ThreadingHTTPServer``: one OS thread per connection,
each parked in a blocking ``predict`` while its ticket waited on the batcher.
That caps connection count at thread count and spends a context switch per
request.  This frontend multiplexes every connection on **one** event loop
(stdlib ``selectors``, no dependencies):

* reads are non-blocking; complete requests are parsed out of per-connection
  buffers (HTTP/1.1 keep-alive and pipelined requests included);
* ``GET`` routes answer immediately;
* ``POST /v1/predict`` *submits* a ticket to the service's per-model router
  and parks the connection — the loop keeps serving other sockets while the
  model's own micro-batch queue coalesces and executes the matmul on its
  dispatch thread — then writes the response when the ticket resolves;
* connections are bounded (``max_connections``; excess accepts get an
  immediate 503), idle sockets are reaped, and ``shutdown()`` drains
  in-flight tickets and buffered writes before returning (graceful drain).

When the server is part of a fleet (``fleet=`` a
:class:`~repro.serving.fleet.FleetRouter`), ``POST /v1/predict`` first asks
the consistent-hash ring who owns the request's model digest.  A request
for a peer-owned digest is *proxied* — forwarded on a short-lived worker
thread (the loop parks the connection exactly like a batch ticket and the
thread pokes the self-pipe when the upstream answers) — or answered with a
``307`` redirect in redirect mode.  Forwarded requests carry an
``X-Fleet-Forwarded`` header and are always served locally on arrival, so a
membership disagreement can never create a proxy loop; if every routed peer
is unreachable (a dead replica inside its lease-TTL window), the request
falls back to local execution, which is always correct because served
scores are bitwise-pinned to the offline reference on every replica.
``GET /fleet`` exposes the membership census, digest routing table and
forwarding counters.

Because tickets are *polled*, never waited on, a slow model cannot stall the
loop; the only blocking work on the loop is building a cold model session
(first query to an unwarmed model), which ``repro serve`` avoids by warming
sessions before binding the socket.

The surface mirrors ``socketserver`` so existing callers and tests drop in:
``serve_forever()`` / ``shutdown()`` / ``server_close()`` /
``server_address``.
"""

from __future__ import annotations

import json
import selectors
import socket
import sys
import threading
import time

from repro.exceptions import ConfigurationError, GraphDataError
from repro.obs.prometheus import PROMETHEUS_CONTENT_TYPE
from repro.obs.trace import (
    TRACE_HEADER,
    Tracer,
    format_trace_header,
    parse_trace_header,
)
from repro.serving.service import (
    InferenceService,
    format_prediction_body,
    parse_graph_update_payload,
    parse_predict_payload,
)
from repro.serving.slo import OverloadedError

MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024
RECV_CHUNK = 64 * 1024

_WAKER = object()  # selector data marker for the self-pipe read end


class _ProxyJob:
    """One forwarded ``/v1/predict``: targets in failover order, one thread.

    Duck-types the parked-ticket contract the event loop already speaks
    (``done()`` + an ``on_done`` self-pipe hook): the worker thread walks the
    target list — the ring owner, then at most one backup — relaying the
    first upstream *response* verbatim (including upstream 4xx/5xx, which
    are authoritative), skipping peers that are unreachable at the socket
    level.  ``failed`` means no target answered at all; the loop then falls
    back to local execution.
    """

    __slots__ = ("targets", "path", "body", "timeout", "trace_header",
                 "status", "resp_body", "target_id", "failed", "on_done",
                 "_event")

    def __init__(self, targets, path: str, body: bytes, timeout: float, *,
                 trace_header: str | None = None):
        self.targets = list(targets)
        self.path = path
        self.body = body
        self.timeout = timeout
        self.trace_header = trace_header  # X-Repro-Trace continuation value
        self.status: int | None = None
        self.resp_body = b""
        self.target_id: str | None = None
        self.failed = False
        self.on_done = None
        self._event = threading.Event()

    def done(self) -> bool:
        return self._event.is_set()

    def run(self) -> None:
        import urllib.error
        import urllib.request

        headers = {"Content-Type": "application/json",
                   "X-Fleet-Forwarded": "1", "Connection": "close"}
        if self.trace_header:
            # Propagate the trace: the owner's root span becomes a child of
            # this relay's proxy span, so the forwarded predict is one trace.
            headers[TRACE_HEADER] = self.trace_header
        for target in self.targets:
            request = urllib.request.Request(
                target.base_url + self.path, data=self.body, method="POST",
                headers=headers)
            try:
                with urllib.request.urlopen(request,
                                            timeout=self.timeout) as response:
                    self.status = int(response.status)
                    self.resp_body = response.read()
            except urllib.error.HTTPError as error:
                self.status = int(error.code)
                try:
                    self.resp_body = error.read()
                except OSError:
                    self.resp_body = _render_body({"error": str(error)})
            except (urllib.error.URLError, OSError):
                continue  # unreachable peer: try the next routed target
            self.target_id = target.replica_id
            break
        if self.status is None:
            self.failed = True
        self._event.set()
        hook = self.on_done
        if hook is not None:
            hook()


class _UpdateJob:
    """One admitted ``/v1/graph/update``: apply + re-propagate off-loop.

    Same duck-typed parked contract as :class:`_ProxyJob` (``done()`` + an
    ``on_done`` self-pipe hook).  The service call runs on its own thread
    because re-propagation is a real computation; the event loop keeps
    serving predict traffic — pinned to the previous epoch — meanwhile.
    Updates are admitted one at a time (the server rejects a second with
    429 while one is in flight), which keeps the epoch sequence linear.
    """

    __slots__ = ("service", "kwargs", "result", "error", "status",
                 "on_done", "_event")

    def __init__(self, service: InferenceService, kwargs: dict):
        self.service = service
        self.kwargs = kwargs
        self.result: dict | None = None
        self.error: str | None = None
        self.status = 200
        self.on_done = None
        self._event = threading.Event()

    def done(self) -> bool:
        return self._event.is_set()

    def run(self) -> None:
        try:
            self.result = self.service.apply_graph_update(**self.kwargs)
        except (ConfigurationError, GraphDataError) as error:
            self.status, self.error = 400, str(error)
        except Exception as error:  # surfaced, not swallowed
            self.status, self.error = 500, repr(error)
        self._event.set()
        hook = self.on_done
        if hook is not None:
            hook()


class _BadRequest(Exception):
    """Malformed HTTP framing: respond with ``status`` and close."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class _Connection:
    """Per-socket state: buffers, keep-alive flag and the parked ticket."""

    __slots__ = ("sock", "addr", "inbuf", "outbuf", "close_after_write",
                 "pending", "last_activity")

    def __init__(self, sock: socket.socket, addr, now: float):
        self.sock = sock
        self.addr = addr
        self.inbuf = bytearray()
        self.outbuf = bytearray()
        self.close_after_write = False
        self.pending: dict | None = None  # parked /v1/predict ticket + context
        self.last_activity = now


class SelectorHTTPServer:
    """One event loop, many connections, per-model batch queues underneath."""

    def __init__(self, address, service: InferenceService, *,
                 max_connections: int = 512, request_timeout: float = 30.0,
                 idle_timeout: float = 120.0, drain_timeout: float = 5.0,
                 stats_interval: float | None = None, log_stream=None,
                 fleet=None, tracer: Tracer | None = None):
        self.service = service
        self.tracer = tracer  # a repro.obs.trace.Tracer, or None (untraced)
        self.fleet = fleet  # a FleetRouter, or None outside a fleet
        # A repro.obs.alerts.AlertEngine when `repro serve --telemetry-dir`
        # runs a collector; answers GET /alerts from its last evaluation.
        self.alerts = None
        self.fleet_stats = {"proxied": 0, "redirected": 0,
                            "failover_local": 0, "received_forwards": 0}
        self.max_connections = int(max_connections)
        self.request_timeout = float(request_timeout)
        self.idle_timeout = float(idle_timeout)
        self.drain_timeout = float(drain_timeout)
        self.stats_interval = stats_interval
        self.log_stream = log_stream

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(address)
        self._listener.listen(min(self.max_connections, 128))
        self._listener.setblocking(False)
        self.server_address = self._listener.getsockname()[:2]

        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ, None)
        # Self-pipe: batcher threads poke the write end when a parked ticket
        # resolves, so the loop wakes exactly then instead of busy-polling.
        self._waker_r, self._waker_w = socket.socketpair()
        self._waker_r.setblocking(False)
        self._waker_w.setblocking(False)
        self._selector.register(self._waker_r, selectors.EVENT_READ, _WAKER)
        self._connections: dict[socket.socket, _Connection] = {}
        self._parked: set[_Connection] = set()
        # The in-flight /v1/graph/update, if any: updates are admitted one
        # at a time so the serving graph's epoch sequence stays linear.
        self._graph_update: _UpdateJob | None = None

        self._shutdown_request = False
        self._is_shut_down = threading.Event()
        self._is_shut_down.set()

    # ------------------------------------------------------------------ #
    # lifecycle (the socketserver-shaped surface)
    # ------------------------------------------------------------------ #
    def serve_forever(self, poll_interval: float = 0.05) -> None:
        self._is_shut_down.clear()
        next_stats = (time.monotonic() + self.stats_interval
                      if self.stats_interval else None)
        last_sweep = time.monotonic()
        try:
            while not self._shutdown_request:
                # Parked tickets wake the loop through the self-pipe the
                # moment they resolve; the timeout only paces deadline
                # checks, idle sweeps and the stats line.
                self._tick(poll_interval)
                now = time.monotonic()
                if now - last_sweep >= 5.0:
                    self._sweep_idle(now)
                    last_sweep = now
                if next_stats is not None and now >= next_stats:
                    # Explicitly requested, so it prints even under --quiet
                    # (which only nulls the per-request log_stream).
                    stream = (self.log_stream if self.log_stream is not None
                              else sys.stderr)
                    shed = sum(dict(self.service.shed_counts).values())
                    print(f"[serve] stats: "
                          f"{self.service.batcher.metrics.summary_line()} | "
                          f"shed={shed} "
                          f"proxied={self.fleet_stats['proxied']}",
                          file=stream, flush=True)
                    next_stats = now + self.stats_interval
            self._drain()
        finally:
            self._shutdown_request = False
            self._is_shut_down.set()

    def shutdown(self) -> None:
        """Ask the loop to drain and stop; blocks until it has."""
        self._shutdown_request = True
        self._is_shut_down.wait()

    def server_close(self) -> None:
        """Close the listener and every remaining connection."""
        for conn in list(self._connections.values()):
            self._close_connection(conn)
        for sock in (self._listener, self._waker_r, self._waker_w):
            try:
                self._selector.unregister(sock)
            except (KeyError, ValueError):
                pass
            sock.close()
        self._selector.close()

    def __enter__(self) -> "SelectorHTTPServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.server_close()

    # ------------------------------------------------------------------ #
    # the event loop body
    # ------------------------------------------------------------------ #
    def _tick(self, timeout: float) -> None:
        for key, events in self._selector.select(timeout):
            if key.data is None:
                self._accept()
                continue
            if key.data is _WAKER:
                try:  # drain every pending poke; completion runs below
                    while self._waker_r.recv(4096):
                        pass
                except (BlockingIOError, InterruptedError):
                    pass
                continue
            conn: _Connection = key.data
            if events & selectors.EVENT_READ:
                self._readable(conn)
            if conn.sock in self._connections and events & selectors.EVENT_WRITE:
                self._writable(conn)
        self._complete_parked(time.monotonic())

    def _accept(self) -> None:
        while True:
            try:
                sock, addr = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            if len(self._connections) >= self.max_connections:
                # Bounded: tell the client to back off, immediately.
                try:
                    sock.setblocking(False)
                    sock.send(_render(503, {"error": "connection limit reached"},
                                      keep_alive=False))
                except OSError:
                    pass
                sock.close()
                self._log(f"{addr[0]} rejected (connection limit "
                          f"{self.max_connections})")
                continue
            sock.setblocking(False)
            conn = _Connection(sock, addr, time.monotonic())
            self._connections[sock] = conn
            self._selector.register(sock, selectors.EVENT_READ, conn)

    def _readable(self, conn: _Connection) -> None:
        try:
            data = conn.sock.recv(RECV_CHUNK)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close_connection(conn)
            return
        if not data:
            self._close_connection(conn)
            return
        conn.inbuf += data
        conn.last_activity = time.monotonic()
        self._process_input(conn)

    def _writable(self, conn: _Connection) -> None:
        try:
            sent = conn.sock.send(conn.outbuf)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close_connection(conn)
            return
        del conn.outbuf[:sent]
        conn.last_activity = time.monotonic()
        if conn.outbuf:
            return
        if conn.close_after_write:
            self._close_connection(conn)
            return
        self._update_interest(conn)
        self._process_input(conn)  # pipelined requests behind the response

    def _process_input(self, conn: _Connection) -> None:
        """Parse and dispatch as many buffered requests as possible.

        Stops at the first parked predict (responses must stay in request
        order on one connection) and while a response is still flushing.
        """
        while conn.pending is None and not conn.close_after_write:
            try:
                parsed = _parse_request(conn.inbuf)
            except _BadRequest as error:
                self._respond(conn, error.status, {"error": str(error)},
                              keep_alive=False)
                return
            if parsed is None:
                return
            method, path, headers, body, keep_alive = parsed
            self._dispatch(conn, method, path, headers, body, keep_alive)

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def _dispatch(self, conn: _Connection, method: str, path: str,
                  headers: dict, body: bytes, keep_alive: bool) -> None:
        try:
            if method == "GET":
                if path == "/metrics":
                    self._serve_metrics(conn, keep_alive)
                    return
                status, payload = self._route_get(path)
            elif method == "POST":
                if path == "/v1/graph/update":
                    self._submit_graph_update(conn, headers, body, keep_alive)
                    return  # parked (the completion pass responds) or errored
                if path not in ("/v1/predict", "/predict"):
                    status, payload = 404, {"error": f"unknown path {path!r}"}
                else:
                    span = self._start_predict_trace(headers)
                    if self._maybe_forward(conn, path, headers, body,
                                           keep_alive, span):
                        return  # proxied/redirected to the owning replica
                    self._submit_predict(conn, body, keep_alive, span)
                    return  # parked (the completion pass responds) or errored
            else:
                status, payload = 405, {"error": f"method {method} not allowed"}
        except ConfigurationError as error:
            status, payload = 400, {"error": str(error)}
        except Exception as error:  # surfaced, not swallowed: 500 + message
            status, payload = 500, {"error": repr(error)}
        self._log_request(conn, method, path, status)
        self._respond(conn, status, payload, keep_alive=keep_alive)

    def _route_get(self, path: str) -> tuple[int, dict]:
        if path in ("/healthz", "/health"):
            return 200, self.service.health()
        if path == "/stats":
            payload = self.service.stats()
            process = payload.get("process")
            if isinstance(process, dict):
                # Only the frontend knows its sockets; overlay them on the
                # service's uptime/RSS section.
                process["open_connections"] = len(self._connections)
                process["parked_requests"] = len(self._parked)
            return 200, payload
        if path == "/debug/traces":
            if self.tracer is None:
                return 200, {"enabled": False, "traces": []}
            return 200, {"enabled": True,
                         "traces": self.tracer.store.recent()}
        if path.startswith("/debug/traces/"):
            trace_id = path[len("/debug/traces/"):]
            trace = (self.tracer.store.get(trace_id)
                     if self.tracer is not None else None)
            if trace is None:
                return 404, {"error": f"unknown trace {trace_id!r}"}
            return 200, trace
        if path == "/v1/graph/status":
            return 200, self.service.graph_status()
        if path == "/models":
            return 200, {"models": [
                {"ref": record.ref, "name": record.name, "digest": record.digest,
                 "privacy": record.manifest.get("privacy", {}),
                 "inference": record.manifest.get("inference", {})}
                for record in self.service.registry.list()
            ]}
        if path == "/fleet":
            if self.fleet is None:
                return 200, {"enabled": False}
            return 200, {"enabled": True, **self.fleet.as_dict(),
                         "stats": dict(self.fleet_stats)}
        if path == "/alerts":
            if self.alerts is None:
                return 200, {"enabled": False, "alerts": []}
            return 200, {"enabled": True, **self.alerts.as_dict()}
        return 404, {"error": f"unknown path {path!r}"}

    def _serve_metrics(self, conn: _Connection, keep_alive: bool) -> None:
        """``GET /metrics``: Prometheus text, rendered from snapshots."""
        from repro.obs.prometheus import render_server_metrics

        try:
            body = render_server_metrics(self.service, server=self,
                                         tracer=self.tracer).encode("utf-8")
        except Exception as error:  # surfaced, not swallowed
            self._log_request(conn, "GET", "/metrics", 500)
            self._respond(conn, 500, {"error": repr(error)},
                          keep_alive=keep_alive)
            return
        self._log_request(conn, "GET", "/metrics", 200)
        self._respond_body(conn, 200, body, keep_alive=keep_alive,
                           content_type=PROMETHEUS_CONTENT_TYPE)

    # ------------------------------------------------------------------ #
    # tracing the predict path
    # ------------------------------------------------------------------ #
    def _start_predict_trace(self, headers: dict, name: str = "predict"):
        """Open the request's root span, continuing an ``X-Repro-Trace``
        parent when the caller (a fleet peer, or an instrumented client)
        sent one.  Returns ``None`` when tracing is off."""
        if self.tracer is None:
            return None
        attrs = {}
        if self.fleet is not None:
            attrs["replica"] = self.fleet.replica_id
        parent = parse_trace_header(headers.get(TRACE_HEADER.lower()))
        if parent is not None:
            trace_id, parent_id = parent
            return self.tracer.start_trace(name, trace_id=trace_id,
                                           parent_id=parent_id, attrs=attrs)
        return self.tracer.start_trace(name, attrs=attrs)

    def _finish_trace(self, span, status: int) -> None:
        """End the request's root span with its HTTP outcome (idempotent)."""
        if span is None or self.tracer is None:
            return
        span.attrs["http_status"] = int(status)
        self.tracer.end(span,
                        status="ok" if int(status) < 400 else "error")

    def _add_ticket_spans(self, span, ticket, render_start_ns: int,
                          render_end_ns: int) -> None:
        """Reconstruct the queue → batch → compute spans from the monotonic
        timestamps the batcher stamped on the ticket (same clock family as
        ``time.monotonic_ns``), plus the render span measured inline.
        Unset timestamps (a failed or short-circuited batch) drop their
        span rather than fabricating an interval."""
        tracer = self.tracer
        as_ns = (lambda seconds: int(seconds * 1e9))
        tracer.add_span("queue", parent=span,
                        start_ns=as_ns(ticket.submitted_at),
                        end_ns=as_ns(ticket.execute_at))
        tracer.add_span("batch", parent=span,
                        start_ns=as_ns(ticket.execute_at),
                        end_ns=as_ns(ticket.compute_started_at))
        tracer.add_span("compute", parent=span,
                        start_ns=as_ns(ticket.compute_started_at),
                        end_ns=as_ns(ticket.compute_ended_at),
                        attrs={"rows": int(ticket.nodes.size)})
        tracer.add_span("render", parent=span, start_ns=render_start_ns,
                        end_ns=render_end_ns)

    def _trace_echo_headers(self, span) -> dict | None:
        """The response's ``X-Repro-Trace`` echo, so clients (and the CI
        smoke test) can fetch the trace they just created."""
        if span is None:
            return None
        return {TRACE_HEADER: format_trace_header(span)}

    # ------------------------------------------------------------------ #
    # fleet routing (proxy / redirect to the digest's owning replica)
    # ------------------------------------------------------------------ #
    def _maybe_forward(self, conn: _Connection, path: str, headers: dict,
                       body: bytes, keep_alive: bool, span=None) -> bool:
        """Route to the owning peer; False = serve locally.

        Local service is the universal fallback: unparseable bodies and
        unresolvable refs fall through so the local path produces its usual
        400s, forwarded requests (``X-Fleet-Forwarded``) terminate here by
        contract (no proxy loops), and an empty peer list means this
        replica owns the digest — or is the last one standing.
        """
        if self.fleet is None:
            return False
        if headers.get("x-fleet-forwarded"):
            self.fleet_stats["received_forwards"] += 1
            return False
        try:
            ref = json.loads(body or b"{}").get("model")
            if not ref or not isinstance(ref, str):
                return False
            digest = self.service.registry.resolve(ref).digest
            peers = self.fleet.peers_for(digest)
        except Exception:
            return False
        if not peers:
            return False
        if not self.fleet.proxy:
            target = peers[0]
            location = target.base_url + path
            self.fleet_stats["redirected"] += 1
            self._log_request(conn, "POST", path, 307)
            if span is not None:
                span.attrs["redirect"] = target.replica_id
            self._finish_trace(span, 307)
            self._respond(conn, 307,
                          {"redirect": location, "owner": target.replica_id},
                          keep_alive=keep_alive,
                          extra_headers={"Location": location})
            return True
        proxy_span = None
        trace_header = None
        if span is not None:
            proxy_span = self.tracer.start_span(
                "proxy", parent=span,
                attrs={"targets": [target.replica_id for target in peers]})
            trace_header = format_trace_header(proxy_span)
        job = _ProxyJob(peers, path, body, self.fleet.proxy_timeout,
                        trace_header=trace_header)
        conn.pending = {
            "proxy": job, "path": path, "body": body, "keep_alive": keep_alive,
            "deadline": time.monotonic() + self.request_timeout,
            "span": span, "proxy_span": proxy_span,
        }
        self._parked.add(conn)
        job.on_done = self._wake
        self.fleet_stats["proxied"] += 1
        threading.Thread(target=job.run, name="fleet-proxy",
                         daemon=True).start()
        return True

    def _complete_proxy(self, conn: _Connection, entry: dict,
                        now: float) -> None:
        job = entry["proxy"]
        span = entry.get("span")
        proxy_span = entry.get("proxy_span")
        if job.done():
            self._parked.discard(conn)
            conn.pending = None
            if job.failed:
                if proxy_span is not None:
                    proxy_span.attrs["failover"] = True
                    self.tracer.end(proxy_span, status="error")
                # Every routed peer unreachable (dead replica inside its
                # TTL window): any replica can serve any model bitwise, so
                # execute locally rather than failing the request.
                self.fleet_stats["failover_local"] += 1
                self._submit_predict(conn, entry["body"],
                                     entry["keep_alive"], span)
                return
            if proxy_span is not None:
                proxy_span.attrs["target"] = job.target_id
                proxy_span.attrs["http_status"] = int(job.status)
                self.tracer.end(proxy_span)
            self._finish_trace(span, job.status)
            self._log_request(conn, "POST", entry["path"], job.status)
            self._respond_body(conn, job.status, job.resp_body,
                               keep_alive=entry["keep_alive"],
                               extra_headers=self._trace_echo_headers(span))
            if conn.sock in self._connections:
                self._process_input(conn)
        elif now >= entry["deadline"]:
            self._parked.discard(conn)
            conn.pending = None
            if proxy_span is not None:
                self.tracer.end(proxy_span, status="error")
            self._finish_trace(span, 503)
            self._log_request(conn, "POST", entry["path"], 503)
            self._respond(conn, 503,
                          {"error": "fleet proxy timed out"},
                          keep_alive=False)

    # ------------------------------------------------------------------ #
    # live graph mutation (POST /v1/graph/update)
    # ------------------------------------------------------------------ #
    def _submit_graph_update(self, conn: _Connection, headers: dict,
                             body: bytes, keep_alive: bool) -> None:
        """Validate, admit (one update in flight) and park the connection
        while an off-loop thread applies the delta and re-propagates."""
        span = self._start_predict_trace(headers, name="graph_update")
        parse_start = time.monotonic_ns() if span is not None else 0
        try:
            payload = json.loads(body or b"{}")
            kwargs = parse_graph_update_payload(payload)
        except ConfigurationError as error:
            # ConfigurationError IS a ValueError — catch it first so the
            # caller sees the specific validation message, not the generic
            # malformed-JSON one.
            self._finish_trace(span, 400)
            self._log_request(conn, "POST", "/v1/graph/update", 400)
            self._respond(conn, 400, {"error": str(error)},
                          keep_alive=keep_alive)
            return
        except (ValueError, json.JSONDecodeError):
            self._finish_trace(span, 400)
            self._log_request(conn, "POST", "/v1/graph/update", 400)
            self._respond(conn, 400,
                          {"error": "request body must be a JSON object"},
                          keep_alive=keep_alive)
            return
        parse_end = time.monotonic_ns() if span is not None else 0
        active = self._graph_update
        if active is not None and not active.done():
            # Admission control: one epoch advance at a time.  The epoch
            # sequence stays linear and a second writer gets a cheap 429
            # instead of queueing a re-propagation behind the first.
            if span is not None:
                span.attrs["shed"] = True
            self._finish_trace(span, 429)
            self._log_request(conn, "POST", "/v1/graph/update", 429)
            self._respond(conn, 429,
                          {"error": "a graph update is already in flight; "
                                    "retry later"},
                          keep_alive=keep_alive,
                          extra_headers={"Retry-After": "1"})
            return
        if span is not None:
            self.tracer.add_span("parse", parent=span,
                                 start_ns=parse_start, end_ns=parse_end)
        job = _UpdateJob(self.service, kwargs)
        self._graph_update = job
        conn.pending = {
            "graph_update": job, "keep_alive": keep_alive, "span": span,
            # Re-propagation is a real computation on large graphs; give
            # the update more headroom than a predict ticket.
            "deadline": time.monotonic() + max(self.request_timeout, 60.0),
        }
        self._parked.add(conn)
        job.on_done = self._wake
        threading.Thread(target=job.run, name="graph-update",
                         daemon=True).start()

    def _complete_graph_update(self, conn: _Connection, entry: dict,
                               now: float) -> None:
        job = entry["graph_update"]
        span = entry.get("span")
        if job.done():
            self._parked.discard(conn)
            conn.pending = None
            if job.error is not None:
                status, payload = job.status, {"error": job.error}
            else:
                status = 200
                payload = dict(job.result)
                timings = payload.pop("timings_ns", {})
                payload["timings_ms"] = {
                    stage: round((end - start) / 1e6, 3)
                    for stage, (start, end) in timings.items()}
                if span is not None:
                    span.attrs["epoch"] = payload.get("epoch")
                    span.attrs["graph"] = payload.get("graph")
                    for stage in ("apply", "repropagate"):
                        bounds = timings.get(stage)
                        if bounds:
                            self.tracer.add_span(stage, parent=span,
                                                 start_ns=bounds[0],
                                                 end_ns=bounds[1])
            self._finish_trace(span, status)
            self._log_request(conn, "POST", "/v1/graph/update", status)
            self._respond(conn, status, payload,
                          keep_alive=entry["keep_alive"],
                          extra_headers=self._trace_echo_headers(span))
            if conn.sock in self._connections:
                self._process_input(conn)
        elif now >= entry["deadline"]:
            # The connection gives up, the job thread finishes regardless —
            # admission keeps further updates out until it does.
            self._parked.discard(conn)
            conn.pending = None
            self._finish_trace(span, 503)
            self._log_request(conn, "POST", "/v1/graph/update", 503)
            self._respond(conn, 503,
                          {"error": "graph update timed out"},
                          keep_alive=False)

    def _submit_predict(self, conn: _Connection, body: bytes,
                        keep_alive: bool, span=None) -> bool:
        """Validate and submit; returns True when a ticket was parked."""
        parse_start = time.monotonic_ns() if span is not None else 0
        try:
            payload = json.loads(body or b"{}")
        except (ValueError, json.JSONDecodeError):
            self._finish_trace(span, 400)
            self._log_request(conn, "POST", "/v1/predict", 400)
            self._respond(conn, 400, {"error": "request body must be a JSON object"},
                          keep_alive=keep_alive)
            return False
        try:
            request = parse_predict_payload(payload)
            parse_end = time.monotonic_ns() if span is not None else 0
            ticket, record, mode = self.service.submit_batch(
                request.ref, request.nodes, request.mode)
        except OverloadedError as error:
            # Shed-before-queue: the model's queue is at the admission cap,
            # so the request is rejected *before* parking on a ticket — a
            # cheap 429 with a drain-time hint instead of a queued matmul.
            if span is not None:
                span.attrs["shed"] = True
            self._finish_trace(span, 429)
            self._log_request(conn, "POST", "/v1/predict", 429)
            self._respond(conn, 429,
                          {"error": str(error),
                           "retry_after_seconds": error.retry_after},
                          keep_alive=keep_alive,
                          extra_headers={"Retry-After":
                                         str(error.retry_after_header)})
            return False
        except ConfigurationError as error:
            self._finish_trace(span, 400)
            self._log_request(conn, "POST", "/v1/predict", 400)
            self._respond(conn, 400, {"error": str(error)}, keep_alive=keep_alive)
            return False
        except Exception as error:
            self._finish_trace(span, 500)
            self._log_request(conn, "POST", "/v1/predict", 500)
            self._respond(conn, 500, {"error": repr(error)}, keep_alive=keep_alive)
            return False
        if span is not None:
            span.attrs["model"] = record.ref
            span.attrs["nodes"] = len(request.nodes)
            # Session resolution + admission control sit between parse end
            # and the ticket entering its queue (= submitted_at).
            self.tracer.add_span("parse", parent=span,
                                 start_ns=parse_start, end_ns=parse_end)
            self.tracer.add_span("admission", parent=span,
                                 start_ns=parse_end,
                                 end_ns=int(ticket.submitted_at * 1e9))
        conn.pending = {
            "ticket": ticket, "request": request, "record": record,
            "mode": mode, "keep_alive": keep_alive, "span": span,
            "deadline": time.monotonic() + self.request_timeout,
        }
        self._parked.add(conn)
        ticket.on_done = self._wake
        if ticket.done():  # resolved before the hook landed: wake ourselves
            self._wake()
        return True

    def _wake(self) -> None:
        """Poke the self-pipe (called from batcher dispatch threads)."""
        try:
            self._waker_w.send(b"\x00")
        except (BlockingIOError, InterruptedError, OSError):
            pass  # pipe already full (a wakeup is pending) or closing

    def _complete_parked(self, now: float) -> None:
        for conn in list(self._parked):
            entry = conn.pending
            if entry is None:  # connection died while parked
                self._parked.discard(conn)
                continue
            if "proxy" in entry:
                self._complete_proxy(conn, entry, now)
                continue
            if "graph_update" in entry:
                self._complete_graph_update(conn, entry, now)
                continue
            ticket = entry["ticket"]
            span = entry.get("span")
            if ticket.done():
                self._parked.discard(conn)
                conn.pending = None
                body = None
                render_start = time.monotonic_ns() if span is not None else 0
                try:
                    scores = ticket.result(0)
                    # The zero-copy hot path: the response body is rendered
                    # straight out of the ticket's view into the stacked
                    # matmul buffer (no intermediate nested lists, no
                    # second json.dumps walk).
                    status = 200
                    body = format_prediction_body(
                        entry["request"], scores, entry["record"], entry["mode"])
                except ConfigurationError as error:
                    status, payload = 400, {"error": str(error)}
                except Exception as error:
                    status, payload = 500, {"error": repr(error)}
                if span is not None:
                    self._add_ticket_spans(span, ticket, render_start,
                                           time.monotonic_ns())
                    self._finish_trace(span, status)
                self._log_request(conn, "POST", "/v1/predict", status)
                if body is not None:
                    self._respond_body(conn, status, body,
                                       keep_alive=entry["keep_alive"],
                                       extra_headers=self._trace_echo_headers(span))
                else:
                    self._respond(conn, status, payload,
                                  keep_alive=entry["keep_alive"],
                                  extra_headers=self._trace_echo_headers(span))
                if conn.sock in self._connections:
                    self._process_input(conn)
            elif now >= entry["deadline"]:
                self._parked.discard(conn)
                conn.pending = None
                self._finish_trace(span, 503)
                self._log_request(conn, "POST", "/v1/predict", 503)
                self._respond(conn, 503,
                              {"error": "inference request timed out waiting "
                                        "for its batch"},
                              keep_alive=False)

    # ------------------------------------------------------------------ #
    # responses / connection bookkeeping
    # ------------------------------------------------------------------ #
    def _respond(self, conn: _Connection, status: int, payload: dict, *,
                 keep_alive: bool, extra_headers: dict | None = None) -> None:
        self._respond_body(conn, status, _render_body(payload),
                           keep_alive=keep_alive, extra_headers=extra_headers)

    def _respond_body(self, conn: _Connection, status: int, body: bytes, *,
                      keep_alive: bool, extra_headers: dict | None = None,
                      content_type: str = "application/json") -> None:
        """Queue pre-rendered body bytes (the predict hot path hands the
        fused zero-copy body straight in here)."""
        if conn.sock not in self._connections:
            return
        if not keep_alive:
            conn.close_after_write = True
        conn.outbuf += _render_head(status, len(body), keep_alive=keep_alive,
                                    extra_headers=extra_headers,
                                    content_type=content_type) + body
        self._flush_now(conn)

    def _flush_now(self, conn: _Connection) -> None:
        """Opportunistic synchronous send; the selector finishes the rest."""
        try:
            sent = conn.sock.send(conn.outbuf)
            del conn.outbuf[:sent]
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            self._close_connection(conn)
            return
        if not conn.outbuf and conn.close_after_write:
            self._close_connection(conn)
            return
        self._update_interest(conn)

    def _update_interest(self, conn: _Connection) -> None:
        if conn.sock not in self._connections:
            return
        events = selectors.EVENT_READ
        if conn.outbuf:
            events |= selectors.EVENT_WRITE
        self._selector.modify(conn.sock, events, conn)

    def _close_connection(self, conn: _Connection) -> None:
        if self._connections.pop(conn.sock, None) is None:
            return
        self._parked.discard(conn)
        conn.pending = None
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass

    def _sweep_idle(self, now: float) -> None:
        for conn in list(self._connections.values()):
            if conn.pending is None and not conn.outbuf \
                    and now - conn.last_activity > self.idle_timeout:
                self._close_connection(conn)

    def _drain(self) -> None:
        """Graceful close: stop accepting, finish parked tickets and writes."""
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError):
            pass
        deadline = time.monotonic() + self.drain_timeout
        while (self._parked or any(c.outbuf for c in self._connections.values())) \
                and time.monotonic() < deadline:
            self._tick(0.005)

    # ------------------------------------------------------------------ #
    # logging
    # ------------------------------------------------------------------ #
    def _log(self, message: str) -> None:
        if self.log_stream is not None:
            print(f"[serve] {message}", file=self.log_stream, flush=True)

    def _log_request(self, conn: _Connection, method: str, path: str,
                     status: int) -> None:
        self._log(f"{conn.addr[0]} \"{method} {path}\" {status}")


# --------------------------------------------------------------------------- #
# HTTP framing helpers (module-level: pure bytes in, bytes out)
# --------------------------------------------------------------------------- #
_REASONS = {200: "OK", 307: "Temporary Redirect",
            400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 408: "Request Timeout",
            413: "Payload Too Large", 429: "Too Many Requests",
            431: "Request Header Fields Too Large",
            500: "Internal Server Error", 503: "Service Unavailable"}


def _render_body(payload: dict) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def _render_head(status: int, content_length: int, *, keep_alive: bool,
                 extra_headers: dict | None = None,
                 content_type: str = "application/json") -> bytes:
    extra = "".join(f"{name}: {value}\r\n"
                    for name, value in (extra_headers or {}).items())
    return (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Server: gcon-repro-serving\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {content_length}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"{extra}"
        f"\r\n"
    ).encode("latin-1")


def _render(status: int, payload: dict, *, keep_alive: bool) -> bytes:
    body = _render_body(payload)
    return _render_head(status, len(body), keep_alive=keep_alive) + body


def _parse_request(buf: bytearray):
    """Pop one complete request off ``buf``.

    Returns ``None`` while incomplete, else ``(method, path, headers, body,
    keep_alive)``; raises :class:`_BadRequest` on malformed framing.
    """
    head_end = buf.find(b"\r\n\r\n")
    if head_end < 0:
        if len(buf) > MAX_HEADER_BYTES:
            raise _BadRequest(431, "request headers too large")
        return None
    try:
        head = buf[:head_end].decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 decodes anything
        raise _BadRequest(400, "undecodable request head")
    lines = head.split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise _BadRequest(400, f"malformed request line {lines[0]!r}")
    method, target, version = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        name, sep, value = line.partition(":")
        if not sep or not name.strip():
            raise _BadRequest(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise _BadRequest(400, "chunked request bodies are not supported")
    try:
        content_length = int(headers.get("content-length", "0"))
    except ValueError:
        raise _BadRequest(400, "invalid Content-Length") from None
    if content_length < 0:
        raise _BadRequest(400, "invalid Content-Length")
    if content_length > MAX_BODY_BYTES:
        raise _BadRequest(413, "request body too large")
    total = head_end + 4 + content_length
    if len(buf) < total:
        return None
    body = bytes(buf[head_end + 4:total])
    del buf[:total]
    connection = headers.get("connection", "").lower()
    if version == "HTTP/1.0":
        keep_alive = connection == "keep-alive"
    else:
        keep_alive = connection != "close"
    path = target.split("?", 1)[0]
    return method, path, headers, body, keep_alive


def serve_http(service: InferenceService, host: str = "127.0.0.1",
               port: int = 8151, *, log_stream=None,
               max_connections: int = 512,
               stats_interval: float | None = None,
               fleet=None, tracer: Tracer | None = None,
               trace: bool = True) -> SelectorHTTPServer:
    """Bind a :class:`SelectorHTTPServer`; the caller runs ``serve_forever()``.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.server_address[1]`` — the tests do).  The service's router is
    started so every model's queue coalesces on its own dispatch thread.
    ``fleet`` (a :class:`~repro.serving.fleet.FleetRouter`) turns on
    digest-sharded routing and the ``/fleet`` endpoint.  Tracing is on by
    default (``trace=False`` disables it; an explicit ``tracer`` wins).
    """
    service.start()
    if tracer is None and trace:
        tracer = Tracer()
    return SelectorHTTPServer((host, port), service,
                              max_connections=max_connections,
                              stats_interval=stats_interval,
                              log_stream=log_stream, fleet=fleet,
                              tracer=tracer)
