"""The serving data plane: registry, per-model batching and the HTTP API.

Once Θ_priv is released, inference is pure post-processing — no privacy
budget is spent answering queries — so serving is an ordinary data plane:

* :mod:`repro.serving.registry` — a content-addressed, filesystem-backed
  model registry (`publish` / `resolve` / `verify`), turning sweep artefacts
  or live :class:`~repro.core.model.GCON` instances into versioned bundles;
* :mod:`repro.serving.batcher` — a micro-batching request queue that
  coalesces concurrent queries into one stacked matmul;
* :mod:`repro.serving.router` — one batch queue **per model version** (own
  row budget, own deadline, own dispatch thread), so mixed traffic never
  head-of-line blocks across models;
* :mod:`repro.serving.metrics` — per-model latency histograms
  (fixed log-spaced buckets, p50/p95/p99), batch-size and queue-depth
  distributions — the ``/stats`` payload;
* :mod:`repro.serving.service` — the :class:`InferenceService` control room
  over an LRU of propagated-feature sessions;
* :mod:`repro.serving.httpd` — a single-threaded ``selectors``-based HTTP
  frontend (keep-alive, bounded connections, graceful drain) that parks
  connections on batch tickets instead of blocking a thread per request;
* :mod:`repro.serving.slo` — the feedback half: an AIMD
  :class:`SloController` that tunes each model's batch budgets to hold a
  target p99 against the live histograms, and the
  :class:`OverloadedError` admission-control signal (queue-depth load
  shedding → HTTP 429 with ``Retry-After``);
* :mod:`repro.serving.hashring` + :mod:`repro.serving.fleet` — the
  replica-sharded fleet: membership via heartbeat leases on a shared
  directory, a consistent-hash ring routing each model digest to the
  replica whose session cache is hot, and a registry watcher that
  pre-warms a flipped ``@latest`` before retiring the old version.
"""

from repro.serving.batcher import BatchStats, MicroBatcher
from repro.serving.fleet import (
    FleetMember,
    FleetRouter,
    FleetStatus,
    FleetView,
    RegistryWatcher,
    Replica,
    default_replica_id,
    watch_models,
)
from repro.serving.graphstore import EdgeDelta, GraphStore
from repro.serving.hashring import HashRing
from repro.serving.httpd import SelectorHTTPServer, serve_http
from repro.serving.metrics import Histogram, ModelMetrics, ServingMetrics
from repro.serving.registry import ModelRecord, ModelRegistry, parse_model_ref
from repro.serving.router import ModelRouter
from repro.serving.service import (
    InferenceService,
    PredictRequest,
    format_prediction,
    format_prediction_body,
    parse_graph_update_payload,
    parse_predict_payload,
    render_scores_json,
)
from repro.serving.slo import OverloadedError, SloController

__all__ = [
    "BatchStats",
    "EdgeDelta",
    "FleetMember",
    "FleetRouter",
    "FleetStatus",
    "FleetView",
    "GraphStore",
    "HashRing",
    "Histogram",
    "InferenceService",
    "MicroBatcher",
    "ModelMetrics",
    "ModelRecord",
    "ModelRegistry",
    "ModelRouter",
    "OverloadedError",
    "PredictRequest",
    "RegistryWatcher",
    "Replica",
    "SelectorHTTPServer",
    "ServingMetrics",
    "SloController",
    "default_replica_id",
    "format_prediction",
    "format_prediction_body",
    "parse_graph_update_payload",
    "parse_model_ref",
    "parse_predict_payload",
    "render_scores_json",
    "serve_http",
    "watch_models",
]
