"""The serving data plane: model registry, micro-batching and the HTTP API.

Once Θ_priv is released, inference is pure post-processing — no privacy
budget is spent answering queries — so serving is an ordinary data plane:

* :mod:`repro.serving.registry` — a content-addressed, filesystem-backed
  model registry (`publish` / `resolve` / `verify`), turning sweep artefacts
  or live :class:`~repro.core.model.GCON` instances into versioned bundles;
* :mod:`repro.serving.batcher` — a micro-batching request queue that
  coalesces single-node queries into one stacked matmul per model, over an
  LRU cache of propagated features;
* :mod:`repro.serving.service` — the threaded :class:`InferenceService`
  front end plus a dependency-free ``http.server`` JSON API.
"""

from repro.serving.batcher import BatchStats, MicroBatcher
from repro.serving.registry import ModelRecord, ModelRegistry, parse_model_ref
from repro.serving.service import InferenceService, serve_http

__all__ = [
    "BatchStats",
    "InferenceService",
    "MicroBatcher",
    "ModelRecord",
    "ModelRegistry",
    "parse_model_ref",
    "serve_http",
]
