"""Serving observability: per-model latency histograms and distributions.

The data plane's only promise is bitwise-identical scores; everything else a
production server is judged on is *latency shape*.  This module keeps that
shape observable without touching the hot path beyond a few integer bumps:

* :class:`Histogram` — fixed, pre-computed buckets (log-spaced for seconds,
  power-of-two for sizes), counts only.  Percentiles are read back with
  linear interpolation inside the winning bucket, the standard
  Prometheus-style estimate: cheap, bounded error, and mergeable across
  models or replicas because buckets never depend on the data.
* :class:`ModelMetrics` — one model's request-latency histogram plus
  batch-size (tickets and rows per matmul), queue-depth distributions and
  failure count.
* :class:`ServingMetrics` — the per-model registry the router wires into
  every :class:`~repro.serving.batcher.MicroBatcher` as its ``observer``;
  ``as_dict()`` is what ``/stats`` and the ``--stats-interval`` log line
  serialise.

Everything is thread-safe under one lock per :class:`ServingMetrics`; the
observer callbacks run on batcher dispatch threads.
"""

from __future__ import annotations

import threading

# Request latencies: 40 log-spaced buckets, 10 µs .. ~84 s (factor 1.5).
# Fixed at import time so histograms from different models/replicas merge.
LATENCY_BUCKETS: tuple[float, ...] = tuple(
    1e-5 * (1.5 ** i) for i in range(40))
# Sizes (rows, tickets, queue depths): powers of two up to 64 Ki.
SIZE_BUCKETS: tuple[float, ...] = tuple(float(2 ** i) for i in range(17))

DEFAULT_QUANTILES = (0.5, 0.95, 0.99)


def bucket_quantile(bounds, counts, q: float, *,
                    overflow_value: float | None = None) -> float:
    """Interpolated ``q``-quantile of a raw bucket-count vector.

    The standalone sibling of :meth:`Histogram.quantile`, usable on a
    *difference* of two counts snapshots — which is how the SLO controller
    reads a windowed p99 (latency shape since its last tick) out of
    histograms that only ever accumulate.  ``overflow_value`` is reported
    when the target rank lands in the overflow bucket (callers pass the
    histogram's observed max); returns 0.0 when the window is empty.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = sum(counts)
    if total == 0:
        return 0.0
    if q == 0.0:
        # Well-defined floor: the lower edge of the first occupied bucket
        # (a counts vector carries no observed minimum to report).
        for index, bucket_count in enumerate(counts):
            if bucket_count:
                return bounds[index - 1] if 0 < index <= len(bounds) else 0.0
        return 0.0
    rank = q * total
    seen = 0
    for index, bucket_count in enumerate(counts):
        if bucket_count == 0:
            continue
        if seen + bucket_count < rank:
            seen += bucket_count
            continue
        if index >= len(bounds):  # overflow: no upper edge to lerp toward
            break
        lower = bounds[index - 1] if index > 0 else 0.0
        upper = bounds[index]
        return lower + (upper - lower) * ((rank - seen) / bucket_count)
    return overflow_value if overflow_value is not None else float(bounds[-1])


class Histogram:
    """A fixed-bucket histogram: observe values, read interpolated quantiles.

    ``bounds`` are inclusive upper bucket edges, strictly increasing; one
    implicit overflow bucket catches everything above the last edge.  Not
    thread-safe on its own — the owning :class:`ServingMetrics` locks.
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds=LATENCY_BUCKETS):
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        self.counts = [0] * (len(self.bounds) + 1)  # +1: overflow bucket
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[self._bucket(value)] += 1
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def _bucket(self, value: float) -> int:
        lo, hi = 0, len(self.bounds)  # hi == overflow
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def merge(self, counts, *, total: float = 0.0) -> "Histogram":
        """Fold a raw bucket-count vector into this histogram.

        ``counts`` must have one entry per bucket — ``len(bounds) + 1``
        including the overflow bucket, or ``len(bounds)`` when the source
        had nothing above the last edge.  This is how the fleet aggregator
        combines replicas: the merge is exact because every replica buckets
        into the same fixed bounds.  The observed extrema are widened to
        the merged data's bucket *edges* (the true min/max did not travel),
        keeping :meth:`quantile`'s clamping sound after a merge.
        """
        counts = [int(value) for value in counts]
        if len(counts) == len(self.bounds):
            counts.append(0)
        if len(counts) != len(self.bounds) + 1:
            raise ValueError(
                f"counts must have {len(self.bounds) + 1} buckets "
                f"(or {len(self.bounds)} without overflow), got {len(counts)}")
        if any(value < 0 for value in counts):
            raise ValueError("bucket counts must be non-negative")
        merged = sum(counts)
        if merged == 0:
            return self
        for index, value in enumerate(counts):
            self.counts[index] += value
        self.count += merged
        self.total += float(total)
        first = next(i for i, value in enumerate(counts) if value)
        last = next(i for i in range(len(counts) - 1, -1, -1) if counts[i])
        self.min = min(self.min,
                       self.bounds[first - 1] if first > 0 else 0.0)
        self.max = max(self.max, self.bounds[min(last, len(self.bounds) - 1)])
        return self

    def snapshot(self) -> dict:
        """Raw state for the Prometheus renderer: bounds, a counts *copy*,
        sum and count (callers copy under their own lock)."""
        return {"bounds": self.bounds, "counts": tuple(self.counts),
                "sum": self.total, "count": self.count}

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0 <= q <= 1) from bucket counts.

        Linear interpolation inside the bucket that crosses the target rank;
        the overflow bucket reports the observed maximum (there is no upper
        edge to interpolate toward).  The edges are exact, not interpolation
        artifacts: ``q=0.0`` is the observed minimum, ``q=1.0`` the observed
        maximum, and every quantile of an empty histogram is 0.0.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count < rank:
                seen += bucket_count
                continue
            if index >= len(self.bounds):  # overflow: no edge to lerp toward
                return self.max
            lower = self.bounds[index - 1] if index > 0 else 0.0
            upper = self.bounds[index]
            fraction = (rank - seen) / bucket_count
            estimate = lower + (upper - lower) * fraction
            # Never report outside what was actually observed.
            return min(max(estimate, self.min), self.max)
        return self.max

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self, quantiles=DEFAULT_QUANTILES, *, scale: float = 1.0,
                unit: str = "") -> dict:
        """Serialise for ``/stats``: count/mean/min/max, the requested
        quantiles and the non-empty buckets (``le`` upper edge -> count)."""
        suffix = f"_{unit}" if unit else ""
        out = {
            "count": self.count,
            f"mean{suffix}": self.mean * scale,
            f"min{suffix}": (self.min if self.count else 0.0) * scale,
            f"max{suffix}": self.max * scale,
        }
        for q in quantiles:
            out[f"p{q * 100:g}".replace(".", "_") + suffix] = \
                self.quantile(q) * scale
        out["buckets"] = {
            ("+Inf" if index >= len(self.bounds)
             else f"{self.bounds[index] * scale:g}"): count
            for index, count in enumerate(self.counts) if count}
        return out


class ModelMetrics:
    """Latency/size/depth histograms for one served model."""

    __slots__ = ("latency", "batch_tickets", "batch_rows", "queue_depth",
                 "failures")

    def __init__(self):
        self.latency = Histogram(LATENCY_BUCKETS)
        self.batch_tickets = Histogram(SIZE_BUCKETS)
        self.batch_rows = Histogram(SIZE_BUCKETS)
        self.queue_depth = Histogram(SIZE_BUCKETS)
        self.failures = 0

    def as_dict(self) -> dict:
        return {
            "latency_ms": self.latency.as_dict(scale=1e3),
            "batch_tickets": self.batch_tickets.as_dict(),
            "batch_rows": self.batch_rows.as_dict(),
            "queue_depth": self.queue_depth.as_dict(),
            "failed_requests": self.failures,
        }


class ServingMetrics:
    """Per-model metrics registry; the batcher observer the router installs.

    Labels are whatever the router keys queues by (model digest + mode).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._models: dict[str, ModelMetrics] = {}
        # Series published *into* the registry by other subsystems (the SLO
        # controller's error-budget accounting): insertion-ordered
        # {name: (kind, help, {label_items: value})}.
        self._external: dict[str, tuple] = {}

    def model(self, label: str) -> ModelMetrics:
        with self._lock:
            metrics = self._models.get(label)
            if metrics is None:
                metrics = self._models[label] = ModelMetrics()
            return metrics

    # -- the MicroBatcher observer protocol ----------------------------- #
    def observe_batch(self, label: str, tickets, completed_at: float, *,
                      failed: bool = False) -> None:
        metrics = self.model(label)
        with self._lock:
            if failed:
                metrics.failures += len(tickets)
                return
            metrics.batch_tickets.observe(len(tickets))
            metrics.batch_rows.observe(
                sum(int(ticket.nodes.size) for ticket in tickets))
            for ticket in tickets:
                metrics.latency.observe(
                    max(0.0, completed_at - ticket.submitted_at))

    def observe_queue_depth(self, label: str, depth: int) -> None:
        metrics = self.model(label)
        with self._lock:
            metrics.queue_depth.observe(depth)

    # -- externally published series (SLO error budgets) ----------------- #
    def set_series(self, name: str, value: float, *, kind: str = "gauge",
                   labels: dict | None = None, help_text: str = "") -> None:
        """Publish (or update) one sample of an externally owned series so
        it rides the ``/metrics`` page; ``kind`` is ``gauge`` or ``counter``
        (the caller owns monotonicity for counters)."""
        if kind not in ("gauge", "counter"):
            raise ValueError(f"kind must be gauge or counter, got {kind!r}")
        key = tuple(sorted((labels or {}).items()))
        with self._lock:
            entry = self._external.get(name)
            if entry is None:
                entry = self._external[name] = (kind, help_text, {})
            entry[2][key] = float(value)

    def external_families(self) -> list[tuple]:
        """``[(name, kind, help, [(labels_dict, value), ...]), ...]`` in
        publish order, copied under the lock — what the Prometheus renderer
        appends after the built-in families."""
        with self._lock:
            return [(name, kind, help_text,
                     [(dict(key), value) for key, value in sorted(
                         series.items())])
                    for name, (kind, help_text, series)
                    in self._external.items()]

    # -- reading -------------------------------------------------------- #
    def latency_snapshot(self) -> dict:
        """Per model: ``(latency bucket counts, observed max, total count)``
        at this instant, copied under the lock.

        Two snapshots subtract into a *window*: the controller keeps the
        previous one and feeds the count difference to
        :func:`bucket_quantile` for an interval p99, so one overloaded
        minute an hour ago can never dominate the current control decision.
        """
        with self._lock:
            return {label: (tuple(metrics.latency.counts),
                            metrics.latency.max, metrics.latency.count)
                    for label, metrics in self._models.items()}

    def export(self) -> dict:
        """Per model: raw histogram snapshots plus the failure counter,
        copied under the lock — what the Prometheus renderer serialises
        (cumulative buckets are computed outside the lock)."""
        with self._lock:
            return {label: {
                "latency": metrics.latency.snapshot(),
                "batch_tickets": metrics.batch_tickets.snapshot(),
                "batch_rows": metrics.batch_rows.snapshot(),
                "queue_depth": metrics.queue_depth.snapshot(),
                "failures": metrics.failures,
            } for label, metrics in sorted(self._models.items())}

    def labels(self) -> list[str]:
        with self._lock:
            return sorted(self._models)

    def as_dict(self) -> dict:
        with self._lock:
            return {label: metrics.as_dict()
                    for label, metrics in sorted(self._models.items())}

    def summary_line(self) -> str:
        """One human line per model — the ``--stats-interval`` log format."""
        parts = []
        with self._lock:
            for label, metrics in sorted(self._models.items()):
                latency = metrics.latency
                parts.append(
                    f"{label}: n={latency.count} "
                    f"p50={latency.quantile(0.5) * 1e3:.2f}ms "
                    f"p95={latency.quantile(0.95) * 1e3:.2f}ms "
                    f"p99={latency.quantile(0.99) * 1e3:.2f}ms")
        return " | ".join(parts) if parts else "no traffic yet"
