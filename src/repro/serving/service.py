"""The inference front end: a threaded service plus a stdlib HTTP JSON API.

:class:`InferenceService` is the in-process API — ``predict`` /
``predict_proba`` / ``top_k`` / ``health`` / ``stats`` — over models
resolved from a :class:`~repro.serving.registry.ModelRegistry`.  Per served
model it keeps a *session*: the released Θ_priv plus the aggregated feature
matrix ``F`` of the serving graph (encoder forward pass, L2 normalisation,
Eq. 16/Eq. 11 propagation — the expensive, query-independent half of
Algorithm 4), held in an LRU so repeated queries skip propagation entirely.
Queries then flow through the :class:`~repro.serving.batcher.MicroBatcher`,
which coalesces them into one row-selected matmul per model — bitwise
identical to offline :func:`~repro.core.inference.private_inference_scores`
/ :func:`~repro.core.inference.public_inference_scores` on the same bundle.

:func:`serve_http` wraps the service in a ``http.server``-based JSON API —
zero dependencies beyond the standard library — with a threading server so
concurrent requests actually coalesce in the batcher:

* ``GET  /healthz``      liveness + loaded models
* ``GET  /stats``        batcher/cache/request counters
* ``GET  /models``       registry listing
* ``POST /v1/predict``   ``{"model": "name@latest", "nodes": [..],
  "mode"?: "private"|"public", "top_k"?: int, "proba"?: bool}``

The graph a model is served against defaults to the dataset preset recorded
in its manifest at publish time (name, scale, seed); pass ``graph=`` or a
``graph_loader`` to serve against a different node universe.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from repro.core.inference import INFERENCE_MODES, batched_inference_scores
from repro.exceptions import ConfigurationError
from repro.serving.batcher import MicroBatcher
from repro.serving.registry import ModelRegistry
from repro.utils.lru import LRUDict


def softmax_scores(scores: np.ndarray) -> np.ndarray:
    """Row-wise softmax over raw class scores (shared by API and HTTP layer)."""
    shifted = scores - scores.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def top_k_entries(scores: np.ndarray, k: int) -> list:
    """Per row: the ``k`` best classes with their scores, best first."""
    k = max(1, min(int(k), scores.shape[1]))
    order = np.argsort(-scores, axis=1)[:, :k]
    return [
        [{"label": int(label), "score": float(row_scores[label])}
         for label in row_order]
        for row_order, row_scores in zip(order, scores)
    ]


def _default_graph_loader(manifest: dict):
    """Rebuild the serving graph from the manifest's training provenance."""
    from repro.graphs.datasets import load_dataset

    training = manifest.get("training", {})
    dataset = training.get("dataset")
    if not dataset:
        raise ConfigurationError(
            "the model manifest records no training dataset; pass an explicit "
            "graph (or graph_loader) to InferenceService")
    return load_dataset(dataset, scale=float(training.get("scale", 1.0)),
                        seed=int(training.get("graph_seed", 0)))


class _ModelSession:
    """One served (model version, graph, mode): theta + cached features."""

    __slots__ = ("record", "theta", "features", "num_classes")

    def __init__(self, record, theta: np.ndarray, features: np.ndarray):
        self.record = record
        self.theta = theta
        self.features = features
        self.num_classes = theta.shape[1]


class InferenceService:
    """Batched inference over registry models (the serving control room).

    Thread-safe: sessions are built under a lock, scoring happens on the
    batcher's dispatch thread, counters are locked.  ``start()`` launches the
    micro-batching thread; without it, each call executes its batch inline
    (still through the stacked-matmul path), which is what single-threaded
    library use and the deterministic tests rely on.
    """

    def __init__(self, registry: ModelRegistry | str, *, graph=None,
                 graph_loader=None, max_batch_size: int = 64,
                 max_latency: float = 0.005, max_sessions: int = 8):
        self.registry = (registry if isinstance(registry, ModelRegistry)
                         else ModelRegistry(registry))
        self._graph = graph
        self._graph_loader = graph_loader or _default_graph_loader
        self._sessions = LRUDict(max_entries=max_sessions)
        self._lock = threading.Lock()
        self.batcher = MicroBatcher(self._score_rows,
                                    max_batch_size=max_batch_size,
                                    max_latency=max_latency)
        self.cache_stats = {"feature_hits": 0, "feature_misses": 0}
        self.started_at = time.time()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "InferenceService":
        self.batcher.start()
        return self

    def close(self) -> None:
        self.batcher.close()

    def __enter__(self) -> "InferenceService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # sessions (model digest, mode) -> theta + cached features
    # ------------------------------------------------------------------ #
    def _session(self, ref: str, mode: str | None) -> tuple[tuple, _ModelSession]:
        # The registry resolve runs per call on purpose: "@latest" must pick
        # up a concurrent publish.  The expensive part (loading the bundle,
        # building the graph, propagation) is cached by content digest.
        record = self.registry.resolve(ref)
        mode = mode or record.inference_mode
        if mode not in INFERENCE_MODES:
            raise ConfigurationError(
                f"mode must be one of {INFERENCE_MODES}, got {mode!r}")
        key = (record.digest, mode)
        with self._lock:
            session = self._sessions.get_or_none(key)
            if session is not None:
                self.cache_stats["feature_hits"] += 1
                return key, session
            self.cache_stats["feature_misses"] += 1
        # Build outside the lock: a cold load (npz + graph + encoder forward
        # + propagation) must not stall the dispatch thread or hot models.
        # Two racing builders compute bitwise-identical sessions; last put
        # wins and the loser's work is garbage-collected.
        model, record = self.registry.load(record.ref)
        graph = self._graph if self._graph is not None \
            else self._graph_loader(record.manifest)
        features = model.inference_features(graph, mode=mode)
        session = _ModelSession(record=record, theta=model.theta_,
                                features=features)
        with self._lock:
            self._sessions.put(key, session)
        return key, session

    def _score_rows(self, session_key: tuple, nodes: np.ndarray) -> np.ndarray:
        """The batcher's compute hook: one stacked matmul over cached rows."""
        with self._lock:
            session = self._sessions.get_or_none(session_key)
        if session is None:  # evicted between submit and dispatch; rebuild
            digest, mode = session_key
            session = self._rebuild(digest, mode)
        self._validate_nodes(nodes, session.features.shape[0])
        if nodes.size == 1:
            # A one-row product may dispatch to a GEMV kernel whose last bit
            # can differ from the GEMM the offline full-matrix path uses; pad
            # to two rows so every served answer — even an uncoalesced
            # singleton — is bitwise identical to offline inference.
            padded = session.features[[int(nodes[0]), int(nodes[0])]]
            return batched_inference_scores(padded, session.theta)[:1]
        return batched_inference_scores(session.features[nodes], session.theta)

    def _rebuild(self, digest: str, mode: str) -> _ModelSession:
        for record in self.registry.list():
            if record.digest == digest:
                _key, session = self._session(record.ref, mode)
                return session
        raise ConfigurationError(f"model version {digest[:12]} left the registry")

    @staticmethod
    def _validate_nodes(nodes: np.ndarray, num_nodes: int) -> None:
        if nodes.size == 0:
            raise ConfigurationError("at least one node index is required")
        if nodes.min() < 0 or nodes.max() >= num_nodes:
            raise ConfigurationError(
                f"node indices must be in [0, {num_nodes}), got "
                f"[{int(nodes.min())}, {int(nodes.max())}]")

    # ------------------------------------------------------------------ #
    # the query API
    # ------------------------------------------------------------------ #
    def predict_batch(self, ref: str, nodes, mode: str | None = None,
                      timeout: float | None = 30.0):
        """Scores plus the exact version and mode that produced them.

        Returns ``(scores, record, mode)``.  Node indices are validated
        *before* the request enters the batcher, so one caller's bad index
        can never fail the strangers coalesced into the same micro-batch.
        """
        key, session = self._session(ref, mode)
        nodes = np.atleast_1d(np.asarray(nodes, dtype=np.int64))
        self._validate_nodes(nodes, session.features.shape[0])
        scores = self.batcher.predict_scores(key, nodes, timeout=timeout)
        return scores, session.record, key[1]

    def predict_scores(self, ref: str, nodes, mode: str | None = None,
                       timeout: float | None = 30.0) -> np.ndarray:
        """Raw class scores for ``nodes`` — the batched Algorithm-4 data plane."""
        scores, _record, _mode = self.predict_batch(ref, nodes, mode,
                                                    timeout=timeout)
        return scores

    def predict(self, ref: str, nodes, mode: str | None = None) -> np.ndarray:
        """Predicted class labels for ``nodes``."""
        return np.argmax(self.predict_scores(ref, nodes, mode), axis=1)

    def predict_proba(self, ref: str, nodes, mode: str | None = None) -> np.ndarray:
        """Softmax-normalised class probabilities (pure post-processing)."""
        return softmax_scores(self.predict_scores(ref, nodes, mode))

    def top_k(self, ref: str, nodes, k: int = 3, mode: str | None = None):
        """Per node: the ``k`` best classes with their scores, best first."""
        return top_k_entries(self.predict_scores(ref, nodes, mode), k)

    # ------------------------------------------------------------------ #
    # health / stats
    # ------------------------------------------------------------------ #
    def health(self) -> dict:
        with self._lock:
            loaded = sorted({session.record.ref for session in self._sessions.values()})
        return {
            "status": "ok",
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "models_loaded": loaded,
            "registry": str(self.registry.root),
        }

    def stats(self) -> dict:
        with self._lock:
            cache = dict(self.cache_stats, sessions=len(self._sessions))
        return {
            "batcher": self.batcher.stats.as_dict(),
            "feature_cache": cache,
            "max_batch_size": self.batcher.max_batch_size,
            "max_latency_seconds": self.batcher.max_latency,
        }


# --------------------------------------------------------------------------- #
# the HTTP layer (stdlib only)
# --------------------------------------------------------------------------- #
class _Handler(BaseHTTPRequestHandler):
    """JSON over HTTP/1.1; the service instance hangs off the server."""

    protocol_version = "HTTP/1.1"
    server_version = "gcon-repro-serving"

    # -- plumbing ------------------------------------------------------- #
    @property
    def service(self) -> InferenceService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - BaseHTTPRequestHandler API
        stream = getattr(self.server, "log_stream", None)
        if stream is not None:
            print(f"[serve] {self.address_string()} {format % args}",
                  file=stream, flush=True)

    def _reply(self, status: int, payload: dict) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._reply(status, {"error": message})

    # -- routes --------------------------------------------------------- #
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path in ("/healthz", "/health"):
            self._reply(200, self.service.health())
        elif self.path == "/stats":
            self._reply(200, self.service.stats())
        elif self.path == "/models":
            records = self.service.registry.list()
            self._reply(200, {"models": [
                {"ref": record.ref, "name": record.name, "digest": record.digest,
                 "privacy": record.manifest.get("privacy", {}),
                 "inference": record.manifest.get("inference", {})}
                for record in records
            ]})
        else:
            self._error(404, f"unknown path {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path not in ("/v1/predict", "/predict"):
            self._error(404, f"unknown path {self.path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError):
            self._error(400, "request body must be a JSON object")
            return
        if not isinstance(payload, dict):
            self._error(400, "request body must be a JSON object")
            return
        try:
            self._reply(200, self._predict(payload))
        except ConfigurationError as error:
            self._error(400, str(error))
        except TimeoutError as error:
            self._error(503, str(error))
        except Exception as error:  # surfaced, not swallowed: 500 + message
            self._error(500, repr(error))

    def _predict(self, payload: dict) -> dict:
        ref = payload.get("model")
        nodes = payload.get("nodes")
        if not ref or not isinstance(ref, str):
            raise ConfigurationError("'model' (e.g. 'name@latest') is required")
        if not isinstance(nodes, list) or not nodes \
                or not all(isinstance(node, int) and not isinstance(node, bool)
                           for node in nodes):
            raise ConfigurationError("'nodes' must be a non-empty list of integers")
        # One resolve, shared with the scoring path: the response metadata
        # names exactly the version that produced the scores, even if a
        # concurrent publish advances "@latest" mid-request.
        scores, record, mode = self.service.predict_batch(
            ref, nodes, payload.get("mode"))
        response = {
            "model": record.ref,
            "mode": mode,
            "nodes": nodes,
            "labels": [int(label) for label in np.argmax(scores, axis=1)],
            "scores": [[float(value) for value in row] for row in scores],
        }
        if payload.get("proba"):
            proba = softmax_scores(scores)
            response["proba"] = [[float(value) for value in row] for row in proba]
        top_k = payload.get("top_k")
        if top_k is not None:
            if not isinstance(top_k, int) or top_k < 1:
                raise ConfigurationError("'top_k' must be a positive integer")
            response["top_k"] = top_k_entries(scores, top_k)
        return response


class ServingServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`InferenceService`."""

    daemon_threads = True

    def __init__(self, address, service: InferenceService, log_stream=None):
        super().__init__(address, _Handler)
        self.service = service
        self.log_stream = log_stream


def serve_http(service: InferenceService, host: str = "127.0.0.1",
               port: int = 8151, *, log_stream=None) -> ServingServer:
    """Bind a :class:`ServingServer`; the caller runs ``serve_forever()``.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.server_address[1]`` — the tests do).  The service's batcher is
    started so concurrent HTTP requests coalesce.
    """
    service.start()
    return ServingServer((host, port), service, log_stream=log_stream)
