"""The inference control room: sessions, per-model routing, the JSON API.

:class:`InferenceService` is the in-process API — ``predict`` /
``predict_proba`` / ``top_k`` / ``health`` / ``stats`` — over models
resolved from a :class:`~repro.serving.registry.ModelRegistry`.  Per served
model it keeps a *session*: the released Θ_priv plus the aggregated feature
matrix ``F`` of the serving graph (encoder forward pass, L2 normalisation,
Eq. 16/Eq. 11 propagation — the expensive, query-independent half of
Algorithm 4), held in an LRU so repeated queries skip propagation entirely.
Queries then flow through the :class:`~repro.serving.router.ModelRouter`:
**each model version gets its own micro-batch queue** (own row budget, own
deadline, own dispatch thread), so one model's burst can never head-of-line
block another's tickets, and every answer stays bitwise identical to offline
:func:`~repro.core.inference.private_inference_scores` /
:func:`~repro.core.inference.public_inference_scores` on the same bundle.

The serving graph is **versioned**: each graph lives in a
:class:`~repro.serving.graphstore.GraphStore` as a sequence of epochs, and
sessions are keyed by ``(model digest, graph epoch, mode)``.  A request pins
the epoch current at submit time — a concurrent ``apply_graph_update`` never
mixes old and new features into one answer — and sessions for a new epoch
are rebuilt *incrementally* via
:func:`~repro.core.propagation.incremental_inference_features`: only rows
inside the propagation radius of the touched edges are recomputed, every
other row is reused bitwise from the previous epoch.

The HTTP frontend lives in :mod:`repro.serving.httpd` (a single-threaded
``selectors`` loop; ``serve_http`` is re-exported from :mod:`repro.serving`):

* ``GET  /healthz``      liveness + loaded models + graph epochs
* ``GET  /stats``        per-model latency histograms (p50/p95/p99),
  batch-size and queue-depth distributions, batcher/cache counters
* ``GET  /models``       registry listing
* ``GET  /v1/graph/status``  per-graph epoch, digest and delta-log summary
* ``POST /v1/predict``   ``{"model": "name@latest", "nodes": [..],
  "mode"?: "private"|"public", "top_k"?: int, "proba"?: bool}``
* ``POST /v1/graph/update``  ``{"insert": [[u, v], ..], "delete": [..],
  "sample_insert"?: int, "sample_delete"?: int, "seed"?: int}``

This module also owns the transport-independent halves of that API:
:func:`parse_predict_payload` / :func:`parse_graph_update_payload` (request
validation) and :func:`format_prediction` (response shaping), so the
frontend stays pure plumbing.

The graph a model is served against defaults to the dataset preset recorded
in its manifest at publish time (name, scale, seed); pass ``graph=`` or a
``graph_loader`` to serve against a different node universe.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.inference import (INFERENCE_MODES, batched_inference_scores,
                                  inference_features)
from repro.core.propagation import (PropagationCache,
                                    incremental_inference_features)
from repro.exceptions import ConfigurationError
from repro.obs.process import process_stats
from repro.serving.graphstore import EdgeDelta, GraphStore
from repro.serving.metrics import ServingMetrics
from repro.serving.registry import ModelRegistry
from repro.serving.router import ModelRouter
from repro.serving.slo import OverloadedError, estimate_drain_seconds
from repro.utils.lru import LRUDict
from repro.utils.math import row_normalize_l2

# Fault injection for operational drills (the CI alerts-smoke latency
# spike): when this env var names a file, every batch sleeps the number of
# milliseconds the file currently holds before computing.  A *file* rather
# than a value so the delay can be raised and cleared while the server
# runs; unset (the default) costs the hot path one dict lookup.  Latency
# only — scores are untouched in every configuration.
FAULT_DELAY_FILE_ENV = "REPRO_FAULT_COMPUTE_DELAY_MS_FILE"


def _fault_compute_delay() -> float:
    path = os.environ.get(FAULT_DELAY_FILE_ENV)
    if not path:
        return 0.0
    try:
        text = Path(path).read_text(encoding="utf-8").strip()
        return max(0.0, float(text) / 1e3) if text else 0.0
    except (OSError, ValueError):
        return 0.0


def softmax_scores(scores: np.ndarray) -> np.ndarray:
    """Row-wise softmax over raw class scores (shared by API and HTTP layer)."""
    shifted = scores - scores.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def top_k_entries(scores: np.ndarray, k: int) -> list:
    """Per row: the ``k`` best classes with their scores, best first."""
    k = max(1, min(int(k), scores.shape[1]))
    order = np.argsort(-scores, axis=1)[:, :k]
    return [
        [{"label": int(label), "score": float(row_scores[label])}
         for label in row_order]
        for row_order, row_scores in zip(order, scores)
    ]


def _default_graph_loader(manifest: dict):
    """Rebuild the serving graph from the manifest's training provenance."""
    from repro.graphs.datasets import load_dataset

    training = manifest.get("training", {})
    dataset = training.get("dataset")
    if not dataset:
        raise ConfigurationError(
            "the model manifest records no training dataset; pass an explicit "
            "graph (or graph_loader) to InferenceService")
    return load_dataset(dataset, scale=float(training.get("scale", 1.0)),
                        seed=int(training.get("graph_seed", 0)))


def _store_key_for(manifest: dict) -> str:
    """Stable store key for a manifest's training provenance."""
    training = (manifest or {}).get("training", {})
    dataset = training.get("dataset")
    if not dataset:
        return "default"
    return (f"{dataset}:{float(training.get('scale', 1.0)):g}"
            f":{int(training.get('graph_seed', 0))}")


class _ModelSession:
    """One served (model version, graph epoch, mode): theta + features.

    Beyond the scoring pair (``theta``, ``features``) a session keeps the
    inputs of the *next* incremental rebuild: the encoded ``X`` (epoch
    independent — edge deltas never touch node features), its epoch and
    store, and the propagation hyper-parameters from the model config.
    """

    __slots__ = ("record", "theta", "features", "num_classes", "encoded",
                 "epoch", "store_key", "alpha", "steps", "inference_alpha")

    def __init__(self, record, theta: np.ndarray, features: np.ndarray, *,
                 encoded: np.ndarray, epoch: int, store_key: str,
                 alpha: float, steps: tuple, inference_alpha: float):
        self.record = record
        self.theta = theta
        self.features = features
        self.num_classes = theta.shape[1]
        self.encoded = encoded
        self.epoch = int(epoch)
        self.store_key = store_key
        self.alpha = float(alpha)
        self.steps = tuple(steps)
        self.inference_alpha = float(inference_alpha)


class InferenceService:
    """Batched inference over registry models (the serving control room).

    Thread-safe: sessions are built under a lock, scoring happens on the
    batcher's dispatch thread, counters are locked.  ``start()`` launches the
    micro-batching thread; without it, each call executes its batch inline
    (still through the stacked-matmul path), which is what single-threaded
    library use and the deterministic tests rely on.
    """

    def __init__(self, registry: ModelRegistry | str, *, graph=None,
                 graph_loader=None, max_batch_size: int = 64,
                 max_latency: float = 0.005, max_sessions: int = 8,
                 max_queue_depth: int | None = None,
                 mmap_bundles: bool = True):
        self.registry = (registry if isinstance(registry, ModelRegistry)
                         else ModelRegistry(registry))
        self._graph_loader = graph_loader or _default_graph_loader
        # Serving graphs, each a versioned epoch sequence.  An injected
        # graph= becomes the single "default" store every model serves
        # against; otherwise stores materialise lazily per manifest
        # provenance on first use.
        self._graph_lock = threading.Lock()
        self._graphs: dict[str, GraphStore] = {}
        if graph is not None:
            self._graphs["default"] = GraphStore(graph)
        self._sessions = LRUDict(max_entries=max_sessions)
        self._lock = threading.Lock()
        self._labels: dict[tuple, str] = {}  # session key -> human label
        self.metrics = ServingMetrics()
        self.batcher = ModelRouter(self._score_rows,
                                   max_batch_size=max_batch_size,
                                   max_latency=max_latency,
                                   metrics=self.metrics,
                                   label=self._label_for)
        # Admission control: queue depths past this cap are answered with
        # OverloadedError (HTTP 429) instead of being parked on a ticket.
        # None disables shedding (the library default).
        self.max_queue_depth = (None if max_queue_depth is None
                                else int(max_queue_depth))
        self.shed_counts: dict[str, int] = {}
        self.mmap_bundles = bool(mmap_bundles)
        self.slo_controller = None  # attached by attach_slo() when serving
        self.cache_stats = {"feature_hits": 0, "feature_misses": 0}
        # The service owns its propagation cache (transition / LU solver /
        # features layers) instead of touching the process-global one:
        # session builds run on arbitrary request threads and must not race
        # a sweep's `propagation_cache(...)` context swap.
        self.propagation = PropagationCache()
        self.graph_stats = {
            "updates": 0,
            "sessions_rebuilt_incremental": 0,
            "sessions_rebuilt_full": 0,
            "rows_recomputed": 0,
            "rows_reused": 0,
        }
        # Called with the update result dict after every applied graph
        # update (the serve command re-advertises fleet epochs here).
        self.on_graph_update = None
        self.started_at = time.time()

    def attach_slo(self, controller) -> None:
        """Register the running SLO controller so ``stats()`` can surface
        its budgets and attainment under the ``"slo"`` key."""
        self.slo_controller = controller

    def _label_for(self, key: tuple) -> str:
        """Human label for a session key: ``name@digest12:g<epoch>:mode``
        once the session has been built, a digest fallback before that."""
        label = self._labels.get(key)
        if label is None:
            digest, epoch, mode = key
            label = f"{digest[:12]}:g{epoch}:{mode}"
        return label

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "InferenceService":
        self.batcher.start()
        return self

    def close(self) -> None:
        self.batcher.close()

    def __enter__(self) -> "InferenceService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # graph stores
    # ------------------------------------------------------------------ #
    def _store_for(self, manifest: dict) -> GraphStore:
        """The graph store a model serves against (built on first use)."""
        with self._graph_lock:
            default = self._graphs.get("default")
            if default is not None:
                return default
            key = _store_key_for(manifest)
            store = self._graphs.get(key)
            if store is not None:
                return store
        # Load outside the lock: dataset construction is the expensive part.
        graph = self._graph_loader(manifest)
        with self._graph_lock:
            return self._graphs.setdefault(key,
                                           GraphStore(graph, key=key))

    def _resolve_store(self, name: str | None) -> GraphStore:
        """The store a graph update targets (by key, or the only one)."""
        with self._graph_lock:
            stores = dict(self._graphs)
        if name:
            store = stores.get(name)
            if store is None:
                raise ConfigurationError(
                    f"unknown graph {name!r}; loaded graphs: "
                    f"{sorted(stores) or 'none'}")
            return store
        if not stores:
            raise ConfigurationError(
                "no serving graph is loaded yet; serve a prediction first "
                "(or construct the service with graph=)")
        if len(stores) > 1:
            raise ConfigurationError(
                f"multiple graphs are loaded ({sorted(stores)}); name one "
                f"with 'graph'")
        return next(iter(stores.values()))

    def graph_epochs(self) -> dict[str, int]:
        """Current epoch per loaded graph — what a fleet replica advertises
        on its membership lease next to its model digests."""
        with self._graph_lock:
            stores = dict(self._graphs)
        return {key: store.epoch for key, store in sorted(stores.items())}

    def graph_status(self) -> dict:
        """The ``GET /v1/graph/status`` payload: per-graph epoch state plus
        the service-level rebuild counters."""
        with self._graph_lock:
            stores = dict(self._graphs)
        with self._lock:
            stats = dict(self.graph_stats)
        return {
            "graphs": {key: store.status()
                       for key, store in sorted(stores.items())},
            "stats": stats,
        }

    # ------------------------------------------------------------------ #
    # sessions (model digest, graph epoch, mode) -> theta + features
    # ------------------------------------------------------------------ #
    def _session(self, ref: str, mode: str | None,
                 epoch: int | None = None) -> tuple[tuple, _ModelSession]:
        # The registry resolve runs per call on purpose: "@latest" must pick
        # up a concurrent publish.  The expensive part (loading the bundle,
        # building the graph, propagation) is cached by content digest and
        # graph epoch.
        record = self.registry.resolve(ref)
        mode = mode or record.inference_mode
        if mode not in INFERENCE_MODES:
            raise ConfigurationError(
                f"mode must be one of {INFERENCE_MODES}, got {mode!r}")
        return self._session_for_record(record, mode, epoch)

    def _session_for_record(self, record, mode: str,
                            epoch: int | None = None
                            ) -> tuple[tuple, _ModelSession]:
        store = self._store_for(record.manifest)
        if epoch is None:
            # Pin the epoch *now*: the returned key keeps scoring against
            # this epoch's features even if an update lands mid-request.
            epoch = store.epoch
        key = (record.digest, int(epoch), mode)
        with self._lock:
            session = self._sessions.get_or_none(key)
            if session is not None:
                self.cache_stats["feature_hits"] += 1
                return key, session
            self.cache_stats["feature_misses"] += 1
            base = self._incremental_base(record.digest, mode, store.key,
                                          int(epoch))
        # Build outside the lock: a cold load (npz + graph + encoder forward
        # + propagation) must not stall the dispatch thread or hot models.
        # Two racing builders compute bitwise-identical sessions; last put
        # wins and the loser's work is garbage-collected.
        session = (self._build_incremental(base, store, int(epoch), mode)
                   if base is not None else None)
        if session is None:
            session = self._build_full(record, store, int(epoch), mode)
        with self._lock:
            self._sessions.put(key, session)
            self._labels[key] = f"{session.record.ref}:g{epoch}:{mode}"
            evicted = [old for old in self._labels if old not in self._sessions]
        # Retire evicted versions' queues (flush + stop the dispatch thread)
        # so a long-lived server whose "@latest" keeps advancing does not
        # leak one thread per publish; labels drop only after the flush so
        # the final observations still carry the human name.
        for old in evicted:
            self.batcher.retire(old)
        with self._lock:
            for old in evicted:
                self._labels.pop(old, None)
        return key, session

    def _incremental_base(self, digest: str, mode: str, store_key: str,
                          epoch: int) -> _ModelSession | None:
        """The newest cached session of the same (model, graph, mode) at an
        older epoch — the bitwise starting point of an incremental rebuild.
        Caller holds ``self._lock``."""
        best = None
        for (key_digest, key_epoch, key_mode), session in self._sessions.items():
            if (key_digest == digest and key_mode == mode
                    and session.store_key == store_key
                    and key_epoch < epoch
                    and (best is None or key_epoch > best.epoch)):
                best = session
        return best

    def _build_incremental(self, base: _ModelSession, store: GraphStore,
                           epoch: int, mode: str) -> _ModelSession | None:
        """Advance ``base`` to ``epoch`` by re-propagating only the rows the
        intervening edge deltas can reach; ``None`` falls back to a full
        build (e.g. the base epoch's graph left the history window)."""
        try:
            graph = store.graph_at(epoch)
            endpoints = store.endpoints_between(base.epoch, epoch)
        except ConfigurationError:
            return None
        propagator = self.propagation.propagator(graph.adjacency, base.alpha)
        features, touched = incremental_inference_features(
            propagator, base.encoded, base.features, endpoints, base.steps,
            mode=mode, inference_alpha=base.inference_alpha)
        with self._lock:
            self.graph_stats["sessions_rebuilt_incremental"] += 1
            self.graph_stats["rows_recomputed"] += int(touched.size)
            self.graph_stats["rows_reused"] += \
                int(features.shape[0] - touched.size)
        return _ModelSession(record=base.record, theta=base.theta,
                             features=features, encoded=base.encoded,
                             epoch=epoch, store_key=store.key,
                             alpha=base.alpha, steps=base.steps,
                             inference_alpha=base.inference_alpha)

    def _build_full(self, record, store: GraphStore, epoch: int,
                    mode: str) -> _ModelSession:
        """The reference path: bundle load, encoder forward pass and a full
        propagation against the epoch's graph (bitwise identical to
        :meth:`~repro.core.model.GCON.inference_features`)."""
        model, record = self.registry.load(record.ref, mmap=self.mmap_bundles)
        graph = store.graph_at(epoch)
        encoded = row_normalize_l2(model.encoder_.encode(graph.features))
        propagator = self.propagation.propagator(graph.adjacency,
                                                 model.config.alpha)
        steps = tuple(model.config.normalized_steps)
        inference_alpha = model.config.effective_inference_alpha
        features = inference_features(propagator, encoded, steps, mode=mode,
                                      inference_alpha=inference_alpha)
        if epoch > 0:
            with self._lock:
                self.graph_stats["sessions_rebuilt_full"] += 1
        return _ModelSession(record=record, theta=model.theta_,
                             features=features, encoded=encoded, epoch=epoch,
                             store_key=store.key, alpha=model.config.alpha,
                             steps=steps, inference_alpha=inference_alpha)

    def _score_rows(self, session_key: tuple, nodes: np.ndarray) -> np.ndarray:
        """The batcher's compute hook: one stacked matmul over cached rows."""
        delay = _fault_compute_delay()
        if delay > 0.0:
            time.sleep(delay)  # injected latency only; scores untouched
        with self._lock:
            session = self._sessions.get_or_none(session_key)
        if session is None:  # evicted between submit and dispatch; rebuild
            digest, epoch, mode = session_key
            session = self._rebuild(digest, epoch, mode)
        self._validate_nodes(nodes, session.features.shape[0])
        if nodes.size == 1:
            # A one-row product may dispatch to a GEMV kernel whose last bit
            # can differ from the GEMM the offline full-matrix path uses; pad
            # to two rows so every served answer — even an uncoalesced
            # singleton — is bitwise identical to offline inference.
            padded = session.features[[int(nodes[0]), int(nodes[0])]]
            return batched_inference_scores(padded, session.theta)[:1]
        return batched_inference_scores(session.features[nodes], session.theta)

    def _rebuild(self, digest: str, epoch: int, mode: str) -> _ModelSession:
        # Rebuild at the *pinned* epoch: the graph store's bounded history
        # keeps recent epochs alive exactly so an evicted in-flight ticket
        # still scores against the epoch it was submitted under.
        for record in self.registry.list():
            if record.digest == digest:
                _key, session = self._session(record.ref, mode, epoch=epoch)
                return session
        raise ConfigurationError(f"model version {digest[:12]} left the registry")

    # ------------------------------------------------------------------ #
    # live graph mutation
    # ------------------------------------------------------------------ #
    def apply_graph_update(self, *, inserts=(), deletes=(),
                           sample_insert: int = 0, sample_delete: int = 0,
                           seed=None, graph: str | None = None) -> dict:
        """Apply one edge-delta batch and refresh the affected sessions.

        Two stages, both timed for the request trace: **apply** validates
        the batch and atomically advances the store's epoch; **repropagate**
        rebuilds every cached session that served the previous epoch,
        incrementally (touched rows recomputed, the rest reused bitwise).
        Requests already in flight keep their pinned epoch — the previous
        epoch's sessions and graph stay available until evicted.
        """
        store = self._resolve_store(graph)
        apply_start = time.monotonic_ns()
        delta = EdgeDelta(inserts, deletes)
        if sample_insert or sample_delete:
            sampled = store.sample_delta(sample_insert, sample_delete, seed)
            delta = EdgeDelta(delta.inserts + sampled.inserts,
                              delta.deletes + sampled.deletes)
        previous_epoch = store.epoch
        entry = store.apply(delta)
        apply_end = time.monotonic_ns()
        with self._lock:
            self.graph_stats["updates"] += 1
            refresh = [
                (key, session) for key, session in self._sessions.items()
                if session.store_key == store.key
                and session.epoch == previous_epoch
            ]
        # Rebuild eagerly so the next query hits a warm session; each
        # rebuild takes the incremental path off the session we just found.
        for (_digest, _epoch, mode), session in refresh:
            self._session_for_record(session.record, mode,
                                     epoch=entry["epoch"])
        repropagate_end = time.monotonic_ns()
        result = {
            "graph": store.key,
            "epoch": entry["epoch"],
            "previous_epoch": previous_epoch,
            "digest": entry["digest"],
            "inserted": len(delta.inserts),
            "deleted": len(delta.deletes),
            "endpoints": entry["endpoints"],
            "sessions_refreshed": len(refresh),
            "timings_ns": {
                "apply": (apply_start, apply_end),
                "repropagate": (apply_end, repropagate_end),
            },
        }
        hook = self.on_graph_update
        if hook is not None:
            hook(result)
        return result

    # ------------------------------------------------------------------ #
    # hot-reload hooks (used by the fleet's registry watcher)
    # ------------------------------------------------------------------ #
    def prewarm(self, ref: str, mode: str | None = None):
        """Build (or refresh) the session for ``ref`` and return its record.

        This is the expensive half of serving a new version — bundle load,
        graph rebuild, encoder forward pass, propagation — pulled forward so
        a ``latest.json`` flip never pays the cold build on a live request.
        """
        _key, session = self._session(ref, mode)
        return session.record

    def retire_version(self, digest: str) -> int:
        """Drop every cached session of ``digest`` and retire its queues.

        The rolling-rollout back half: once the watcher has pre-warmed the
        new version, the old one's sessions are evicted and their dispatch
        queues flushed+stopped (in-flight tickets complete first — see
        ``ModelRouter.retire``), so a long-lived replica does not keep one
        thread and one feature matrix per superseded publish.  Returns the
        number of sessions retired.
        """
        with self._lock:
            keys = [key for key in self._sessions if key[0] == digest]
            for key in keys:
                self._sessions.pop(key, None)
        for key in keys:
            self.batcher.retire(key)
        with self._lock:
            for key in keys:
                self._labels.pop(key, None)
        return len(keys)

    def loaded_digests(self) -> list[str]:
        """Distinct content digests with a live session, sorted — what a
        fleet replica advertises on its membership lease."""
        with self._lock:
            return sorted({key[0] for key in self._sessions})

    @staticmethod
    def _validate_nodes(nodes: np.ndarray, num_nodes: int) -> None:
        if nodes.size == 0:
            raise ConfigurationError("at least one node index is required")
        if nodes.min() < 0 or nodes.max() >= num_nodes:
            raise ConfigurationError(
                f"node indices must be in [0, {num_nodes}), got "
                f"[{int(nodes.min())}, {int(nodes.max())}]")

    # ------------------------------------------------------------------ #
    # admission control
    # ------------------------------------------------------------------ #
    def _admit(self, key: tuple) -> None:
        """Shed-before-queue: raise :class:`OverloadedError` when the
        model's queue is at the depth cap.

        Runs *before* the request is parked on a ticket — the rejection
        costs a dict lookup and a counter read, never a matmul — and the
        retry hint is the queue's estimated drain time under its current
        batch budgets."""
        if self.max_queue_depth is None:
            return
        depth = self.batcher.depth(key)
        if depth < self.max_queue_depth:
            return
        label = self._label_for(key)
        size, latency = self.batcher.model_limits(label)
        with self._lock:
            self.shed_counts[label] = self.shed_counts.get(label, 0) + 1
        raise OverloadedError(
            f"model {label} is overloaded: queue depth {depth} >= "
            f"{self.max_queue_depth}; retry later",
            retry_after=estimate_drain_seconds(depth, size, latency),
            label=label, depth=depth, max_queue_depth=self.max_queue_depth)

    # ------------------------------------------------------------------ #
    # the query API
    # ------------------------------------------------------------------ #
    def submit_batch(self, ref: str, nodes, mode: str | None = None, *,
                     epoch: int | None = None):
        """The non-blocking half of :meth:`predict_batch`.

        Resolves the session (pinning the current graph epoch unless an
        explicit ``epoch`` is requested), validates nodes, enqueues on the
        model's own queue and returns ``(ticket, record, mode)`` immediately
        — the selector HTTP frontend parks the connection on the ticket
        instead of blocking an OS thread per request.
        """
        key, session = self._session(ref, mode, epoch=epoch)
        self._admit(key)
        nodes = np.atleast_1d(np.asarray(nodes, dtype=np.int64))
        self._validate_nodes(nodes, session.features.shape[0])
        ticket = self.batcher.submit(key, nodes)
        return ticket, session.record, key[2]

    def predict_batch(self, ref: str, nodes, mode: str | None = None,
                      timeout: float | None = 30.0, *,
                      epoch: int | None = None):
        """Scores plus the exact version and mode that produced them.

        Returns ``(scores, record, mode)``.  Node indices are validated
        *before* the request enters the batcher, so one caller's bad index
        can never fail the strangers coalesced into the same micro-batch.
        """
        key, session = self._session(ref, mode, epoch=epoch)
        self._admit(key)
        nodes = np.atleast_1d(np.asarray(nodes, dtype=np.int64))
        self._validate_nodes(nodes, session.features.shape[0])
        scores = self.batcher.predict_scores(key, nodes, timeout=timeout)
        return scores, session.record, key[2]

    def predict_scores(self, ref: str, nodes, mode: str | None = None,
                       timeout: float | None = 30.0) -> np.ndarray:
        """Raw class scores for ``nodes`` — the batched Algorithm-4 data plane."""
        scores, _record, _mode = self.predict_batch(ref, nodes, mode,
                                                    timeout=timeout)
        return scores

    def predict(self, ref: str, nodes, mode: str | None = None) -> np.ndarray:
        """Predicted class labels for ``nodes``."""
        return np.argmax(self.predict_scores(ref, nodes, mode), axis=1)

    def predict_proba(self, ref: str, nodes, mode: str | None = None) -> np.ndarray:
        """Softmax-normalised class probabilities (pure post-processing)."""
        return softmax_scores(self.predict_scores(ref, nodes, mode))

    def top_k(self, ref: str, nodes, k: int = 3, mode: str | None = None):
        """Per node: the ``k`` best classes with their scores, best first."""
        return top_k_entries(self.predict_scores(ref, nodes, mode), k)

    # ------------------------------------------------------------------ #
    # health / stats
    # ------------------------------------------------------------------ #
    def health(self) -> dict:
        with self._lock:
            loaded = sorted({session.record.ref for session in self._sessions.values()})
        return {
            "status": "ok",
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "models_loaded": loaded,
            "graph_epochs": self.graph_epochs(),
            "registry": str(self.registry.root),
        }

    def stats(self) -> dict:
        """Aggregate counters plus the per-model observability breakdown:
        each served model's batch counters, effective limits, latency
        histogram (p50/p95/p99 in ms) and batch/queue distributions."""
        with self._lock:
            cache = dict(self.cache_stats, sessions=len(self._sessions))
            shed = dict(self.shed_counts)
            graph_stats = dict(self.graph_stats)
        per_model = self.batcher.per_model_stats()
        histograms = self.metrics.as_dict()
        models = {label: {**per_model.get(label, {}),
                          **histograms.get(label, {})}
                  for label in set(per_model) | set(histograms)}
        return {
            "batcher": self.batcher.stats.as_dict(),
            "models": models,
            "feature_cache": cache,
            "propagation_cache": self.propagation.info(),
            "graph": {**graph_stats, "epochs": self.graph_epochs()},
            "max_batch_size": self.batcher.max_batch_size,
            "max_latency_seconds": self.batcher.max_latency,
            "admission": {
                "max_queue_depth": self.max_queue_depth,
                "shed_total": sum(shed.values()),
                "shed_per_model": shed,
            },
            "slo": ({"enabled": True, **self.slo_controller.state()}
                    if self.slo_controller is not None
                    else {"enabled": False}),
            # uptime + RSS; the HTTP frontend overlays its connection
            # counts (open/parked) before serialising /stats.
            "process": process_stats(self.started_at),
        }


# --------------------------------------------------------------------------- #
# the transport-independent halves of the JSON API
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class PredictRequest:
    """A validated ``/v1/predict`` payload."""

    ref: str
    nodes: list
    mode: str | None
    top_k: int | None
    proba: bool


def parse_predict_payload(payload) -> PredictRequest:
    """Validate a decoded ``/v1/predict`` body; raises
    :class:`ConfigurationError` (→ HTTP 400) on every malformed shape, so a
    client typo can never surface as a 500 traceback."""
    if not isinstance(payload, dict):
        raise ConfigurationError("request body must be a JSON object")
    ref = payload.get("model")
    nodes = payload.get("nodes")
    if not ref or not isinstance(ref, str):
        raise ConfigurationError("'model' (e.g. 'name@latest') is required")
    if not isinstance(nodes, list) or not nodes \
            or not all(isinstance(node, int) and not isinstance(node, bool)
                       for node in nodes):
        raise ConfigurationError("'nodes' must be a non-empty list of integers")
    if not all(-(2 ** 63) <= node < 2 ** 63 for node in nodes):
        # Keep the 400-never-500 contract: a node index that overflows int64
        # would otherwise blow up inside np.asarray on the scoring path.
        raise ConfigurationError("node indices must fit in a 64-bit integer")
    mode = payload.get("mode")
    if mode is not None and not isinstance(mode, str):
        raise ConfigurationError(f"'mode' must be a string, got {mode!r}")
    top_k = payload.get("top_k")
    if top_k is not None and (isinstance(top_k, bool)
                              or not isinstance(top_k, int) or top_k < 1):
        raise ConfigurationError("'top_k' must be a positive integer")
    return PredictRequest(ref=ref, nodes=list(nodes), mode=mode,
                          top_k=top_k, proba=bool(payload.get("proba")))


def parse_graph_update_payload(payload) -> dict:
    """Validate a decoded ``/v1/graph/update`` body into
    :meth:`InferenceService.apply_graph_update` keyword arguments; raises
    :class:`ConfigurationError` (→ HTTP 400) on every malformed shape.
    Per-edge validation (self-loops, duplicates, phantom deletes) happens
    in :class:`~repro.serving.graphstore.EdgeDelta` and the store."""
    if not isinstance(payload, dict):
        raise ConfigurationError("request body must be a JSON object")

    def _edges(name: str) -> list:
        value = payload.get(name, [])
        if not isinstance(value, list):
            raise ConfigurationError(
                f"'{name}' must be a list of [u, v] pairs")
        return value

    def _count(name: str) -> int:
        value = payload.get(name, 0)
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            raise ConfigurationError(
                f"'{name}' must be a non-negative integer")
        return value

    seed = payload.get("seed")
    if seed is not None and (isinstance(seed, bool)
                             or not isinstance(seed, int)):
        raise ConfigurationError("'seed' must be an integer")
    graph = payload.get("graph")
    if graph is not None and not isinstance(graph, str):
        raise ConfigurationError("'graph' must be a string store key")
    kwargs = {
        "inserts": _edges("insert"),
        "deletes": _edges("delete"),
        "sample_insert": _count("sample_insert"),
        "sample_delete": _count("sample_delete"),
        "seed": seed,
        "graph": graph,
    }
    if not (kwargs["inserts"] or kwargs["deletes"]
            or kwargs["sample_insert"] or kwargs["sample_delete"]):
        raise ConfigurationError(
            "the update must name edges ('insert'/'delete') or sample "
            "counts ('sample_insert'/'sample_delete')")
    return kwargs


def format_prediction(request: PredictRequest, scores: np.ndarray,
                      record, mode: str) -> dict:
    """Shape the ``/v1/predict`` response (pure post-processing: labels,
    optional softmax and top-k); the metadata names exactly the version that
    produced the scores, even if ``@latest`` advanced mid-request.

    This is the structured (dict) form for library callers and tests; the
    HTTP hot path uses :func:`format_prediction_body`, which renders the
    identical bytes without materialising the nested score lists."""
    response = {
        "model": record.ref,
        "mode": mode,
        "nodes": request.nodes,
        "labels": np.argmax(scores, axis=1).tolist(),
        "scores": [[float(value) for value in row] for row in scores],
    }
    if request.proba:
        proba = softmax_scores(scores)
        response["proba"] = [[float(value) for value in row] for row in proba]
    if request.top_k is not None:
        response["top_k"] = top_k_entries(scores, request.top_k)
    return response


def render_scores_json(scores: np.ndarray) -> str:
    """JSON text of a 2-D score matrix, straight out of the matmul buffer.

    A ticket's scores are a *view* into the batch's stacked matmul output;
    this renders that view in one fused pass — a single C-level buffer
    conversion plus text formatting — instead of building the nested
    list-of-lists payload and re-walking it with ``json.dumps``.  The text
    is byte-identical to ``json.dumps`` of the nested-list form: both print
    finite doubles via ``float.__repr__``, the shortest round-tripping
    decimal, so the zero-copy path changes cost, never bytes (pinned by
    ``tests/test_serving_slo.py``).
    """
    num_cols = int(scores.shape[1])
    flat = scores.ravel().tolist()  # one C pass over the contiguous buffer
    return "[" + ", ".join(
        "[" + ", ".join(map(repr, flat[start:start + num_cols])) + "]"
        for start in range(0, len(flat), num_cols)) + "]"


def format_prediction_body(request: PredictRequest, scores: np.ndarray,
                           record, mode: str) -> bytes:
    """The HTTP hot path: render the full ``/v1/predict`` response body in
    one pass, byte-identical to
    ``json.dumps(format_prediction(...), sort_keys=True) + "\\n"``.

    Keys are emitted in sorted order and the score (and optional proba)
    matrices are serialised by :func:`render_scores_json` directly from the
    stacked matmul buffer — no intermediate nested lists are built for the
    response's numeric payload."""
    parts = [
        '"labels": ' + json.dumps(np.argmax(scores, axis=1).tolist()),
        '"mode": ' + json.dumps(mode),
        '"model": ' + json.dumps(record.ref),
        '"nodes": ' + json.dumps(request.nodes),
    ]
    if request.proba:
        parts.append('"proba": ' + render_scores_json(softmax_scores(scores)))
    parts.append('"scores": ' + render_scores_json(scores))
    if request.top_k is not None:
        parts.append('"top_k": ' + json.dumps(
            top_k_entries(scores, request.top_k), sort_keys=True))
    return ("{" + ", ".join(parts) + "}\n").encode("utf-8")
