"""Consistent hashing: a stable map from model digests to fleet replicas.

The fleet routes each model digest to one owning replica so that replica's
LRU session cache stays hot (every other replica would pay a cold
``load``/pre-warm for the same model).  A plain ``hash(digest) % N`` map
reshuffles almost every key whenever N changes; the classic fix is a
*consistent-hash ring*: each node is hashed onto a circle at ``vnodes``
pseudo-random positions, a key is owned by the first node position at or
after the key's own position, and adding or removing one node moves only
~1/N of the keys (the arcs that node's positions covered).

Positions come from SHA-256, so the ring is deterministic across processes
and Python runs — every replica computes the same ownership map from the
same membership list, with no coordination beyond the lease directory.
"""

from __future__ import annotations

import bisect
import hashlib

DEFAULT_VNODES = 64


def ring_position(token: str) -> int:
    """A stable 64-bit position on the ring for ``token``."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring over opaque node names.

    ``vnodes`` virtual positions per node trade a little memory for an even
    key split (the stddev of per-node load shrinks like 1/sqrt(vnodes)).
    """

    def __init__(self, nodes=(), *, vnodes: int = DEFAULT_VNODES):
        if vnodes <= 0:
            raise ValueError(f"vnodes must be positive, got {vnodes}")
        self.vnodes = int(vnodes)
        self._nodes: set[str] = set()
        self._positions: list[int] = []   # sorted, parallel to _owners
        self._owners: list[str] = []
        for node in nodes:
            self.add(node)

    # -- membership ----------------------------------------------------- #
    def add(self, node: str) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        for index in range(self.vnodes):
            position = ring_position(f"{node}#{index}")
            at = bisect.bisect(self._positions, position)
            self._positions.insert(at, position)
            self._owners.insert(at, node)

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        keep = [(pos, owner) for pos, owner in zip(self._positions, self._owners)
                if owner != node]
        self._positions = [pos for pos, _ in keep]
        self._owners = [owner for _, owner in keep]

    @property
    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    # -- routing -------------------------------------------------------- #
    def owner(self, key: str) -> str | None:
        """The node owning ``key``; ``None`` on an empty ring."""
        preferred = self.preference(key, 1)
        return preferred[0] if preferred else None

    def preference(self, key: str, count: int | None = None) -> list[str]:
        """Distinct nodes for ``key`` in failover order.

        The owner first, then the nodes whose positions follow clockwise —
        the same order every member computes, so "try the next replica"
        needs no coordination.  ``count=None`` returns all nodes.
        """
        if not self._positions:
            return []
        limit = len(self._nodes) if count is None else min(count, len(self._nodes))
        start = bisect.bisect(self._positions, ring_position(key))
        ordered: list[str] = []
        seen: set[str] = set()
        for step in range(len(self._owners)):
            owner = self._owners[(start + step) % len(self._owners)]
            if owner not in seen:
                seen.add(owner)
                ordered.append(owner)
                if len(ordered) >= limit:
                    break
        return ordered
