"""Versioned serving graphs: epochs, an edge-delta log, atomic advance.

The serving stack used to treat its graph as frozen for the life of the
process; this module makes mutation a first-class, *versioned* operation so
the feature caches above it can stay honest:

* **An epoch is a content-addressed graph version.**  Epoch 0 is the graph
  the store was built with; every applied :class:`EdgeDelta` produces epoch
  ``n+1`` with its own :func:`~repro.core.propagation.graph_fingerprint`
  digest.  Two stores that applied the same deltas to the same graph agree
  on digests — the fleet's epoch-agreement check compares exactly these.
* **Mutation is an append-only delta log.**  A delta is a batch of edge
  inserts and deletes, validated through the same
  :meth:`~repro.graphs.graph.GraphDataset.with_edge` /
  :meth:`~repro.graphs.graph.GraphDataset.without_edge` invariants the
  DP neighbouring-pair machinery uses (no duplicate inserts, no phantom
  deletes, no self-loops); validation is all-or-nothing, so a bad batch
  leaves the current epoch untouched.
* **Epoch advance is atomic.**  The new graph is built off to the side and
  committed under the store lock in one assignment; readers either see the
  old epoch in full or the new epoch in full, never a half-applied batch.
  In-flight requests that pinned the old epoch keep scoring against it —
  the store retains a bounded history window (``max_history`` epochs) so a
  pinned session evicted mid-update can still be rebuilt bitwise.

:class:`GraphStore` is deliberately independent of models and sessions: the
:class:`~repro.serving.service.InferenceService` keys its sessions by
``(model digest, graph epoch, mode)`` and asks the store for the graph (and
the delta endpoints) behind any epoch it still serves.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

import numpy as np

from repro.core.propagation import graph_fingerprint
from repro.exceptions import ConfigurationError, GraphDataError
from repro.graphs.graph import GraphDataset
from repro.graphs.perturbations import sample_absent_edge, sample_present_edge
from repro.utils.random import as_rng

DEFAULT_GRAPH_HISTORY = 4


def _normalize_edges(pairs, what: str) -> tuple:
    """Validate an edge batch into a canonical ``((u, v), ...)`` with u < v."""
    out = []
    seen = set()
    for pair in pairs:
        if (not isinstance(pair, (tuple, list)) or len(pair) != 2
                or any(isinstance(end, bool) or not isinstance(end, (int, np.integer))
                       for end in pair)):
            raise GraphDataError(
                f"{what} entries must be [u, v] integer pairs, got {pair!r}")
        u, v = int(pair[0]), int(pair[1])
        if u == v:
            raise GraphDataError(f"{what} edge ({u}, {v}) is a self-loop")
        if u < 0 or v < 0:
            raise GraphDataError(f"{what} edge ({u}, {v}) has a negative node")
        edge = (u, v) if u < v else (v, u)
        if edge in seen:
            raise GraphDataError(f"duplicate {what} edge {edge} in one batch")
        seen.add(edge)
        out.append(edge)
    return tuple(out)


class EdgeDelta:
    """One validated batch of undirected edge inserts and deletes."""

    __slots__ = ("inserts", "deletes")

    def __init__(self, inserts=(), deletes=()):
        self.inserts = _normalize_edges(inserts, "insert")
        self.deletes = _normalize_edges(deletes, "delete")
        overlap = set(self.inserts) & set(self.deletes)
        if overlap:
            raise GraphDataError(
                f"edges {sorted(overlap)} appear in both insert and delete")

    @property
    def size(self) -> int:
        return len(self.inserts) + len(self.deletes)

    @property
    def endpoints(self) -> np.ndarray:
        """Sorted unique node ids incident to any edge in the batch — the
        seed set of the incremental re-propagation."""
        flat = [node for edge in (*self.inserts, *self.deletes)
                for node in edge]
        return np.unique(np.asarray(flat, dtype=np.int64))

    def as_dict(self) -> dict:
        return {"insert": [list(edge) for edge in self.inserts],
                "delete": [list(edge) for edge in self.deletes]}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"EdgeDelta(+{len(self.inserts)} edge(s), "
                f"-{len(self.deletes)} edge(s))")


class GraphStore:
    """The serving graph as a sequence of epochs plus their delta log.

    Thread-safe; every public method takes the store lock.  ``apply`` does
    its (validating, copy-on-write) graph construction *inside* the lock —
    updates are admission-controlled to one in flight by the HTTP layer, so
    holding the lock for the batch keeps the epoch sequence linear without
    costing the read path anything measurable.
    """

    def __init__(self, graph: GraphDataset, *, key: str = "default",
                 max_history: int = DEFAULT_GRAPH_HISTORY):
        if max_history < 1:
            raise ConfigurationError(
                f"max_history must be >= 1, got {max_history}")
        self.key = str(key)
        self.max_history = int(max_history)
        self._lock = threading.Lock()
        self._epoch = 0
        self._graphs: OrderedDict[int, GraphDataset] = OrderedDict({0: graph})
        self._digests: dict[int, str] = {
            0: graph_fingerprint(graph.adjacency)}
        self._log: list[dict] = []  # append-only; one entry per epoch advance

    # ------------------------------------------------------------------ #
    # readers
    # ------------------------------------------------------------------ #
    @property
    def epoch(self) -> int:
        with self._lock:
            return self._epoch

    @property
    def digest(self) -> str:
        with self._lock:
            return self._digests[self._epoch]

    def current(self) -> tuple[int, GraphDataset]:
        """The current ``(epoch, graph)`` pair, read atomically."""
        with self._lock:
            return self._epoch, self._graphs[self._epoch]

    def graph_at(self, epoch: int) -> GraphDataset:
        with self._lock:
            graph = self._graphs.get(int(epoch))
            if graph is None:
                retained = sorted(self._graphs)
                raise ConfigurationError(
                    f"graph epoch {epoch} is not retained (history keeps "
                    f"{retained}); the session pinned to it can no longer "
                    f"be rebuilt")
            return graph

    def digest_at(self, epoch: int) -> str:
        with self._lock:
            digest = self._digests.get(int(epoch))
        if digest is None:
            raise ConfigurationError(f"graph epoch {epoch} is not retained")
        return digest

    def retained_epochs(self) -> list[int]:
        with self._lock:
            return sorted(self._graphs)

    def delta_log(self, since: int = 0) -> list[dict]:
        """Log entries for epochs ``> since`` (the full log by default)."""
        with self._lock:
            return [dict(entry) for entry in self._log
                    if entry["epoch"] > int(since)]

    def endpoints_between(self, old_epoch: int, new_epoch: int) -> np.ndarray:
        """Union of delta endpoints over ``old_epoch < epoch <= new_epoch``.

        This is the seed set that makes incremental re-propagation correct
        across *several* missed epochs: a node outside the union kept its
        entire neighbour list through every intermediate delta.
        """
        old_epoch, new_epoch = int(old_epoch), int(new_epoch)
        if old_epoch > new_epoch:
            raise ConfigurationError(
                f"epoch order inverted: {old_epoch} > {new_epoch}")
        with self._lock:
            if new_epoch > self._epoch:
                raise ConfigurationError(
                    f"epoch {new_epoch} has not happened (current "
                    f"{self._epoch})")
            nodes = [node for entry in self._log
                     if old_epoch < entry["epoch"] <= new_epoch
                     for edge in (*entry["insert"], *entry["delete"])
                     for node in edge]
        return np.unique(np.asarray(nodes, dtype=np.int64))

    def status(self) -> dict:
        """The ``GET /v1/graph/status`` payload for this store."""
        with self._lock:
            graph = self._graphs[self._epoch]
            last = self._log[-1] if self._log else None
            return {
                "key": self.key,
                "epoch": self._epoch,
                "digest": self._digests[self._epoch],
                "nodes": graph.num_nodes,
                "edges": graph.num_edges,
                "updates": len(self._log),
                "retained_epochs": sorted(self._graphs),
                "last_update_unix": (last["applied_unix"] if last else None),
            }

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def sample_delta(self, inserts: int = 0, deletes: int = 0,
                     seed=None) -> EdgeDelta:
        """Sample a random delta against the *current* epoch.

        Inserts are drawn from the current non-edges, deletes from the
        current edges, each without replacement, so the sampled batch is
        always valid to apply — the server-side sampling that lets the CLI
        and the CI smoke drive updates without shipping an edge list.
        """
        if inserts < 0 or deletes < 0:
            raise ConfigurationError("sample counts must be >= 0")
        rng = as_rng(seed)
        with self._lock:
            base = self._graphs[self._epoch]
        added = base
        insert_edges = []
        for _ in range(int(inserts)):
            u, v = sample_absent_edge(added, rng)
            added = added.with_edge(u, v)
            insert_edges.append((u, v))
        removed = base
        delete_edges = []
        for _ in range(int(deletes)):
            u, v = sample_present_edge(removed, rng)
            removed = removed.without_edge(u, v)
            delete_edges.append((u, v))
        return EdgeDelta(insert_edges, delete_edges)

    def apply(self, delta: EdgeDelta) -> dict:
        """Validate and commit one delta; returns the new log entry.

        All-or-nothing: the batch is applied edge by edge to a copy-on-write
        working graph (``with_edge`` raises on a duplicate insert,
        ``without_edge`` on a phantom delete), and only a fully valid batch
        advances the epoch.  The commit itself is a couple of dict inserts
        plus one integer assignment — atomic under the lock.
        """
        if not isinstance(delta, EdgeDelta):
            raise ConfigurationError(
                f"apply takes an EdgeDelta, got {type(delta).__name__}")
        if delta.size == 0:
            raise GraphDataError("an edge delta must contain at least one edge")
        with self._lock:
            work = self._graphs[self._epoch]
            for u, v in delta.inserts:
                work = work.with_edge(u, v)
            for u, v in delta.deletes:
                work = work.without_edge(u, v)
            new_epoch = self._epoch + 1
            entry = {
                "epoch": new_epoch,
                "previous_epoch": self._epoch,
                "insert": [list(edge) for edge in delta.inserts],
                "delete": [list(edge) for edge in delta.deletes],
                "endpoints": [int(node) for node in delta.endpoints],
                "digest": graph_fingerprint(work.adjacency),
                "applied_unix": time.time(),
            }
            self._graphs[new_epoch] = work
            self._digests[new_epoch] = entry["digest"]
            self._log.append(entry)
            self._epoch = new_epoch
            while len(self._graphs) > self.max_history:
                evicted, _graph = self._graphs.popitem(last=False)
                self._digests.pop(evicted, None)
            return dict(entry)
