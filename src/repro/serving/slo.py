"""Closing the control loop: SLO-driven adaptive batching and load shedding.

The PR 5 histograms (:mod:`repro.serving.metrics`) made serving latency
*observable*; until now nothing acted on them.  This module is the feedback
half of the serving stack:

* :class:`SloController` — an AIMD controller that periodically reads each
  model's latency histogram, computes the p99 **over the interval since its
  last tick** (a windowed quantile from the difference of two bucket-count
  snapshots, so one overloaded minute an hour ago cannot dominate today's
  decision), and retunes that model's micro-batch budgets through
  :meth:`~repro.serving.router.ModelRouter.configure_model`:

  - **under the target p99**: grow the batch budget *additively*
    (``+increase_by`` rows) and relax the flush deadline back toward the
    configured base — probe for throughput while latency has headroom;
  - **over the target p99**: back off *multiplicatively* (``x backoff`` on
    both the row budget and the deadline) — shed latency fast, the classic
    TCP-shaped response to congestion.

  Reconfiguration is safe under load because the
  :class:`~repro.serving.batcher.MicroBatcher` snapshots both limits
  atomically at each batch boundary — a mid-flush batch always runs under
  one consistent configuration.

* :class:`OverloadedError` — raised by the service's queue-depth admission
  check *before* a request is parked on a batch ticket.  The HTTP frontend
  maps it to ``429 Too Many Requests`` with a ``Retry-After`` hint, so
  overload is answered with a cheap rejection before the matmul, not with a
  timeout after it.  The retry hint is the estimated drain time of the
  queue the request would have joined.

Neither mechanism touches the data plane's one promise: budgets and
admission change *when* a matmul runs and *whether* a request is accepted —
never the numbers a served request returns, which stay bitwise equal to
offline ``decision_scores``.
"""

from __future__ import annotations

import math
import threading
import time
from bisect import bisect_right
from collections import deque
from dataclasses import dataclass, field

from repro.exceptions import ReproError
from repro.serving.metrics import LATENCY_BUCKETS, bucket_quantile


class OverloadedError(ReproError):
    """A request was shed by admission control (queue depth over the cap).

    ``retry_after`` is the estimated seconds until the model's queue has
    drained — what the HTTP frontend serialises into the ``Retry-After``
    header (rounded up to whole seconds, as the header requires).
    """

    def __init__(self, message: str, *, retry_after: float, label: str,
                 depth: int, max_queue_depth: int):
        super().__init__(message)
        self.retry_after = float(retry_after)
        self.label = label
        self.depth = int(depth)
        self.max_queue_depth = int(max_queue_depth)

    @property
    def retry_after_header(self) -> int:
        """``Retry-After`` header value: whole seconds, at least 1."""
        return max(1, math.ceil(self.retry_after))


def estimate_drain_seconds(depth: int, max_batch_size: int,
                           max_latency: float) -> float:
    """Rough drain time of a queue ``depth`` tickets deep: each flush clears
    up to ``max_batch_size`` tickets and a forming batch waits at most
    ``max_latency`` — a floor of 10 ms keeps the hint non-zero even for
    deadline-free queues."""
    flushes = math.ceil(max(depth, 1) / max(max_batch_size, 1))
    return flushes * max(max_latency, 0.010)


@dataclass
class ModelBudget:
    """The controller's per-model state: current budgets plus the audit
    trail ``/stats`` exposes."""

    max_batch_size: int
    max_latency: float
    last_p99: float = 0.0
    last_window: int = 0      # requests observed in the last non-empty window
    ticks_under: int = 0      # windows at or under the target p99
    ticks_over: int = 0       # windows over the target p99
    grown: int = 0            # additive increases applied
    backed_off: int = 0       # multiplicative backoffs applied
    good_total: int = 0       # requests at or under the target (cumulative)
    bad_total: int = 0        # requests over the target (cumulative)
    budget_remaining: float = 1.0   # over the rolling budget window
    budget_consumed: float = 0.0
    burn_rate: float = 0.0
    _counts: tuple = field(default=(), repr=False)  # last snapshot
    _history: deque = field(default_factory=deque, repr=False)

    @property
    def slo_attainment(self) -> float:
        """Fraction of observed windows that met the target (1.0 when the
        model has not seen traffic yet — an idle model is not violating)."""
        windows = self.ticks_under + self.ticks_over
        return self.ticks_under / windows if windows else 1.0

    def as_dict(self) -> dict:
        return {
            "max_batch_size": self.max_batch_size,
            "max_latency_seconds": self.max_latency,
            "last_window_p99_ms": self.last_p99 * 1e3,
            "last_window_requests": self.last_window,
            "windows_under_slo": self.ticks_under,
            "windows_over_slo": self.ticks_over,
            "grown": self.grown,
            "backed_off": self.backed_off,
            "slo_attainment": self.slo_attainment,
            "good_requests": self.good_total,
            "bad_requests": self.bad_total,
            "error_budget_remaining": self.budget_remaining,
            "error_budget_consumed": self.budget_consumed,
            "burn_rate": self.burn_rate,
        }


class SloController:
    """AIMD feedback from the latency histograms into per-model batch budgets.

    Parameters
    ----------
    router:
        The :class:`~repro.serving.router.ModelRouter` whose per-model
        budgets are tuned (via ``configure_model``); its attached
        :class:`~repro.serving.metrics.ServingMetrics` is the feedback
        signal unless ``metrics`` overrides it.
    target_p99:
        The latency objective in **seconds**: hold each model's windowed
        p99 at or under this.
    interval:
        Seconds between control ticks (the window length).
    increase_by:
        Additive row-budget growth per under-target window.
    backoff:
        Multiplicative factor (0 < backoff < 1) applied to both budgets on
        an over-target window.
    min_batch_size / max_batch_size:
        Clamp bounds for the row budget.
    min_latency:
        Floor for the flush deadline under backoff; the ceiling is the
        router-wide default the server was started with (the deadline
        recovers additively toward it).
    clock:
        Injectable time source (the tests drive a fake one).
    """

    def __init__(self, router, *, target_p99: float, metrics=None,
                 interval: float = 0.25, increase_by: int = 8,
                 backoff: float = 0.5, min_batch_size: int = 1,
                 max_batch_size: int = 4096, min_latency: float = 0.0005,
                 objective: float = 0.99, budget_window: float = 3600.0,
                 clock=time.monotonic):
        if target_p99 <= 0:
            raise ValueError(f"target_p99 must be > 0, got {target_p99}")
        if not 0.0 < backoff < 1.0:
            raise ValueError(f"backoff must be in (0, 1), got {backoff}")
        if not 0.0 < objective < 1.0:
            raise ValueError(f"objective must be in (0, 1), got {objective}")
        if budget_window <= 0:
            raise ValueError(
                f"budget_window must be > 0, got {budget_window}")
        if increase_by < 1:
            raise ValueError(f"increase_by must be >= 1, got {increase_by}")
        if not 1 <= min_batch_size <= max_batch_size:
            raise ValueError(
                f"need 1 <= min_batch_size <= max_batch_size, got "
                f"[{min_batch_size}, {max_batch_size}]")
        self.router = router
        self.metrics = metrics if metrics is not None else router.metrics
        self.target_p99 = float(target_p99)
        self.interval = float(interval)
        self.increase_by = int(increase_by)
        self.backoff = float(backoff)
        self.min_batch_size = int(min_batch_size)
        self.max_batch_size = int(max_batch_size)
        self.min_latency = float(min_latency)
        self.objective = float(objective)
        self.budget_window = float(budget_window)
        # Buckets whose upper edge is at or under the target hold the
        # "good" requests; the error budget is everything above.
        self._good_buckets = bisect_right(LATENCY_BUCKETS, self.target_p99)
        # The deadline ceiling and its additive recovery step are anchored to
        # the router-wide default: what the operator configured is the most
        # the controller will ever let a batch wait.
        self.base_latency = float(router.max_latency)
        self.latency_step = max(self.base_latency / 4.0, self.min_latency)
        self._clock = clock
        self._lock = threading.Lock()
        self._budgets: dict[str, ModelBudget] = {}
        self._thread: threading.Thread | None = None
        self._stopping = threading.Event()
        self.ticks = 0
        self.last_error: str | None = None

    # ------------------------------------------------------------------ #
    # the control step
    # ------------------------------------------------------------------ #
    def tick(self) -> dict:
        """One control step over every model with traffic; returns the
        per-label decisions (the deterministic entry point the tests call
        directly with a fake clock and a hand-fed metrics object)."""
        decisions: dict[str, dict] = {}
        snapshot = self.metrics.latency_snapshot()
        with self._lock:
            self.ticks += 1
            for label, (counts, observed_max, _total) in snapshot.items():
                budget = self._budgets.get(label)
                if budget is None:
                    size, latency = self.router.model_limits(label)
                    budget = self._budgets[label] = ModelBudget(
                        max_batch_size=size, max_latency=latency)
                window = [new - old for new, old in
                          zip(counts, budget._counts)] \
                    if budget._counts else list(counts)
                budget._counts = counts
                requests = sum(window)
                self._account(label, budget, window, requests)
                if requests == 0:
                    continue  # idle window: hold the budgets, judge nothing
                p99 = bucket_quantile(LATENCY_BUCKETS, window, 0.99,
                                      overflow_value=observed_max)
                decisions[label] = self._adjust(label, budget, p99, requests)
        return decisions

    def _account(self, label: str, budget: ModelBudget, window,
                 requests: int) -> None:
        """Charge this window against the SLO error budget and publish the
        result into the metrics registry (rides ``/metrics``, retained by
        the telemetry collector, merged fleet-wide by the aggregator).

        "Good" is exact, not interpolated: requests in latency buckets whose
        upper edge is at or under the target.  The burn rate of a window is
        ``(bad / total) / (1 - objective)`` — 1x spends the budget exactly
        at the sustainable pace.
        """
        now = self._clock()
        good = int(sum(window[:self._good_buckets]))
        bad = int(requests) - good
        budget.good_total += good
        budget.bad_total += bad
        history = budget._history
        history.append((now, good, bad))
        while history and history[0][0] < now - self.budget_window:
            history.popleft()
        window_good = sum(entry[1] for entry in history)
        window_bad = sum(entry[2] for entry in history)
        window_total = window_good + window_bad
        allowance = 1.0 - self.objective
        if window_total:
            budget.burn_rate = (window_bad / window_total) / allowance
            budget.budget_consumed = window_bad / (allowance * window_total)
        else:
            budget.burn_rate = 0.0
            budget.budget_consumed = 0.0
        budget.budget_remaining = 1.0 - budget.budget_consumed
        publish = getattr(self.metrics, "set_series", None)
        if publish is None:  # hand-fed test doubles only speak snapshots
            return
        labels = {"model": label}
        publish("repro_slo_target_p99_seconds", self.target_p99,
                help_text="SLO latency objective the controller holds.")
        publish("repro_slo_objective_ratio", self.objective,
                help_text="Fraction of requests that must meet the target.")
        publish("repro_slo_budget_window_seconds", self.budget_window,
                help_text="Rolling window the error budget is judged over.")
        publish("repro_slo_good_requests_total", budget.good_total,
                kind="counter", labels=labels,
                help_text="Requests at or under the target p99.")
        publish("repro_slo_bad_requests_total", budget.bad_total,
                kind="counter", labels=labels,
                help_text="Requests over the target p99 (budget spend).")
        publish("repro_slo_error_budget_remaining_ratio",
                budget.budget_remaining, labels=labels,
                help_text="Error budget left in the rolling window "
                          "(1 = untouched, <0 = overspent).")
        publish("repro_slo_error_budget_consumed_ratio",
                budget.budget_consumed, labels=labels,
                help_text="Error budget consumed in the rolling window.")
        publish("repro_slo_burn_rate", budget.burn_rate, labels=labels,
                help_text="Budget burn multiple over the rolling window "
                          "(1x = sustainable pace).")

    def _adjust(self, label: str, budget: ModelBudget, p99: float,
                requests: int) -> dict:
        budget.last_p99 = p99
        budget.last_window = requests
        size, latency = budget.max_batch_size, budget.max_latency
        if p99 > self.target_p99:
            budget.ticks_over += 1
            new_size = max(self.min_batch_size,
                           int(size * self.backoff))
            new_latency = max(self.min_latency, latency * self.backoff)
            action = "backoff"
        else:
            budget.ticks_under += 1
            new_size = min(self.max_batch_size, size + self.increase_by)
            new_latency = min(self.base_latency, latency + self.latency_step)
            action = "grow"
        if (new_size, new_latency) != (size, latency):
            if action == "backoff":
                budget.backed_off += 1
            else:
                budget.grown += 1
            budget.max_batch_size = new_size
            budget.max_latency = new_latency
            self.router.configure_model(label, max_batch_size=new_size,
                                        max_latency=new_latency)
        return {"action": action, "p99": p99, "requests": requests,
                "max_batch_size": new_size, "max_latency": new_latency}

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "SloController":
        """Run the control loop on a daemon thread (idempotent)."""
        if self._thread is None:
            self._stopping.clear()
            self._thread = threading.Thread(target=self._loop, daemon=True,
                                            name="repro-serving-slo")
            self._thread.start()
        return self

    def close(self) -> None:
        if self._thread is not None:
            self._stopping.set()
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "SloController":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _loop(self) -> None:
        while not self._stopping.wait(self.interval):
            try:
                self.tick()
            except Exception as error:  # keep controlling; surface in /stats
                self.last_error = repr(error)

    # ------------------------------------------------------------------ #
    # observability (the /stats "slo" block)
    # ------------------------------------------------------------------ #
    def state(self) -> dict:
        with self._lock:
            models = {label: budget.as_dict()
                      for label, budget in sorted(self._budgets.items())}
            return {
                "target_p99_ms": self.target_p99 * 1e3,
                "objective": self.objective,
                "budget_window_seconds": self.budget_window,
                "interval_seconds": self.interval,
                "increase_by": self.increase_by,
                "backoff": self.backoff,
                "base_max_latency_seconds": self.base_latency,
                "ticks": self.ticks,
                "last_error": self.last_error,
                "models": models,
            }
