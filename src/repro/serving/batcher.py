"""Micro-batching of inference requests: many queries, one matmul per model.

Serving traffic arrives as many small, independent queries ("scores for
nodes [3, 17]").  Answering each with its own matmul wastes the data plane:
the per-call overhead (Python dispatch, BLAS setup) dominates the handful of
fused multiply-adds a single row costs.  The :class:`MicroBatcher` coalesces
concurrently arriving requests — up to ``max_batch_size`` queried rows or
``max_latency`` seconds, whichever comes first — and answers each batch with
**one** stacked ``aggregated @ theta`` matmul per distinct model in the
batch.

Correctness does not depend on the schedule: selecting rows of the cached
feature matrix and multiplying the stack is bitwise identical to computing
every node's score individually from the full score matrix (verified by the
serving equivalence tests), so coalescing can only change latency, never
numbers.

The batcher is deliberately execution-agnostic: it calls a user-supplied
``compute(model_key, node_indices) -> scores`` and never touches models,
graphs or caches itself — :class:`repro.serving.service.InferenceService`
wires it to the feature-cache-backed scorer.  ``start()`` runs the dispatch
loop on a daemon thread (the HTTP server path); ``run_once()`` drains the
currently queued requests synchronously, which is what the deterministic
tests and benchmarks use.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

import numpy as np


@dataclass
class BatchStats:
    """Counters describing what the batcher has done so far.

    Coalescing and batch-row extrema are accounted **per model**: two tickets
    only count as coalesced when they share both a flush *and* a model (they
    were answered by one stacked matmul), and ``max_batch_rows`` is the
    largest single-model stack ever multiplied — not the row count of a
    mixed-model flush, which never hits BLAS as one operation.
    """

    requests: int = 0
    rows_requested: int = 0
    batches: int = 0
    matmuls: int = 0
    coalesced_requests: int = 0   # tickets that shared a matmul with others
    max_batch_rows: int = 0       # largest single-model stacked matmul
    per_model_matmuls: dict = field(default_factory=dict)
    per_model_coalesced: dict = field(default_factory=dict)
    per_model_max_rows: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "rows_requested": self.rows_requested,
            "batches": self.batches,
            "matmuls": self.matmuls,
            "coalesced_requests": self.coalesced_requests,
            "max_batch_rows": self.max_batch_rows,
            "per_model_matmuls": dict(self.per_model_matmuls),
            "per_model_coalesced": dict(self.per_model_coalesced),
            "per_model_max_rows": dict(self.per_model_max_rows),
        }

    def merge(self, other: "BatchStats") -> "BatchStats":
        """Fold ``other`` into this aggregate (used by the router's view)."""
        self.requests += other.requests
        self.rows_requested += other.rows_requested
        self.batches += other.batches
        self.matmuls += other.matmuls
        self.coalesced_requests += other.coalesced_requests
        self.max_batch_rows = max(self.max_batch_rows, other.max_batch_rows)
        for source, target in (
                (other.per_model_matmuls, self.per_model_matmuls),
                (other.per_model_coalesced, self.per_model_coalesced)):
            for label, count in source.items():
                target[label] = target.get(label, 0) + count
        for label, rows in other.per_model_max_rows.items():
            self.per_model_max_rows[label] = max(
                self.per_model_max_rows.get(label, 0), rows)
        return self


class _Ticket:
    """One submitted request: callers block on :meth:`result` (or poll
    :meth:`done`, which is what the selector HTTP frontend does)."""

    __slots__ = ("nodes", "model_key", "submitted_at", "execute_at",
                 "compute_started_at", "compute_ended_at", "on_done",
                 "_event", "_scores", "_error")

    def __init__(self, model_key, nodes: np.ndarray, submitted_at: float = 0.0):
        self.model_key = model_key
        self.nodes = nodes
        self.submitted_at = submitted_at
        # Lifecycle timestamps (same clock as submitted_at), stamped by the
        # dispatch thread as the ticket moves through its batch: flush time,
        # matmul start, matmul end.  Pure observation — the HTTP frontend
        # reconstructs queue/batch/compute trace spans from them, so the
        # batcher itself never touches a tracer.  0.0 = not reached.
        self.execute_at = 0.0
        self.compute_started_at = 0.0
        self.compute_ended_at = 0.0
        self.on_done = None  # optional wakeup hook, called after resolution
        self._event = threading.Event()
        self._scores = None
        self._error: BaseException | None = None

    def _resolve(self, scores) -> None:
        self._scores = scores
        self._event.set()
        self._notify()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()
        self._notify()

    def _notify(self) -> None:
        callback = self.on_done
        if callback is not None:
            try:
                callback()
            except Exception:  # a broken waker must not fail the batch
                pass

    def done(self) -> bool:
        """True once the ticket is resolved or failed (never blocks)."""
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> np.ndarray:
        """Block until the batch executes; raise what the scorer raised."""
        if not self._event.wait(timeout):
            raise TimeoutError("inference request timed out waiting for its batch")
        if self._error is not None:
            raise self._error
        return self._scores


class MicroBatcher:
    """Coalesces inference requests into per-model stacked matmuls.

    Parameters
    ----------
    compute:
        ``(model_key, node_indices: np.ndarray) -> np.ndarray`` — scores for
        the stacked rows.  Must be thread-safe; it runs on the dispatch
        thread, never on callers.
    max_batch_size:
        Flush a forming batch once this many *rows* are queued across its
        requests.
    max_latency:
        Seconds the dispatch loop waits for more requests after the first
        one arrives before flushing regardless of size.
    observer:
        Optional metrics sink (duck-typed, see
        :class:`repro.serving.metrics.ServingMetrics`): ``observe_queue_depth
        (label, depth)`` at flush time and ``observe_batch(label, tickets,
        completed_at, failed=...)`` after each per-model matmul.
    """

    def __init__(self, compute, *, max_batch_size: int = 64,
                 max_latency: float = 0.005, clock=time.monotonic,
                 observer=None, label=str):
        self._compute = compute
        self._label = label  # model_key -> str for stats/metrics labels
        # Both batch limits live in ONE tuple that is swapped atomically and
        # snapshotted once per forming batch, so a runtime reconfiguration
        # (the SLO controller tunes limits while the dispatch thread is
        # mid-flush) takes effect exactly at a batch boundary and the loop
        # can never observe a torn (new size, old deadline) mix.
        self._limits = self._checked_limits(max_batch_size, max_latency)
        self._limits_lock = threading.Lock()
        self._clock = clock
        self._observer = observer
        self._queue: queue.Queue[_Ticket | None] = queue.Queue()
        self._thread: threading.Thread | None = None
        self._stopping = threading.Event()
        self._inflight = 0  # submitted, not yet resolved/failed (queue depth)
        self.stats = BatchStats()
        self._stats_lock = threading.Lock()

    @staticmethod
    def _checked_limits(max_batch_size: int, max_latency: float) -> tuple[int, float]:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_latency < 0:
            raise ValueError(f"max_latency must be >= 0, got {max_latency}")
        return int(max_batch_size), float(max_latency)

    # ------------------------------------------------------------------ #
    # batch limits (atomically reconfigurable at batch boundaries)
    # ------------------------------------------------------------------ #
    def configure(self, *, max_batch_size: int | None = None,
                  max_latency: float | None = None) -> tuple[int, float]:
        """Swap the batch limits atomically; returns the new pair.

        The dispatch loop snapshots both limits together when a batch starts
        forming, so the new configuration applies from the next batch on —
        never to the one mid-flush, and never as a half-old half-new mix.
        """
        with self._limits_lock:
            size, latency = self._limits
            limits = self._checked_limits(
                size if max_batch_size is None else max_batch_size,
                latency if max_latency is None else max_latency)
            self._limits = limits
        return limits

    @property
    def max_batch_size(self) -> int:
        return self._limits[0]

    @max_batch_size.setter
    def max_batch_size(self, value: int) -> None:
        self.configure(max_batch_size=value)

    @property
    def max_latency(self) -> float:
        return self._limits[1]

    @max_latency.setter
    def max_latency(self, value: float) -> None:
        self.configure(max_latency=value)

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def submit(self, model_key, nodes) -> _Ticket:
        """Enqueue one request; returns a ticket to block on."""
        nodes = np.atleast_1d(np.asarray(nodes, dtype=np.int64))
        if nodes.ndim != 1 or nodes.size == 0:
            raise ValueError("a request must name at least one node index")
        ticket = _Ticket(model_key, nodes, submitted_at=self._clock())
        with self._stats_lock:
            self.stats.requests += 1
            self.stats.rows_requested += int(nodes.size)
            self._inflight += 1
        self._queue.put(ticket)
        return ticket

    def depth(self) -> int:
        """Tickets submitted but not yet resolved or failed — the queue-depth
        signal admission control sheds on (queued + forming + executing)."""
        with self._stats_lock:
            return self._inflight

    def predict_scores(self, model_key, nodes, timeout: float | None = 30.0) -> np.ndarray:
        """Submit and wait: the synchronous convenience used by the service.

        When no dispatch thread is running, the queued batch is executed
        inline (still through the exact batch path), so the batcher works
        in single-threaded library use without background machinery.
        """
        ticket = self.submit(model_key, nodes)
        if self._thread is None:
            self.run_once()
        return ticket.result(timeout)

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    def start(self) -> "MicroBatcher":
        """Run the dispatch loop on a daemon thread (idempotent)."""
        if self._thread is None:
            self._stopping.clear()
            self._thread = threading.Thread(target=self._loop, daemon=True,
                                            name="repro-serving-batcher")
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop the dispatch thread after flushing queued requests.

        Also flushes when no thread was ever started, so closing a queue in
        inline/library use never strands submitted tickets."""
        if self._thread is not None:
            self._stopping.set()
            self._queue.put(None)  # wake the blocked get()
            self._thread.join()
            self._thread = None
        self.run_once()  # resolve anything queued or racing the shutdown

    def __enter__(self) -> "MicroBatcher":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _loop(self) -> None:
        while not self._stopping.is_set():
            try:
                first = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            if first is None:
                continue
            # One atomic snapshot of both limits per forming batch: a
            # concurrent configure() applies cleanly from the next batch.
            max_batch_size, max_latency = self._limits
            batch = [first]
            rows = int(first.nodes.size)
            deadline = self._clock() + max_latency
            while rows < max_batch_size:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    break
                try:
                    ticket = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if ticket is None:
                    break
                batch.append(ticket)
                rows += int(ticket.nodes.size)
            self._execute(batch)

    def run_once(self) -> int:
        """Drain everything currently queued into one batch; returns the
        number of requests executed.  Deterministic (no timing involved):
        the test/benchmark entry point."""
        batch: list[_Ticket] = []
        while True:
            try:
                ticket = self._queue.get_nowait()
            except queue.Empty:
                break
            if ticket is not None:
                batch.append(ticket)
        if batch:
            self._execute(batch)
        return len(batch)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _execute(self, batch: list[_Ticket]) -> None:
        """One stacked matmul per distinct model in ``batch``."""
        try:
            self._execute_batch(batch)
        finally:
            with self._stats_lock:
                self._inflight -= len(batch)

    def _execute_batch(self, batch: list[_Ticket]) -> None:
        flushed_at = self._clock()
        by_model: dict = {}
        for ticket in batch:
            ticket.execute_at = flushed_at
            by_model.setdefault(ticket.model_key, []).append(ticket)
        if self._observer is not None:
            backlog = self._queue.qsize()  # still queued behind this flush
            for model_key, tickets in by_model.items():
                self._observer.observe_queue_depth(self._label(model_key),
                                                   len(tickets) + backlog)
        with self._stats_lock:
            self.stats.batches += 1
            for model_key, tickets in by_model.items():
                # Coalescing and row extrema are per model: tickets of
                # different models in one flush still cost one matmul each,
                # so nothing coalesced and no larger stack was multiplied.
                label = self._label(model_key)
                rows = sum(int(ticket.nodes.size) for ticket in tickets)
                self.stats.max_batch_rows = max(self.stats.max_batch_rows, rows)
                self.stats.per_model_max_rows[label] = max(
                    self.stats.per_model_max_rows.get(label, 0), rows)
                if len(tickets) > 1:
                    self.stats.coalesced_requests += len(tickets)
                    self.stats.per_model_coalesced[label] = \
                        self.stats.per_model_coalesced.get(label, 0) + len(tickets)
        try:
            for model_key, tickets in by_model.items():
                stacked = np.concatenate([ticket.nodes for ticket in tickets])
                compute_started = self._clock()
                for ticket in tickets:
                    ticket.compute_started_at = compute_started
                try:
                    scores = self._compute(model_key, stacked)
                except Exception as error:  # forwarded to the blocked callers
                    compute_ended = self._clock()
                    for ticket in tickets:
                        ticket.compute_ended_at = compute_ended
                        ticket._fail(error)
                    self._observe(model_key, tickets, failed=True)
                    continue
                compute_ended = self._clock()
                for ticket in tickets:
                    ticket.compute_ended_at = compute_ended
                with self._stats_lock:
                    self.stats.matmuls += 1
                    label = self._label(model_key)
                    per_model = self.stats.per_model_matmuls
                    per_model[label] = per_model.get(label, 0) + 1
                offset = 0
                for ticket in tickets:
                    ticket._resolve(scores[offset:offset + ticket.nodes.size])
                    offset += ticket.nodes.size
                self._observe(model_key, tickets, failed=False)
        except BaseException as error:
            # A non-Exception (KeyboardInterrupt, SystemExit, ...) from the
            # compute hook must not strand callers blocked on their tickets
            # until timeout: fail every still-unresolved ticket, then
            # re-raise for the dispatch loop / inline caller to handle.
            for ticket in batch:
                if not ticket.done():
                    ticket._fail(error)
            raise

    def _observe(self, model_key, tickets: list[_Ticket], *, failed: bool) -> None:
        if self._observer is None:
            return
        self._observer.observe_batch(self._label(model_key), tickets,
                                     self._clock(), failed=failed)
