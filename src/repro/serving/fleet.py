"""The replica-sharded serving fleet over the shared-filesystem substrate.

Several ``repro serve`` processes share one content-addressed registry and
one *fleet directory*; this module turns them into a fleet the same way
PR 3 turned processes into a sweep cluster — with nothing but atomic
filesystem primitives:

* **Membership is a lease.**  Each replica holds one heartbeat lease
  (:class:`~repro.distributed.lease.LeaseManager`) in the fleet directory,
  advertising its host, port and loaded model digests through the lease's
  ``meta`` payload.  A replica whose heartbeat stops is *expired* after one
  TTL and simply vanishes from the membership list — crash detection needs
  no coordinator process.
* **Routing is a consistent-hash ring over model digests**
  (:class:`~repro.serving.hashring.HashRing`).  Every member computes the
  same digest→replica ownership from the same lease directory, so each
  replica's LRU session cache stays hot and a membership change moves only
  ~1/N of the keys.  Ownership is an *optimisation*, never a correctness
  boundary: any replica can serve any model (scores are bitwise pinned to
  the offline reference), so routing falls back to local execution whenever
  the ring is empty or a peer is unreachable.
* **Rollout is pre-warm-then-retire.**  A :class:`RegistryWatcher` polls
  each served name's ``latest.json``; when the pointer flips it builds the
  new version's session *first* (bundle load, graph, propagation — the
  expensive half) and only then retires the old version's queues, so a
  rolling model rollout never pays a cold build on a live request and
  ``@latest`` traffic flips with zero downtime.

The lease races that PR 7 fixed are load-bearing here: ``release`` and
``heartbeat`` verify acquisition nonces, so a replica that was partitioned
and reaped can never clobber the membership entry of a replacement.
"""

from __future__ import annotations

import os
import threading
import uuid
from dataclasses import dataclass, field
from pathlib import Path

from repro.distributed.lease import Lease, LeaseManager
from repro.exceptions import ConfigurationError
from repro.serving.hashring import DEFAULT_VNODES, HashRing

DEFAULT_FLEET_TTL = 10.0


def default_replica_id(host: str, port: int) -> str:
    """A filename-safe, collision-resistant replica id for this process."""
    safe_host = str(host).replace(":", "_").replace("/", "_")
    return f"{safe_host}-{port}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


@dataclass(frozen=True)
class Replica:
    """One fleet member as advertised on its lease."""

    replica_id: str
    host: str
    port: int
    digests: tuple
    heartbeat_at: float
    ttl: float
    expired: bool = False
    # Sorted (graph key, epoch) pairs — which version of each serving graph
    # this replica is answering against.  Agreement across the fleet means
    # every live replica applied the same edge-delta sequence.
    graph_epochs: tuple = ()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @classmethod
    def from_lease(cls, lease: Lease, *, expired: bool = False) -> "Replica":
        meta = lease.meta or {}
        epochs = meta.get("graph_epochs", {}) or {}
        return cls(replica_id=lease.group_id,
                   host=str(meta.get("host", "")),
                   port=int(meta.get("port", 0)),
                   digests=tuple(str(d) for d in meta.get("digests", ())),
                   heartbeat_at=lease.heartbeat_at, ttl=lease.ttl,
                   expired=expired,
                   graph_epochs=tuple(sorted(
                       (str(key), int(epoch))
                       for key, epoch in epochs.items())))

    def as_dict(self) -> dict:
        return {"replica_id": self.replica_id, "host": self.host,
                "port": self.port, "digests": list(self.digests),
                "heartbeat_at": self.heartbeat_at, "ttl": self.ttl,
                "expired": self.expired,
                "graph_epochs": {key: epoch
                                 for key, epoch in self.graph_epochs}}


class FleetMember:
    """A replica's own membership: one lease plus its heartbeat pump.

    ``join()`` claims the lease, ``start()`` launches a daemon thread that
    refreshes it every ``ttl/3``; a lost lease (partition long enough to be
    reaped) is re-acquired on the next beat — the replica keeps serving
    throughout and its membership self-heals.  ``advertise()`` updates the
    digest set the lease carries (the watcher calls it after a rollout).
    """

    def __init__(self, fleet_dir: str | os.PathLike, replica_id: str,
                 host: str, port: int, *, ttl: float = DEFAULT_FLEET_TTL,
                 clock=None):
        self.replica_id = replica_id
        self.host = host
        self.port = int(port)
        self.manager = LeaseManager(fleet_dir, ttl=ttl, clock=clock)
        self._digests: tuple = ()
        self._graph_epochs: dict[str, int] = {}
        self._lease: Lease | None = None
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.rejoins = 0  # times the pump re-claimed a lost lease

    def _meta(self) -> dict:
        return {"host": self.host, "port": self.port,
                "digests": list(self._digests),
                "graph_epochs": dict(self._graph_epochs)}

    @property
    def lease(self) -> Lease | None:
        with self._lock:
            return self._lease

    # -- lifecycle ------------------------------------------------------ #
    def join(self, digests=(), graph_epochs=None) -> "FleetMember":
        with self._lock:
            self._digests = tuple(sorted(digests))
            if graph_epochs is not None:
                self._graph_epochs = {str(key): int(epoch)
                                      for key, epoch in graph_epochs.items()}
            lease = self.manager.acquire(self.replica_id, self.replica_id,
                                         meta=self._meta())
            if lease is None:
                raise ConfigurationError(
                    f"replica id {self.replica_id!r} already holds a live "
                    f"lease under {self.manager.root}; replica ids must be "
                    f"unique per fleet")
            self._lease = lease
        return self

    def start(self) -> "FleetMember":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name=f"fleet-heartbeat-{self.replica_id}",
                daemon=True)
            self._thread.start()
        return self

    def _run(self) -> None:
        interval = max(self.manager.ttl / 3.0, 0.05)
        while not self._stop.wait(interval):
            self.heartbeat_now()

    def heartbeat_now(self) -> bool:
        """One pump beat: refresh the lease, re-joining if it was lost.

        Exposed (rather than thread-only) so tests can drive the pump
        deterministically under an injected clock.
        """
        with self._lock:
            meta = self._meta()
            if self._lease is not None:
                refreshed = self.manager.heartbeat(self._lease, meta=meta)
                if refreshed is not None:
                    self._lease = refreshed
                    return True
                self._lease = None
            fresh = self.manager.acquire(self.replica_id, self.replica_id,
                                         meta=meta)
            if fresh is None:
                return False  # someone else holds our id; retry next beat
            self._lease = fresh
            self.rejoins += 1
            return True

    def advertise(self, digests, graph_epochs=None) -> None:
        """Replace the advertised digest set (and, when given, the graph
        epoch map) and push the new meta out immediately."""
        with self._lock:
            self._digests = tuple(sorted(digests))
            if graph_epochs is not None:
                self._graph_epochs = {str(key): int(epoch)
                                      for key, epoch in graph_epochs.items()}
        self.heartbeat_now()

    def leave(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        with self._lock:
            if self._lease is not None:
                self.manager.release(self._lease)
                self._lease = None

    close = leave

    def __enter__(self) -> "FleetMember":
        return self

    def __exit__(self, *exc_info) -> None:
        self.leave()


@dataclass(frozen=True)
class FleetStatus:
    """A census of the fleet directory (``repro fleet status``)."""

    fleet_dir: Path
    replicas: list = field(default_factory=list)  # live and expired
    now: float = 0.0

    @property
    def live(self) -> list:
        return [replica for replica in self.replicas if not replica.expired]

    def summary(self) -> str:
        lines = [f"fleet {self.fleet_dir}: {len(self.replicas)} replica(s), "
                 f"{len(self.live)} live"]
        for replica in sorted(self.replicas, key=lambda r: r.replica_id):
            age = max(0.0, self.now - replica.heartbeat_at)
            state = "EXPIRED" if replica.expired else "live"
            digests = ",".join(d[:12] for d in replica.digests) or "-"
            epochs = ",".join(f"{key}@e{epoch}"
                              for key, epoch in replica.graph_epochs) or "-"
            lines.append(f"  {replica.replica_id:<28} {replica.address:<21} "
                         f"{state:<7} heartbeat {age:5.1f}s ago  "
                         f"models {digests}  graphs {epochs}")
        ring = HashRing(replica.replica_id for replica in self.live)
        digests = sorted({d for replica in self.live for d in replica.digests})
        if digests and len(ring):
            lines.append("  routing (consistent hash over model digests):")
            for digest in digests:
                lines.append(f"    {digest[:12]} -> {ring.owner(digest)}")
        graph_keys = sorted({key for replica in self.live
                             for key, _epoch in replica.graph_epochs})
        if graph_keys:
            lines.append("  graph epochs (fleet agreement):")
            for key in graph_keys:
                seen = sorted({epoch for replica in self.live
                               for k, epoch in replica.graph_epochs
                               if k == key})
                state = (f"agreed @e{seen[0]}" if len(seen) == 1
                         else f"DISAGREE {seen}")
                lines.append(f"    {key} -> {state}")
        return "\n".join(lines)


class FleetView:
    """The read side of membership: who is alive, who owns which digest.

    Stateless over the lease directory — every caller (each replica's
    router, ``repro fleet status``, the ``/fleet`` endpoint) recomputes the
    same view from the same files, so there is no membership cache to
    invalidate and no coordinator to crash.
    """

    def __init__(self, fleet_dir: str | os.PathLike, *, clock=None,
                 vnodes: int = DEFAULT_VNODES, cache_ttl: float = 0.0):
        self.manager = LeaseManager(fleet_dir, clock=clock)
        self.vnodes = int(vnodes)
        # A sub-TTL membership cache: the per-request routing path must not
        # re-scan the lease directory for every predict.  0 disables it
        # (status/tests want the uncached truth).
        self.cache_ttl = float(cache_ttl)
        self._cached: tuple[float, list] | None = None

    @property
    def fleet_dir(self) -> Path:
        return self.manager.root

    def _scan(self) -> list[Replica]:
        out = []
        for group_id in self.manager.group_ids():
            lease = self.manager.read(group_id)
            if lease is None:
                continue
            out.append(Replica.from_lease(
                lease, expired=self.manager.is_expired(lease)))
        return out

    def replicas(self, include_expired: bool = False) -> list[Replica]:
        if self.cache_ttl > 0.0:
            now = self.manager.clock()
            if self._cached is None or now >= self._cached[0]:
                self._cached = (now + self.cache_ttl, self._scan())
            scanned = self._cached[1]
        else:
            scanned = self._scan()
        return [replica for replica in scanned
                if include_expired or not replica.expired]

    def ring(self) -> HashRing:
        return HashRing((replica.replica_id for replica in self.replicas()),
                        vnodes=self.vnodes)

    def route(self, digest: str, count: int = 2) -> list[Replica]:
        """Live replicas for ``digest`` in failover order (owner first).

        An expired lease never appears here, which is exactly the one-hop
        failover rule: when the owner dies, the ring over the survivors
        re-assigns its arc to the next replica within one TTL.
        """
        live = {replica.replica_id: replica for replica in self.replicas()}
        ring = HashRing(live, vnodes=self.vnodes)
        return [live[rid] for rid in ring.preference(digest, count)]

    def owner(self, digest: str) -> Replica | None:
        routed = self.route(digest, 1)
        return routed[0] if routed else None

    def status(self) -> FleetStatus:
        return FleetStatus(fleet_dir=self.fleet_dir,
                           replicas=self.replicas(include_expired=True),
                           now=self.manager.clock())

    def as_dict(self) -> dict:
        """JSON shape shared by ``/fleet`` and ``repro fleet status``."""
        replicas = self.replicas(include_expired=True)
        live = [replica for replica in replicas if not replica.expired]
        ring = HashRing((replica.replica_id for replica in live),
                        vnodes=self.vnodes)
        digests = sorted({d for replica in live for d in replica.digests})
        graph_keys = sorted({key for replica in live
                             for key, _epoch in replica.graph_epochs})
        graph_epochs = {}
        for key in graph_keys:
            seen = sorted({epoch for replica in live
                           for k, epoch in replica.graph_epochs if k == key})
            graph_epochs[key] = {"epochs": seen, "agreed": len(seen) == 1}
        return {
            "fleet_dir": str(self.fleet_dir),
            "replicas": [replica.as_dict() for replica in replicas],
            "routing": {digest: ring.owner(digest) for digest in digests},
            "graph_epochs": graph_epochs,
        }


class FleetRouter:
    """One replica's routing decisions, as the HTTP frontend consumes them.

    Wraps this replica's :class:`FleetMember` and a (briefly cached)
    :class:`FleetView`: given a model digest, :meth:`peers_for` answers
    "which live *peers* should serve this instead of me" — an empty list
    means serve locally, either because this replica owns the digest's ring
    arc or because no live peer does (the local fallback that keeps routing
    an optimisation rather than a correctness boundary).
    """

    def __init__(self, member: FleetMember, *, proxy: bool = True,
                 proxy_timeout: float = 10.0, cache_ttl: float = 0.25,
                 vnodes: int = DEFAULT_VNODES):
        self.member = member
        self.view = FleetView(member.manager.root, clock=member.manager.clock,
                              vnodes=vnodes, cache_ttl=cache_ttl)
        self.proxy = bool(proxy)  # False: 307-redirect instead of proxying
        self.proxy_timeout = float(proxy_timeout)

    @property
    def replica_id(self) -> str:
        return self.member.replica_id

    def peers_for(self, digest: str, count: int = 2) -> list[Replica]:
        """Live peers for ``digest`` in failover order; ``[]`` = serve here.

        ``count`` caps the forwarding chain: the owner plus at most one
        backup (one-hop failover) — everything past that is the local
        fallback, never a longer relay.
        """
        routed = self.view.route(digest, count=count)
        if not routed or routed[0].replica_id == self.member.replica_id:
            return []
        return [replica for replica in routed
                if replica.replica_id != self.member.replica_id]

    def as_dict(self) -> dict:
        payload = self.view.as_dict()
        payload["self"] = self.member.replica_id
        payload["rejoins"] = self.member.rejoins
        payload["mode"] = "proxy" if self.proxy else "redirect"
        return payload


class RegistryWatcher:
    """Hot-reload: poll ``latest.json`` per served name, pre-warm then retire.

    Each poll resolves every watched name's ``@latest``; on a flip the new
    version's session is built immediately (so the next ``@latest`` request
    hits a warm cache — ``InferenceService`` resolves ``@latest`` per call,
    so traffic switches by itself) and the superseded version's sessions
    and queues are retired afterwards.  ``on_flip(name, old, new)`` lets the
    serving process re-advertise its loaded digests on the fleet lease.
    """

    def __init__(self, registry, service, names, *, interval: float = 1.0,
                 on_flip=None):
        self.registry = registry
        self.service = service
        self.names = list(dict.fromkeys(names))
        self.interval = float(interval)
        self.on_flip = on_flip
        self._latest: dict[str, str] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.flips = 0
        # Prime with what is currently @latest so startup (the serve command
        # already pre-warmed its models) does not count as a rollout.
        for name in self.names:
            digest = self._current_digest(name)
            if digest is not None:
                self._latest[name] = digest

    def _current_digest(self, name: str) -> str | None:
        try:
            return self.registry.resolve(f"{name}@latest").digest
        except ConfigurationError:
            return None  # not published yet (or torn); check again next poll

    def poll_once(self) -> list[tuple[str, str | None, str]]:
        """One poll pass; returns the ``(name, old, new)`` flips handled."""
        flips = []
        for name in self.names:
            new = self._current_digest(name)
            old = self._latest.get(name)
            if new is None or new == old:
                continue
            # Pre-warm first: the expensive session build happens here, off
            # the request path, while old-version traffic keeps flowing.
            self.service.prewarm(f"{name}@{new}")
            self._latest[name] = new
            if old is not None and old not in self._latest.values():
                self.service.retire_version(old)
            self.flips += 1
            flips.append((name, old, new))
            if self.on_flip is not None:
                self.on_flip(name, old, new)
        return flips

    # -- lifecycle ------------------------------------------------------ #
    def start(self) -> "RegistryWatcher":
        if self._thread is None:
            self._thread = threading.Thread(target=self._run,
                                            name="registry-watcher",
                                            daemon=True)
            self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.poll_once()
            except Exception:  # noqa: BLE001 - a torn publish mid-poll must
                pass           # not kill the watcher; next poll retries.

    def close(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def __enter__(self) -> "RegistryWatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def watch_models(service, refs, **kwargs) -> RegistryWatcher:
    """A watcher over the *names* behind ``refs`` (``name@version`` → name)."""
    from repro.serving.registry import parse_model_ref

    names = [parse_model_ref(ref)[0] for ref in refs]
    return RegistryWatcher(service.registry, service, names, **kwargs)
