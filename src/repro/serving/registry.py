"""A content-addressed, filesystem-backed model registry.

The paper's end product is a *released* model: after Theorem 1 has been paid
for, Θ_priv plus the public encoder is just data and can be shipped freely.
The registry turns that release into an operable artefact:

.. code-block:: text

    registry_root/
      models/<name>/<digest16>/model.npz       the save_gcon release archive
      models/<name>/<digest16>/manifest.json   privacy stamp + serving config
      models/<name>/latest.json                pointer to the newest version

Versions are addressed by the sha256 of the release content
(:func:`repro.core.persistence.release_digest` — array names, dtypes, shapes
and bytes, independent of archive metadata), following the same hashing
conventions as the :class:`~repro.core.persistence.PreparationStore`.
Publishing the identical model twice never rewrites its bundle; two
different releases under one name coexist as two versions, and ``latest``
always points at the most recent *publish* (re-publishing an old version
is therefore an explicit rollback).

All writes are atomic (temp file + rename, via
:func:`~repro.core.persistence.atomic_savez` and
:func:`~repro.utils.fs.atomic_write_text`), and the manifest is written
*after* the archive so a crash never leaves a resolvable-but-torn version:
readers only see versions whose manifest exists.
"""

from __future__ import annotations

import json
import math
import os
import time
import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.inference import INFERENCE_MODES
from repro.core.persistence import (
    atomic_savez,
    load_gcon,
    release_arrays,
    release_digest,
)
from repro.exceptions import ConfigurationError
from repro.utils.fs import atomic_write_text

MANIFEST_FORMAT_VERSION = 1
_DIGEST_DIR_CHARS = 16


def parse_model_ref(ref: str) -> tuple[str, str]:
    """Split ``"name"``, ``"name@latest"`` or ``"name@<digest-prefix>"``.

    Returns ``(name, version)`` where ``version`` is ``"latest"`` or a
    lowercase hex digest prefix.
    """
    ref = ref.strip()
    if not ref:
        raise ConfigurationError("empty model reference")
    name, _, version = ref.partition("@")
    name = name.strip()
    version = version.strip() or "latest"
    if not name:
        raise ConfigurationError(f"model reference {ref!r} has no name")
    if version != "latest":
        version = version.lower()
        if not all(c in "0123456789abcdef" for c in version):
            raise ConfigurationError(
                f"model version {version!r} is neither 'latest' nor a hex digest prefix")
    return name, version


@dataclass(frozen=True)
class ModelRecord:
    """One resolved registry version: where it lives and what it claims."""

    name: str
    digest: str
    path: Path          # the version directory
    manifest: dict

    @property
    def ref(self) -> str:
        return f"{self.name}@{self.digest[:12]}"

    @property
    def archive_path(self) -> Path:
        return self.path / "model.npz"

    @property
    def epsilon(self) -> float:
        return float(self.manifest["privacy"]["epsilon"])

    @property
    def inference_mode(self) -> str:
        return str(self.manifest["inference"]["mode"])


class ModelRegistry:
    """Publish, resolve, list and verify released models under one root."""

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)

    # -- layout --------------------------------------------------------- #
    @property
    def models_dir(self) -> Path:
        return self.root / "models"

    def name_dir(self, name: str) -> Path:
        if not name or "/" in name or name.startswith("."):
            raise ConfigurationError(f"invalid model name {name!r}")
        return self.models_dir / name

    def version_dir(self, name: str, digest: str) -> Path:
        return self.name_dir(name) / digest[:_DIGEST_DIR_CHARS]

    def latest_path(self, name: str) -> Path:
        return self.name_dir(name) / "latest.json"

    # ------------------------------------------------------------------ #
    # publish
    # ------------------------------------------------------------------ #
    def publish(self, model, name: str, *, inference_mode: str = "private",
                training: dict | None = None) -> ModelRecord:
        """Write ``model`` (a fitted GCON) as a versioned bundle under ``name``.

        ``inference_mode`` is stamped into the manifest as the mode the server
        uses by default (Eq. 16 private vs Eq. 11 public); ``training``
        carries provenance metadata (dataset preset, scale, seeds, sweep
        context digest, recorded micro-F1 — anything JSON-serialisable).
        Returns the :class:`ModelRecord`.  Publishing bitwise-identical
        content twice returns the existing version without rewriting its
        bundle — but ``latest`` always re-points at what was just published,
        so re-publishing an old version is the explicit rollback mechanism,
        not a silent no-op.
        """
        if inference_mode not in INFERENCE_MODES:
            raise ConfigurationError(
                f"inference_mode must be one of {INFERENCE_MODES}, got {inference_mode!r}")
        arrays = release_arrays(model)
        digest = release_digest(arrays)
        version_dir = self.version_dir(name, digest)
        manifest_path = version_dir / "manifest.json"
        if manifest_path.exists():
            record = self._read_record(name, version_dir)
            self._point_latest(name, digest)
            return record

        config = model.config
        perturbation = model.perturbation_
        mechanism = ("none (non-private)" if config.non_private or
                     not perturbation.requires_noise else
                     "objective perturbation (Erlang-radius spherical noise)")
        manifest = {
            "format": MANIFEST_FORMAT_VERSION,
            "name": name,
            "digest": digest,
            "privacy": {
                "epsilon": perturbation.epsilon,
                "delta": perturbation.delta,
                "mechanism": mechanism,
            },
            "inference": {
                "mode": inference_mode,
                "alpha": config.alpha,
                "inference_alpha": config.effective_inference_alpha,
                "propagation_steps": [
                    "inf" if math.isinf(step) else int(step)
                    for step in config.normalized_steps
                ],
                "num_classes": int(model.num_classes_),
            },
            "training": dict(training or {}),
            "created_unix": time.time(),
        }
        atomic_savez(version_dir / "model.npz", arrays)
        atomic_write_text(manifest_path,
                          json.dumps(manifest, sort_keys=True, indent=2) + "\n")
        self._point_latest(name, digest)
        return ModelRecord(name=name, digest=digest, path=version_dir,
                           manifest=manifest)

    def _point_latest(self, name: str, digest: str) -> None:
        atomic_write_text(self.latest_path(name), json.dumps(
            {"digest": digest}, sort_keys=True) + "\n")

    # ------------------------------------------------------------------ #
    # resolve / load
    # ------------------------------------------------------------------ #
    def resolve(self, ref: str) -> ModelRecord:
        """Resolve ``"name"``/``"name@latest"``/``"name@<digest-prefix>"``."""
        name, version = parse_model_ref(ref)
        name_dir = self.name_dir(name)
        if not name_dir.exists():
            raise ConfigurationError(
                f"model {name!r} is not in the registry at {self.root} "
                f"(known: {', '.join(self.names()) or 'none'})")
        if version == "latest":
            latest = self.latest_path(name)
            if not latest.exists():
                raise ConfigurationError(f"model {name!r} has no latest pointer")
            digest = str(json.loads(latest.read_text(encoding="utf-8"))["digest"])
            return self._read_record(name, self.version_dir(name, digest))
        matches = [path for path in sorted(name_dir.iterdir())
                   if path.is_dir() and path.name.startswith(version[:_DIGEST_DIR_CHARS])
                   and (path / "manifest.json").exists()]
        if not matches:
            raise ConfigurationError(f"no version of {name!r} matches {version!r}")
        if len(matches) > 1:
            raise ConfigurationError(
                f"version prefix {version!r} of {name!r} is ambiguous "
                f"({len(matches)} matches); use more digits")
        record = self._read_record(name, matches[0])
        if not record.digest.startswith(version):
            raise ConfigurationError(f"no version of {name!r} matches {version!r}")
        return record

    def load(self, ref: str, *, mmap: bool = False):
        """Load a served model: ``(GCON, ModelRecord)`` for ``ref``.

        With ``mmap=True`` the bundle's arrays are memory-mapped read-only
        (``np.load``-style ``mmap_mode="r"`` semantics, implemented for the
        uncompressed ``.npz`` members the registry writes) instead of
        copied: replica cold-start touches no array bytes until inference
        does, and version directories are immutable (content-addressed), so
        a mapped bundle can never change underneath a running session.
        Scores from a mapped model are bitwise identical to an eager load.
        """
        record = self.resolve(ref)
        mode = "r" if mmap else None
        return load_gcon(record.archive_path, mmap_mode=mode), record

    def _read_record(self, name: str, version_dir: Path) -> ModelRecord:
        manifest_path = version_dir / "manifest.json"
        if not manifest_path.exists():
            raise ConfigurationError(
                f"registry version {version_dir} has no manifest "
                f"(torn publish?); republish the model")
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        version = int(manifest.get("format", MANIFEST_FORMAT_VERSION))
        if version != MANIFEST_FORMAT_VERSION:
            raise ConfigurationError(f"unsupported manifest format {version}")
        return ModelRecord(name=name, digest=str(manifest["digest"]),
                           path=version_dir, manifest=manifest)

    # ------------------------------------------------------------------ #
    # listing / integrity
    # ------------------------------------------------------------------ #
    def names(self) -> list[str]:
        """Model names with at least one committed version (sorted).

        A name directory holding only torn publishes (version dirs without a
        manifest) or nothing at all is invisible, matching :meth:`resolve`.
        """
        if not self.models_dir.exists():
            return []
        return sorted(
            path.name for path in self.models_dir.iterdir()
            if path.is_dir() and any(
                child.is_dir() and (child / "manifest.json").exists()
                for child in path.iterdir()))

    def list(self, name: str | None = None) -> list[ModelRecord]:
        """All committed versions (manifest present), newest publish last.

        Ordered by the manifest's ``created_unix`` stamp (digest as the
        tiebreaker), so ``repro models`` shows publish history in publish
        order — not in the hash order the digest-named directories happen
        to sort into lexicographically.
        """
        records: list[ModelRecord] = []
        for model_name in ([name] if name is not None else self.names()):
            name_dir = self.name_dir(model_name)
            if not name_dir.exists():
                continue
            versions = [self._read_record(model_name, version_dir)
                        for version_dir in name_dir.iterdir()
                        if version_dir.is_dir()
                        and (version_dir / "manifest.json").exists()]
            versions.sort(key=lambda record: (
                float(record.manifest.get("created_unix", 0.0)), record.digest))
            records.extend(versions)
        return records

    def verify(self, ref: str) -> ModelRecord:
        """Integrity-check one version: recompute the content digest from the
        stored archive and compare it to the manifest's claim.  Returns the
        record on success and raises :class:`ConfigurationError` on tampering
        or corruption."""
        record = self.resolve(ref)
        try:
            with np.load(record.archive_path, allow_pickle=False) as archive:
                actual = release_digest({key: archive[key] for key in archive.files})
        except (OSError, ValueError, zipfile.BadZipFile) as error:
            raise ConfigurationError(
                f"integrity check failed for {record.ref}: unreadable archive "
                f"({error!r})") from error
        if actual != record.digest:
            raise ConfigurationError(
                f"integrity check failed for {record.ref}: stored archive "
                f"hashes to {actual[:12]}, manifest claims {record.digest[:12]}")
        return record
