"""Classification metrics used throughout the evaluation (micro/macro F1, accuracy).

The paper reports the micro-averaged F1 score, which for single-label
multi-class classification equals plain accuracy; both are provided, along
with macro-F1 and a confusion matrix for finer-grained analysis.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError


def _check_labels(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.int64).ravel()
    y_pred = np.asarray(y_pred, dtype=np.int64).ravel()
    if y_true.shape != y_pred.shape:
        raise ConfigurationError(
            f"y_true and y_pred must have the same shape, got {y_true.shape} vs {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ConfigurationError("cannot compute a metric on empty label arrays")
    return y_true, y_pred


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exactly correct predictions."""
    y_true, y_pred = _check_labels(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray,
                     num_classes: int | None = None) -> np.ndarray:
    """Confusion matrix ``C`` with ``C[i, j]`` = count of true class i predicted as j."""
    y_true, y_pred = _check_labels(y_true, y_pred)
    if num_classes is None:
        num_classes = int(max(y_true.max(), y_pred.max())) + 1
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


def micro_f1(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Micro-averaged F1 score.

    Micro-averaging pools true positives, false positives and false negatives
    over classes; for single-label classification this equals accuracy, which
    is the quantity Figure 1 of the paper reports.
    """
    matrix = confusion_matrix(y_true, y_pred)
    true_positive = float(np.trace(matrix))
    false_positive = float(matrix.sum() - np.trace(matrix))
    false_negative = false_positive
    denominator = 2.0 * true_positive + false_positive + false_negative
    if denominator == 0:
        return 0.0
    return 2.0 * true_positive / denominator


def macro_f1(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Macro-averaged F1: the unweighted mean of per-class F1 scores."""
    matrix = confusion_matrix(y_true, y_pred)
    num_classes = matrix.shape[0]
    scores = []
    for cls in range(num_classes):
        tp = float(matrix[cls, cls])
        fp = float(matrix[:, cls].sum() - tp)
        fn = float(matrix[cls, :].sum() - tp)
        denominator = 2.0 * tp + fp + fn
        if denominator == 0:
            continue
        scores.append(2.0 * tp / denominator)
    return float(np.mean(scores)) if scores else 0.0


def roc_auc(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve for binary labels via the rank statistic.

    Used by the edge-inference attacks: ``y_true`` marks real edges (1) versus
    non-edges (0) and ``scores`` are the attack's confidence values.
    """
    y_true = np.asarray(y_true, dtype=np.int64).ravel()
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if y_true.shape != scores.shape:
        raise ConfigurationError("y_true and scores must have the same shape")
    positives = scores[y_true == 1]
    negatives = scores[y_true == 0]
    if positives.size == 0 or negatives.size == 0:
        raise ConfigurationError("roc_auc requires at least one positive and one negative")
    order = np.argsort(np.concatenate([positives, negatives]), kind="mergesort")
    ranks = np.empty(order.size, dtype=np.float64)
    sorted_scores = np.concatenate([positives, negatives])[order]
    # Average ranks for ties.
    ranks[order] = np.arange(1, order.size + 1)
    unique, inverse, counts = np.unique(sorted_scores, return_inverse=True, return_counts=True)
    if unique.size != sorted_scores.size:
        cumulative = np.cumsum(counts)
        average_rank = cumulative - (counts - 1) / 2.0
        ranks[order] = average_rank[inverse]
    rank_sum = ranks[: positives.size].sum()
    auc = (rank_sum - positives.size * (positives.size + 1) / 2.0) \
        / (positives.size * negatives.size)
    return float(auc)
