"""Experiment runner: method x dataset x privacy-budget sweeps with repeats.

This is the machinery behind the benchmark harness.  A *method factory* is a
callable ``(epsilon, delta, seed) -> estimator`` returning an object with the
``fit(graph, seed)`` / ``predict(graph, mode)`` interface shared by GCON and
all baselines; the runner takes care of repeated runs, seeding, scoring and
aggregation into the series the paper's figures plot.

Since the runtime subsystem landed, :class:`ExperimentRunner` is a thin
registry front-end over :class:`repro.runtime.ParallelExperimentRunner`: the
sweep is expanded into independent seeded cells and handed to the engine,
which can execute them serially, over a process pool (``jobs > 1``, requires
picklable factories and graphs) or resume them from an on-disk store --
always with identical numbers.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.graphs.graph import GraphDataset
from repro.runtime.cells import ExperimentResult, SweepCell, expand_cells
from repro.runtime.engine import ParallelExperimentRunner
from repro.runtime.store import JsonlResultStore
from repro.runtime.workers import score_estimator

__all__ = [
    "ExperimentResult",
    "ExperimentRunner",
    "aggregate_results",
    "series_from_results",
]


def aggregate_results(results: list[ExperimentResult]) -> dict[tuple[str, str, float], dict]:
    """Group results by (method, dataset, epsilon) into summary statistics.

    Reports mean, sample standard deviation (``ddof=1``, the paper's
    error-bar convention; 0.0 for a single repeat), min, max and count.
    """
    groups: dict[tuple[str, str, float], list[float]] = {}
    for result in results:
        key = (result.method, result.dataset, result.epsilon)
        groups.setdefault(key, []).append(result.micro_f1)
    return {
        key: {
            "mean": float(np.mean(values)),
            "std": float(np.std(values, ddof=1)) if len(values) > 1 else 0.0,
            "min": float(np.min(values)),
            "max": float(np.max(values)),
            "count": len(values),
        }
        for key, values in groups.items()
    }


MethodFactory = Callable[[float, float, int], object]


class _RegistryCellRunner:
    """Executes one cell against in-memory factories and graphs.

    Picklable exactly when its payload is (module-level factories, array-based
    graphs); with the default ``jobs=1`` it never crosses a process boundary
    so arbitrary closures work unchanged.
    """

    def __init__(self, methods: dict[str, MethodFactory],
                 graphs: dict[str, GraphDataset],
                 deltas: dict[str, float], inference_mode: str):
        self.methods = methods
        self.graphs = graphs
        self.deltas = deltas
        self.inference_mode = inference_mode

    def __call__(self, cell: SweepCell) -> ExperimentResult:
        graph = self.graphs[cell.dataset]
        factory = self.methods[cell.method]
        estimator = factory(cell.epsilon, self.deltas[cell.dataset], cell.seed)
        estimator.fit(graph, seed=cell.seed)
        score = score_estimator(estimator, graph, self.inference_mode)
        return ExperimentResult(method=cell.method, dataset=cell.dataset,
                                epsilon=cell.epsilon, repeat=cell.repeat,
                                micro_f1=score)


class ExperimentRunner:
    """Runs utility-versus-privacy sweeps over registered methods and datasets."""

    def __init__(self, repeats: int = 3, inference_mode: str = "private", seed: int = 0,
                 jobs: int = 1):
        if repeats < 1:
            raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
        if inference_mode not in ("private", "public"):
            raise ConfigurationError(
                f"inference_mode must be 'private' or 'public', got {inference_mode!r}"
            )
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.repeats = repeats
        self.inference_mode = inference_mode
        self.seed = seed
        self.jobs = jobs
        self._methods: dict[str, MethodFactory] = {}

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register(self, name: str, factory: MethodFactory) -> "ExperimentRunner":
        """Register a method factory under ``name`` (chainable)."""
        if name in self._methods:
            raise ConfigurationError(f"method {name!r} is already registered")
        self._methods[name] = factory
        return self

    @property
    def methods(self) -> list[str]:
        return list(self._methods)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(self, graphs: dict[str, GraphDataset], epsilons: list[float],
            delta: float | None = None,
            store: JsonlResultStore | None = None,
            progress: bool = False) -> list[ExperimentResult]:
        """Run every registered method on every graph for every epsilon.

        ``delta=None`` uses the paper's convention of ``1/|E|`` per graph.
        Seeds are derived exactly as the original serial runner did (one draw
        per cell from a shared generator), so existing experiment records
        stay reproducible; execution is delegated to the parallel engine.
        """
        if not self._methods:
            raise ConfigurationError("no methods registered")
        if not graphs:
            raise ConfigurationError("no graphs supplied")
        if not epsilons:
            raise ConfigurationError("no epsilon values supplied")
        deltas = {
            name: delta if delta is not None else 1.0 / max(graph.num_edges, 1)
            for name, graph in graphs.items()
        }
        cells = expand_cells(list(self._methods), list(graphs), epsilons,
                             self.repeats, seed=self.seed, seed_axis="epsilon")
        cell_runner = _RegistryCellRunner(self._methods, graphs, deltas,
                                          self.inference_mode)
        # The context guards a store-backed resume against settings drift; the
        # registered factories themselves cannot be fingerprinted, so callers
        # mixing factory configurations across runs should use separate stores.
        resume_context = None if store is None else dict(
            seed=self.seed, inference_mode=self.inference_mode, delta=delta)
        engine = ParallelExperimentRunner(cell_runner, jobs=self.jobs,
                                          store=store, progress=progress,
                                          resume_context=resume_context)
        return engine.run(cells)


def series_from_results(results: list[ExperimentResult]) -> dict[str, dict[str, dict[float, float]]]:
    """Reshape results into ``{dataset: {method: {epsilon: mean_f1}}}`` (figure series)."""
    aggregated = aggregate_results(results)
    series: dict[str, dict[str, dict[float, float]]] = {}
    for (method, dataset, epsilon), stats in aggregated.items():
        series.setdefault(dataset, {}).setdefault(method, {})[epsilon] = stats["mean"]
    return series
