"""Experiment runner: method x dataset x privacy-budget sweeps with repeats.

This is the machinery behind the benchmark harness.  A *method factory* is a
callable ``(epsilon, delta, seed) -> estimator`` returning an object with the
``fit(graph, seed)`` / ``predict(graph, mode)`` interface shared by GCON and
all baselines; the runner takes care of repeated runs, seeding, scoring and
aggregation into the series the paper's figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.evaluation.metrics import micro_f1
from repro.exceptions import ConfigurationError
from repro.graphs.graph import GraphDataset
from repro.utils.random import as_rng, spawn_rngs


@dataclass
class ExperimentResult:
    """One (method, dataset, epsilon, repeat) measurement."""

    method: str
    dataset: str
    epsilon: float
    repeat: int
    micro_f1: float
    extra: dict = field(default_factory=dict)


def aggregate_results(results: list[ExperimentResult]) -> dict[tuple[str, str, float], dict]:
    """Group results by (method, dataset, epsilon) and compute mean/std/count."""
    groups: dict[tuple[str, str, float], list[float]] = {}
    for result in results:
        key = (result.method, result.dataset, result.epsilon)
        groups.setdefault(key, []).append(result.micro_f1)
    return {
        key: {
            "mean": float(np.mean(values)),
            "std": float(np.std(values)),
            "count": len(values),
        }
        for key, values in groups.items()
    }


MethodFactory = Callable[[float, float, int], object]


class ExperimentRunner:
    """Runs utility-versus-privacy sweeps over registered methods and datasets."""

    def __init__(self, repeats: int = 3, inference_mode: str = "private", seed: int = 0):
        if repeats < 1:
            raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
        if inference_mode not in ("private", "public"):
            raise ConfigurationError(
                f"inference_mode must be 'private' or 'public', got {inference_mode!r}"
            )
        self.repeats = repeats
        self.inference_mode = inference_mode
        self.seed = seed
        self._methods: dict[str, MethodFactory] = {}

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register(self, name: str, factory: MethodFactory) -> "ExperimentRunner":
        """Register a method factory under ``name`` (chainable)."""
        if name in self._methods:
            raise ConfigurationError(f"method {name!r} is already registered")
        self._methods[name] = factory
        return self

    @property
    def methods(self) -> list[str]:
        return list(self._methods)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(self, graphs: dict[str, GraphDataset], epsilons: list[float],
            delta: float | None = None) -> list[ExperimentResult]:
        """Run every registered method on every graph for every epsilon.

        ``delta=None`` uses the paper's convention of ``1/|E|`` per graph.
        """
        if not self._methods:
            raise ConfigurationError("no methods registered")
        if not graphs:
            raise ConfigurationError("no graphs supplied")
        if not epsilons:
            raise ConfigurationError("no epsilon values supplied")
        results: list[ExperimentResult] = []
        master_rng = as_rng(self.seed)
        for dataset_name, graph in graphs.items():
            graph_delta = delta if delta is not None else 1.0 / max(graph.num_edges, 1)
            for method_name, factory in self._methods.items():
                for epsilon in epsilons:
                    repeat_rngs = spawn_rngs(master_rng, self.repeats)
                    for repeat, rng in enumerate(repeat_rngs):
                        seed = int(rng.integers(0, 2**31 - 1))
                        estimator = factory(epsilon, graph_delta, seed)
                        estimator.fit(graph, seed=seed)
                        predictions = self._predict(estimator, graph)
                        score = micro_f1(
                            graph.labels[graph.test_idx], predictions[graph.test_idx]
                        )
                        results.append(
                            ExperimentResult(
                                method=method_name,
                                dataset=dataset_name,
                                epsilon=epsilon,
                                repeat=repeat,
                                micro_f1=score,
                            )
                        )
        return results

    def _predict(self, estimator, graph: GraphDataset) -> np.ndarray:
        """Call the estimator's predict, passing the inference mode when supported."""
        try:
            return np.asarray(estimator.predict(graph, mode=self.inference_mode))
        except TypeError:
            return np.asarray(estimator.predict(graph))


def series_from_results(results: list[ExperimentResult]) -> dict[str, dict[str, dict[float, float]]]:
    """Reshape results into ``{dataset: {method: {epsilon: mean_f1}}}`` (figure series)."""
    aggregated = aggregate_results(results)
    series: dict[str, dict[str, dict[float, float]]] = {}
    for (method, dataset, epsilon), stats in aggregated.items():
        series.setdefault(dataset, {}).setdefault(method, {})[epsilon] = stats["mean"]
    return series
