"""Evaluation utilities: metrics, the experiment runner and report rendering."""

from repro.evaluation.metrics import micro_f1, macro_f1, accuracy, confusion_matrix
from repro.evaluation.runner import ExperimentRunner, ExperimentResult, aggregate_results
from repro.evaluation.reporting import render_table, render_series
from repro.evaluation.plots import ascii_line_chart, ascii_bar_chart, sparkline, \
    render_figure_charts
from repro.evaluation.significance import (
    bootstrap_mean_interval,
    paired_permutation_test,
    win_matrix,
    summarize_comparison,
)
from repro.evaluation.export import (
    series_to_json,
    series_from_json,
    series_to_csv,
    series_from_csv,
    export_figure,
)

__all__ = [
    "micro_f1",
    "macro_f1",
    "accuracy",
    "confusion_matrix",
    "ExperimentRunner",
    "ExperimentResult",
    "aggregate_results",
    "render_table",
    "render_series",
    "ascii_line_chart",
    "ascii_bar_chart",
    "sparkline",
    "render_figure_charts",
    "series_to_json",
    "series_from_json",
    "series_to_csv",
    "series_from_csv",
    "export_figure",
    "bootstrap_mean_interval",
    "paired_permutation_test",
    "win_matrix",
    "summarize_comparison",
]
