"""Persistence of experiment results (CSV / JSON) for the benchmark harness.

Every regenerated table/figure is written in three forms under an output
directory: a plain-text rendering (tables and ASCII charts), a CSV of the
underlying series, and a JSON document that round-trips losslessly so that
EXPERIMENTS.md and downstream analysis can re-load past runs.
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path

from repro.evaluation.reporting import render_series
from repro.exceptions import ConfigurationError

SeriesType = dict[str, dict[str, dict[float, float]]]


def _encode_x(x: float) -> str:
    return "inf" if isinstance(x, float) and math.isinf(x) else repr(float(x))


def _decode_x(text: str) -> float:
    return math.inf if text == "inf" else float(text)


def series_to_json(series: SeriesType, path: str | Path, metadata: dict | None = None) -> Path:
    """Write nested figure series (plus optional metadata) to a JSON file."""
    path = Path(path)
    payload = {
        "metadata": metadata or {},
        "series": {
            dataset: {
                method: {_encode_x(x): float(y) for x, y in curve.items()}
                for method, curve in methods.items()
            }
            for dataset, methods in series.items()
        },
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def series_from_json(path: str | Path) -> tuple[SeriesType, dict]:
    """Load figure series written by :func:`series_to_json`; returns (series, metadata)."""
    path = Path(path)
    payload = json.loads(path.read_text())
    if "series" not in payload:
        raise ConfigurationError(f"{path} does not look like an exported series file")
    series: SeriesType = {
        dataset: {
            method: {_decode_x(x): float(y) for x, y in curve.items()}
            for method, curve in methods.items()
        }
        for dataset, methods in payload["series"].items()
    }
    return series, payload.get("metadata", {})


def series_to_csv(series: SeriesType, path: str | Path) -> Path:
    """Write figure series as long-format CSV with columns dataset,method,x,y."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["dataset", "method", "x", "y"])
        for dataset, methods in series.items():
            for method, curve in methods.items():
                for x, y in sorted(curve.items()):
                    writer.writerow([dataset, method, _encode_x(x), f"{float(y):.6f}"])
    return path


def series_from_csv(path: str | Path) -> SeriesType:
    """Load long-format CSV written by :func:`series_to_csv`."""
    path = Path(path)
    series: SeriesType = {}
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        required = {"dataset", "method", "x", "y"}
        if reader.fieldnames is None or not required.issubset(set(reader.fieldnames)):
            raise ConfigurationError(f"{path} is missing the columns {sorted(required)}")
        for row in reader:
            series.setdefault(row["dataset"], {}).setdefault(row["method"], {})[
                _decode_x(row["x"])
            ] = float(row["y"])
    return series


def export_figure(series: SeriesType, directory: str | Path, name: str,
                  title: str | None = None, metadata: dict | None = None,
                  charts: bool = True) -> dict[str, Path]:
    """Write text, CSV and JSON renderings of a figure under ``directory``.

    Returns the mapping ``{"text": ..., "csv": ..., "json": ...}`` of written
    paths.
    """
    if not name:
        raise ConfigurationError("name must be non-empty")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    text = render_series(series, title=title or name)
    if charts:
        from repro.evaluation.plots import render_figure_charts

        text += "\n\n" + render_figure_charts(series, title=f"{title or name} (chart)")
    text_path = directory / f"{name}.txt"
    text_path.write_text(text + "\n")
    return {
        "text": text_path,
        "csv": series_to_csv(series, directory / f"{name}.csv"),
        "json": series_to_json(series, directory / f"{name}.json", metadata=metadata),
    }
