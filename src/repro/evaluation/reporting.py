"""Plain-text rendering of experiment results (paper-style tables and series).

The benchmark harness prints its regenerated tables/figures through these
helpers so that the output of ``pytest benchmarks/ --benchmark-only`` contains
the same rows/series the paper reports.
"""

from __future__ import annotations

import numpy as np


def render_table(headers: list[str], rows: list[list], title: str | None = None) -> str:
    """Render a fixed-width text table."""
    columns = [[str(h)] for h in headers]
    for row in rows:
        for column, cell in zip(columns, row):
            if isinstance(cell, float):
                column.append(f"{cell:.4f}")
            else:
                column.append(str(cell))
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row_index in range(1, len(columns[0])):
        lines.append(
            " | ".join(column[row_index].ljust(w) for column, w in zip(columns, widths))
        )
    return "\n".join(lines)


def render_series(series: dict[str, dict[str, dict[float, float]]],
                  title: str | None = None) -> str:
    """Render ``{dataset: {method: {x: y}}}`` series as per-dataset tables.

    The x-axis values (privacy budgets, propagation steps, ...) become the
    columns, matching the layout of the paper's figure panels.
    """
    blocks = []
    if title:
        blocks.append(title)
    for dataset, methods in series.items():
        xs = sorted({x for values in methods.values() for x in values})
        headers = ["method"] + [_format_x(x) for x in xs]
        rows = []
        for method, values in methods.items():
            row = [method] + [values.get(x, float("nan")) for x in xs]
            rows.append(row)
        blocks.append(render_table(headers, rows, title=f"[{dataset}]"))
    return "\n\n".join(blocks)


def _format_x(x) -> str:
    if isinstance(x, float) and np.isinf(x):
        return "inf"
    if isinstance(x, float) and x.is_integer():
        return str(int(x))
    return str(x)
