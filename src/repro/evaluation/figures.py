"""Regeneration of every table and figure of the paper's evaluation section.

Each ``figure*``/``table*`` function reproduces the corresponding experiment
of Section VI on the synthetic dataset presets and returns the same series the
paper plots (micro-F1 versus privacy budget / propagation step / restart
probability).  The benchmark harness under ``benchmarks/`` calls these
functions with scaled-down settings and prints the series; absolute numbers
differ from the paper (synthetic data, smaller graphs) but the qualitative
shape is preserved — see EXPERIMENTS.md for the side-by-side record.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.baselines import (
    DPGCN,
    DPSGDGCN,
    GAP,
    GCNClassifier,
    LPGNet,
    MLPClassifier,
    ProGAP,
)
from repro.core.config import GCONConfig
from repro.core.model import GCON
from repro.evaluation.runner import ExperimentResult, ExperimentRunner, series_from_results
from repro.graphs.datasets import dataset_statistics, list_datasets, load_dataset, \
    reference_statistics
from repro.utils.random import as_rng, spawn_rngs


@dataclass
class FigureSettings:
    """Knobs shared by all figure regenerations (scaled down for benchmarks)."""

    scale: float = 0.25
    repeats: int = 1
    seed: int = 0
    epochs: int = 120
    encoder_epochs: int = 200
    encoder_dim: int = 16
    encoder_hidden: int = 64
    lambda_reg: float = 0.2
    use_pseudo_labels: bool = True
    datasets: tuple = ("cora_ml", "citeseer", "pubmed", "actor")
    epsilons: tuple = (0.5, 1.0, 2.0, 3.0, 4.0)
    extra_gcon: dict = field(default_factory=dict)


def default_gcon_config(epsilon: float, delta: float, settings: FigureSettings,
                        **overrides) -> GCONConfig:
    """The GCON configuration used by the figure experiments."""
    params = dict(
        epsilon=epsilon,
        delta=delta,
        alpha=0.8,
        propagation_steps=(2,),
        lambda_reg=settings.lambda_reg,
        encoder_dim=settings.encoder_dim,
        encoder_hidden=settings.encoder_hidden,
        encoder_epochs=settings.encoder_epochs,
        use_pseudo_labels=settings.use_pseudo_labels,
    )
    params.update(settings.extra_gcon)
    params.update(overrides)
    return GCONConfig(**params)


def build_method_registry(settings: FigureSettings) -> dict[str, callable]:
    """Factories ``(epsilon, delta, seed) -> estimator`` for every Figure-1 method."""
    epochs = settings.epochs

    def gcon_factory(epsilon, delta, seed):
        return GCON(default_gcon_config(epsilon, delta, settings))

    return {
        "GCON": gcon_factory,
        "DP-SGD": lambda eps, delta, seed: DPSGDGCN(epsilon=eps, delta=delta),
        "DPGCN": lambda eps, delta, seed: DPGCN(epsilon=eps, delta=delta, epochs=epochs),
        "LPGNet": lambda eps, delta, seed: LPGNet(epsilon=eps, delta=delta, epochs=epochs),
        "GAP": lambda eps, delta, seed: GAP(epsilon=eps, delta=delta, epochs=epochs),
        "ProGAP": lambda eps, delta, seed: ProGAP(epsilon=eps, delta=delta,
                                                  epochs=max(epochs // 2, 50)),
        "MLP": lambda eps, delta, seed: MLPClassifier(epochs=epochs),
        "GCN (non-DP)": lambda eps, delta, seed: GCNClassifier(epochs=epochs),
    }


# --------------------------------------------------------------------------- #
# Table II
# --------------------------------------------------------------------------- #
def table2_dataset_statistics(settings: FigureSettings | None = None) -> dict:
    """Regenerate Table II: dataset statistics of the four presets.

    Returns ``{"generated": [...], "reference": {...}}`` where ``reference``
    holds the paper's values for comparison.
    """
    settings = settings or FigureSettings()
    generated = dataset_statistics(list(settings.datasets), scale=settings.scale,
                                   seed=settings.seed)
    return {"generated": generated, "reference": reference_statistics()}


# --------------------------------------------------------------------------- #
# Figure 1: accuracy vs privacy budget for all methods
# --------------------------------------------------------------------------- #
def figure1_accuracy_vs_epsilon(settings: FigureSettings | None = None,
                                methods: list[str] | None = None,
                                ) -> dict[str, dict[str, dict[float, float]]]:
    """Regenerate Figure 1: micro-F1 versus epsilon for every method and dataset."""
    settings = settings or FigureSettings()
    registry = build_method_registry(settings)
    if methods is not None:
        registry = {name: registry[name] for name in methods}
    runner = ExperimentRunner(repeats=settings.repeats, seed=settings.seed)
    for name, factory in registry.items():
        runner.register(name, factory)
    graphs = {
        name: load_dataset(name, scale=settings.scale, seed=settings.seed)
        for name in settings.datasets
    }
    results = runner.run(graphs, list(settings.epsilons))
    return series_from_results(results)


# --------------------------------------------------------------------------- #
# Figures 2 & 3: effect of the propagation step m1 (private / public test graph)
# --------------------------------------------------------------------------- #
def figure23_propagation_step(settings: FigureSettings | None = None,
                              inference_mode: str = "private",
                              steps: tuple = (1, 2, 5, 10, math.inf),
                              alphas: tuple = (0.2, 0.4, 0.6, 0.8),
                              epsilon: float = 4.0,
                              ) -> dict[str, dict[str, dict[float, float]]]:
    """Regenerate Figure 2 (private inference) or Figure 3 (public inference).

    Returns ``{dataset: {"alpha=a": {m1: f1}}}`` for the homophilous datasets.
    ``inference_mode`` selects between the two figures.
    """
    settings = settings or FigureSettings(datasets=("cora_ml", "citeseer", "pubmed"))
    series: dict[str, dict[str, dict[float, float]]] = {}
    master_rng = as_rng(settings.seed)
    for dataset in settings.datasets:
        if dataset == "actor":
            continue
        graph = load_dataset(dataset, scale=settings.scale, seed=settings.seed)
        delta = 1.0 / max(graph.num_edges, 1)
        series[dataset] = {}
        for alpha in alphas:
            label = f"alpha={alpha:g}"
            series[dataset][label] = {}
            for step in steps:
                scores = []
                for rng in spawn_rngs(master_rng, settings.repeats):
                    seed = int(rng.integers(0, 2**31 - 1))
                    config = default_gcon_config(
                        epsilon, delta, settings, alpha=alpha, propagation_steps=(step,),
                    )
                    model = GCON(config).fit(graph, seed=seed)
                    scores.append(model.score(mode=inference_mode))
                key = float("inf") if step == math.inf else float(step)
                series[dataset][label][key] = float(np.mean(scores))
    return series


# --------------------------------------------------------------------------- #
# Figure 4: effect of the restart probability alpha
# --------------------------------------------------------------------------- #
def figure4_restart_probability(settings: FigureSettings | None = None,
                                alphas: tuple = (0.2, 0.4, 0.6, 0.8),
                                epsilons: tuple | None = None,
                                propagation_step: int = 2,
                                ) -> dict[str, dict[str, dict[float, float]]]:
    """Regenerate Figure 4: micro-F1 versus epsilon for several restart probabilities."""
    settings = settings or FigureSettings(datasets=("cora_ml", "citeseer", "pubmed"))
    epsilons = epsilons or settings.epsilons
    series: dict[str, dict[str, dict[float, float]]] = {}
    master_rng = as_rng(settings.seed)
    for dataset in settings.datasets:
        if dataset == "actor":
            continue
        graph = load_dataset(dataset, scale=settings.scale, seed=settings.seed)
        delta = 1.0 / max(graph.num_edges, 1)
        series[dataset] = {}
        for alpha in alphas:
            label = f"alpha={alpha:g}"
            series[dataset][label] = {}
            for epsilon in epsilons:
                scores = []
                for rng in spawn_rngs(master_rng, settings.repeats):
                    seed = int(rng.integers(0, 2**31 - 1))
                    config = default_gcon_config(
                        epsilon, delta, settings, alpha=alpha,
                        propagation_steps=(propagation_step,),
                    )
                    model = GCON(config).fit(graph, seed=seed)
                    scores.append(model.score(mode="private"))
                series[dataset][label][float(epsilon)] = float(np.mean(scores))
    return series


# --------------------------------------------------------------------------- #
# Extension: edge-inference attack AUC versus epsilon
# --------------------------------------------------------------------------- #
def attack_auc_vs_epsilon(settings: FigureSettings | None = None,
                          epsilons: tuple = (0.5, 1.0, 4.0),
                          num_pairs: int = 300,
                          ) -> dict[str, dict[str, dict[float, float]]]:
    """Measure the link-stealing attack AUC against GCON and the non-private GCN.

    The paper motivates edge DP with such attacks (Section I); this extension
    quantifies the protection: the non-private GCN should be clearly
    attackable (AUC well above 0.5) while GCON's private-inference outputs
    should yield an AUC close to chance.
    """
    from repro.attacks import attack_auc, sample_edge_candidates, similarity_link_attack

    settings = settings or FigureSettings(datasets=("cora_ml",))
    dataset = settings.datasets[0]
    graph = load_dataset(dataset, scale=settings.scale, seed=settings.seed)
    delta = 1.0 / max(graph.num_edges, 1)
    pairs, labels = sample_edge_candidates(graph, num_pairs=num_pairs, rng=settings.seed)

    series: dict[str, dict[str, dict[float, float]]] = {dataset: {}}
    gcn = GCNClassifier(epochs=settings.epochs).fit(graph, seed=settings.seed)
    gcn_auc = attack_auc(similarity_link_attack(gcn.decision_scores(graph), pairs), labels)
    series[dataset]["GCN (non-DP)"] = {float(eps): gcn_auc for eps in epsilons}

    series[dataset]["GCON"] = {}
    for epsilon in epsilons:
        config = default_gcon_config(epsilon, delta, settings)
        model = GCON(config).fit(graph, seed=settings.seed)
        scores = model.decision_scores(graph, mode="private")
        auc = attack_auc(similarity_link_attack(scores, pairs), labels)
        series[dataset]["GCON"][float(epsilon)] = auc
    return series
