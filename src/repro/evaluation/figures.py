"""Regeneration of every table and figure of the paper's evaluation section.

Each ``figure*``/``table*`` function reproduces the corresponding experiment
of Section VI on the synthetic dataset presets and returns the same series the
paper plots (micro-F1 versus privacy budget / propagation step / restart
probability).  The benchmark harness under ``benchmarks/`` calls these
functions with scaled-down settings and prints the series; absolute numbers
differ from the paper (synthetic data, smaller graphs) but the qualitative
shape is preserved — see EXPERIMENTS.md for the side-by-side record.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.baselines import (
    DPGCN,
    DPSGDGCN,
    GAP,
    GCNClassifier,
    LPGNet,
    MLPClassifier,
    ProGAP,
)
from repro.core.config import GCONConfig
from repro.core.model import GCON
from repro.evaluation.runner import ExperimentResult, ExperimentRunner, series_from_results
from repro.graphs.datasets import dataset_statistics, load_dataset, reference_statistics
from repro.runtime.cells import expand_cells
from repro.runtime.engine import ParallelExperimentRunner
from repro.runtime.store import JsonlResultStore
from repro.runtime.workers import FigureCellRunner, GconVariantCellRunner

_ = (ExperimentResult, ExperimentRunner)  # re-exported for API compatibility


@dataclass
class FigureSettings:
    """Knobs shared by all figure regenerations (scaled down for benchmarks)."""

    scale: float = 0.25
    repeats: int = 1
    seed: int = 0
    epochs: int = 120
    encoder_epochs: int = 200
    encoder_dim: int = 16
    encoder_hidden: int = 64
    lambda_reg: float = 0.2
    use_pseudo_labels: bool = True
    datasets: tuple = ("cora_ml", "citeseer", "pubmed", "actor")
    epsilons: tuple = (0.5, 1.0, 2.0, 3.0, 4.0)
    jobs: int = 1
    extra_gcon: dict = field(default_factory=dict)
    # Execution knobs, never part of resume_context.  ``fast_sweep`` toggles
    # the epsilon-axis sweep-solver path: results agree with the per-cell
    # reference path up to convex-solver tolerance (set ``fast_sweep=False``
    # to force the bitwise reference).  ``preparation_cache`` points at an
    # on-disk content-addressed preparation store directory (defaults to the
    # REPRO_PREPARATION_CACHE environment variable when None); cache hits are
    # bitwise identical to cold preparation.
    fast_sweep: bool = True
    preparation_cache: str | None = None

    def resume_context(self) -> dict:
        """The numeric knobs a store-backed resume must agree on.

        Sweep axes (datasets, epsilons, repeats) are deliberately excluded:
        they are part of each cell's identity, so extending a sweep along an
        axis resumes cleanly while changing any knob below forces a recompute.
        """
        return dict(
            scale=self.scale, seed=self.seed, epochs=self.epochs,
            encoder_epochs=self.encoder_epochs, encoder_dim=self.encoder_dim,
            encoder_hidden=self.encoder_hidden, lambda_reg=self.lambda_reg,
            use_pseudo_labels=self.use_pseudo_labels,
            extra_gcon=sorted(self.extra_gcon.items()),
        )


def default_gcon_config(epsilon: float, delta: float, settings: FigureSettings,
                        **overrides) -> GCONConfig:
    """The GCON configuration used by the figure experiments."""
    params = dict(
        epsilon=epsilon,
        delta=delta,
        alpha=0.8,
        propagation_steps=(2,),
        lambda_reg=settings.lambda_reg,
        encoder_dim=settings.encoder_dim,
        encoder_hidden=settings.encoder_hidden,
        encoder_epochs=settings.encoder_epochs,
        use_pseudo_labels=settings.use_pseudo_labels,
    )
    params.update(settings.extra_gcon)
    params.update(overrides)
    return GCONConfig(**params)


def build_method_registry(settings: FigureSettings) -> dict[str, callable]:
    """Factories ``(epsilon, delta, seed) -> estimator`` for every Figure-1 method."""
    epochs = settings.epochs

    def gcon_factory(epsilon, delta, seed):
        return GCON(default_gcon_config(epsilon, delta, settings))

    return {
        "GCON": gcon_factory,
        "DP-SGD": lambda eps, delta, seed: DPSGDGCN(epsilon=eps, delta=delta),
        "DPGCN": lambda eps, delta, seed: DPGCN(epsilon=eps, delta=delta, epochs=epochs),
        "LPGNet": lambda eps, delta, seed: LPGNet(epsilon=eps, delta=delta, epochs=epochs),
        "GAP": lambda eps, delta, seed: GAP(epsilon=eps, delta=delta, epochs=epochs),
        "ProGAP": lambda eps, delta, seed: ProGAP(epsilon=eps, delta=delta,
                                                  epochs=max(epochs // 2, 50)),
        "MLP": lambda eps, delta, seed: MLPClassifier(epochs=epochs),
        "GCN (non-DP)": lambda eps, delta, seed: GCNClassifier(epochs=epochs),
    }


# --------------------------------------------------------------------------- #
# Table II
# --------------------------------------------------------------------------- #
def table2_dataset_statistics(settings: FigureSettings | None = None) -> dict:
    """Regenerate Table II: dataset statistics of the four presets.

    Returns ``{"generated": [...], "reference": {...}}`` where ``reference``
    holds the paper's values for comparison.
    """
    settings = settings or FigureSettings()
    generated = dataset_statistics(list(settings.datasets), scale=settings.scale,
                                   seed=settings.seed)
    return {"generated": generated, "reference": reference_statistics()}


# --------------------------------------------------------------------------- #
# Figure 1: accuracy vs privacy budget for all methods
# --------------------------------------------------------------------------- #
def figure1_accuracy_vs_epsilon(settings: FigureSettings | None = None,
                                methods: list[str] | None = None,
                                store: JsonlResultStore | None = None,
                                progress: bool = False,
                                ) -> dict[str, dict[str, dict[float, float]]]:
    """Regenerate Figure 1: micro-F1 versus epsilon for every method and dataset.

    Runs through the parallel sweep engine: ``settings.jobs`` workers, with
    per-cell seeds shared across the epsilon axis so the workers reuse the
    epsilon-independent preparation of each ``(method, dataset, repeat)``.
    """
    settings = settings or FigureSettings()
    method_names = methods if methods is not None else list(build_method_registry(settings))
    cells = expand_cells(method_names, settings.datasets, settings.epsilons,
                         settings.repeats, seed=settings.seed)
    runner = FigureCellRunner(settings=settings, fast_sweep=settings.fast_sweep,
                              preparation_cache=settings.preparation_cache)
    engine = ParallelExperimentRunner(runner,
                                      jobs=settings.jobs, store=store,
                                      progress=progress,
                                      resume_context=settings.resume_context())
    return series_from_results(engine.run(cells))


# --------------------------------------------------------------------------- #
# Figures 2 & 3: effect of the propagation step m1 (private / public test graph)
# --------------------------------------------------------------------------- #
def figure23_propagation_step(settings: FigureSettings | None = None,
                              inference_mode: str = "private",
                              steps: tuple = (1, 2, 5, 10, math.inf),
                              alphas: tuple = (0.2, 0.4, 0.6, 0.8),
                              epsilon: float = 4.0,
                              ) -> dict[str, dict[str, dict[float, float]]]:
    """Regenerate Figure 2 (private inference) or Figure 3 (public inference).

    Returns ``{dataset: {"alpha=a": {m1: f1}}}`` for the homophilous datasets.
    ``inference_mode`` selects between the two figures.
    """
    settings = settings or FigureSettings(datasets=("cora_ml", "citeseer", "pubmed"))
    datasets = [name for name in settings.datasets if name != "actor"]
    overrides = {f"alpha={alpha:g}": {"alpha": alpha} for alpha in alphas}
    step_axis = [float("inf") if step == math.inf else float(step) for step in steps]
    cells = expand_cells(list(overrides), datasets, step_axis, settings.repeats,
                         seed=settings.seed)
    runner = GconVariantCellRunner(settings=settings, overrides=overrides,
                                   axis="steps", fixed_epsilon=epsilon,
                                   inference_mode=inference_mode,
                                   fast_sweep=settings.fast_sweep,
                                   preparation_cache=settings.preparation_cache)
    engine = ParallelExperimentRunner(runner, jobs=settings.jobs)
    return series_from_results(engine.run(cells))


# --------------------------------------------------------------------------- #
# Figure 4: effect of the restart probability alpha
# --------------------------------------------------------------------------- #
def figure4_restart_probability(settings: FigureSettings | None = None,
                                alphas: tuple = (0.2, 0.4, 0.6, 0.8),
                                epsilons: tuple | None = None,
                                propagation_step: int = 2,
                                ) -> dict[str, dict[str, dict[float, float]]]:
    """Regenerate Figure 4: micro-F1 versus epsilon for several restart probabilities."""
    settings = settings or FigureSettings(datasets=("cora_ml", "citeseer", "pubmed"))
    epsilons = epsilons or settings.epsilons
    datasets = [name for name in settings.datasets if name != "actor"]
    overrides = {
        f"alpha={alpha:g}": {"alpha": alpha, "propagation_steps": (propagation_step,)}
        for alpha in alphas
    }
    cells = expand_cells(list(overrides), datasets, epsilons, settings.repeats,
                         seed=settings.seed)
    runner = GconVariantCellRunner(settings=settings, overrides=overrides,
                                   axis="epsilon", inference_mode="private",
                                   fast_sweep=settings.fast_sweep,
                                   preparation_cache=settings.preparation_cache)
    engine = ParallelExperimentRunner(runner, jobs=settings.jobs)
    return series_from_results(engine.run(cells))


# --------------------------------------------------------------------------- #
# Extension: edge-inference attack AUC versus epsilon
# --------------------------------------------------------------------------- #
def attack_auc_vs_epsilon(settings: FigureSettings | None = None,
                          epsilons: tuple = (0.5, 1.0, 4.0),
                          num_pairs: int = 300,
                          ) -> dict[str, dict[str, dict[float, float]]]:
    """Measure the link-stealing attack AUC against GCON and the non-private GCN.

    The paper motivates edge DP with such attacks (Section I); this extension
    quantifies the protection: the non-private GCN should be clearly
    attackable (AUC well above 0.5) while GCON's private-inference outputs
    should yield an AUC close to chance.
    """
    from repro.attacks import attack_auc, sample_edge_candidates, similarity_link_attack

    settings = settings or FigureSettings(datasets=("cora_ml",))
    dataset = settings.datasets[0]
    graph = load_dataset(dataset, scale=settings.scale, seed=settings.seed)
    delta = 1.0 / max(graph.num_edges, 1)
    pairs, labels = sample_edge_candidates(graph, num_pairs=num_pairs, rng=settings.seed)

    series: dict[str, dict[str, dict[float, float]]] = {dataset: {}}
    gcn = GCNClassifier(epochs=settings.epochs).fit(graph, seed=settings.seed)
    gcn_auc = attack_auc(similarity_link_attack(gcn.decision_scores(graph), pairs), labels)
    series[dataset]["GCN (non-DP)"] = {float(eps): gcn_auc for eps in epsilons}

    series[dataset]["GCON"] = {}
    for epsilon in epsilons:
        config = default_gcon_config(epsilon, delta, settings)
        model = GCON(config).fit(graph, seed=settings.seed)
        scores = model.decision_scores(graph, mode="private")
        auc = attack_auc(similarity_link_attack(scores, pairs), labels)
        series[dataset]["GCON"][float(epsilon)] = auc
    return series
