"""Plain-text (ASCII) charts for terminal-friendly figure regeneration.

The benchmark harness renders every regenerated figure both as a numeric
table (:mod:`repro.evaluation.reporting`) and as an ASCII line chart so that
the *shape* of each curve — who wins, where the crossovers are — is visible
directly in the captured pytest output and in ``EXPERIMENTS.md`` without any
plotting dependency.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ConfigurationError

_SERIES_MARKERS = "ox+*#@%&"


def sparkline(values, width: int | None = None) -> str:
    """A one-line unicode sparkline of a numeric sequence."""
    blocks = "▁▂▃▄▅▆▇█"
    values = [float(v) for v in values]
    if not values:
        return ""
    if width is not None and width > 0 and len(values) > width:
        chunks = np.array_split(np.asarray(values), width)
        values = [float(chunk.mean()) for chunk in chunks]
    low, high = min(values), max(values)
    span = high - low
    if span <= 0:
        return blocks[0] * len(values)
    indices = [int((v - low) / span * (len(blocks) - 1)) for v in values]
    return "".join(blocks[i] for i in indices)


def ascii_bar_chart(values: dict[str, float], width: int = 40,
                    title: str | None = None) -> str:
    """Horizontal bar chart of labelled non-negative values."""
    if not values:
        raise ConfigurationError("values must be non-empty")
    if width < 1:
        raise ConfigurationError(f"width must be >= 1, got {width}")
    label_width = max(len(str(label)) for label in values)
    maximum = max(float(v) for v in values.values())
    lines = [title] if title else []
    for label, value in values.items():
        value = float(value)
        length = 0 if maximum <= 0 else int(round(width * value / maximum))
        lines.append(f"{str(label).ljust(label_width)} | {'█' * length} {value:.4f}")
    return "\n".join(lines)


def _format_tick(value: float) -> str:
    if math.isinf(value):
        return "inf"
    if float(value).is_integer():
        return str(int(value))
    return f"{value:g}"


def ascii_line_chart(series: dict[str, dict[float, float]], width: int = 60,
                     height: int = 15, title: str | None = None,
                     y_label: str = "", x_label: str = "") -> str:
    """Multi-series ASCII line chart.

    Parameters
    ----------
    series:
        ``{series_name: {x: y}}``.  Infinite x values (the PPR limit ``m=∞``)
        are placed one slot to the right of the largest finite x.
    width, height:
        Character dimensions of the plotting area.
    """
    if not series:
        raise ConfigurationError("series must be non-empty")
    if width < 10 or height < 5:
        raise ConfigurationError("width must be >= 10 and height >= 5")

    finite_xs = sorted({x for curve in series.values() for x in curve if not math.isinf(x)})
    has_inf = any(math.isinf(x) for curve in series.values() for x in curve)
    xs = finite_xs + ([math.inf] if has_inf else [])
    if not xs:
        raise ConfigurationError("series contain no x values")
    x_positions = {x: index for index, x in enumerate(xs)}
    ys = [y for curve in series.values() for y in curve.values()]
    y_low, y_high = min(ys), max(ys)
    if y_high - y_low < 1e-12:
        y_low -= 0.5
        y_high += 0.5

    grid = [[" "] * width for _ in range(height)]

    def to_column(x: float) -> int:
        if len(xs) == 1:
            return width // 2
        return int(round(x_positions[x] / (len(xs) - 1) * (width - 1)))

    def to_row(y: float) -> int:
        fraction = (y - y_low) / (y_high - y_low)
        return (height - 1) - int(round(fraction * (height - 1)))

    legend = []
    for series_index, (name, curve) in enumerate(series.items()):
        marker = _SERIES_MARKERS[series_index % len(_SERIES_MARKERS)]
        legend.append(f"{marker} = {name}")
        points = sorted(curve.items(), key=lambda item: x_positions[item[0]])
        previous = None
        for x, y in points:
            column, row = to_column(x), to_row(y)
            if previous is not None:
                # Linear interpolation between consecutive points.
                prev_column, prev_row = previous
                span = max(abs(column - prev_column), 1)
                for step in range(1, span):
                    interp_col = prev_column + step * (column - prev_column) // span
                    interp_row = prev_row + step * (row - prev_row) // span
                    if grid[interp_row][interp_col] == " ":
                        grid[interp_row][interp_col] = "."
            grid[row][column] = marker
            previous = (column, row)

    lines = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(y_label)
    top_tick = f"{y_high:.3f}"
    bottom_tick = f"{y_low:.3f}"
    margin = max(len(top_tick), len(bottom_tick))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_tick.rjust(margin)
        elif row_index == height - 1:
            prefix = bottom_tick.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * margin + " +" + "-" * width)
    tick_labels = "  ".join(_format_tick(x) for x in xs)
    lines.append(" " * (margin + 2) + tick_labels + (f"   ({x_label})" if x_label else ""))
    lines.append("legend: " + ", ".join(legend))
    return "\n".join(lines)


def render_figure_charts(series: dict[str, dict[str, dict[float, float]]],
                         title: str, width: int = 60, height: int = 12,
                         x_label: str = "") -> str:
    """One ASCII chart per dataset panel for figure-style nested series."""
    blocks = [title]
    for dataset, methods in series.items():
        blocks.append(
            ascii_line_chart(methods, width=width, height=height,
                             title=f"[{dataset}]", x_label=x_label, y_label="micro F1")
        )
    return "\n\n".join(blocks)
