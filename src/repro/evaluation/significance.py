"""Statistical significance helpers for method comparisons.

The paper averages 10 independent runs per configuration; when two methods'
means are close, the experiment harness needs to know whether the gap is
real.  This module provides the standard toolkit for that question at
repeated-runs scale: bootstrap confidence intervals for a single method's
mean score, a paired permutation test for the difference between two methods
evaluated on the same seeds, and a pairwise win matrix across many methods.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.random import as_rng


def _as_scores(values, name: str) -> np.ndarray:
    array = np.asarray(values, dtype=np.float64).ravel()
    if array.size < 2:
        raise ConfigurationError(f"{name} needs at least two scores, got {array.size}")
    if not np.all(np.isfinite(array)):
        raise ConfigurationError(f"{name} contains non-finite scores")
    return array


@dataclass(frozen=True)
class BootstrapInterval:
    """A bootstrap estimate of a mean with its confidence interval."""

    mean: float
    lower: float
    upper: float
    confidence: float
    num_resamples: int

    @property
    def width(self) -> float:
        return self.upper - self.lower

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper


def bootstrap_mean_interval(scores, confidence: float = 0.95, num_resamples: int = 2000,
                            rng: int | np.random.Generator | None = 0) -> BootstrapInterval:
    """Percentile-bootstrap confidence interval for the mean of repeated-run scores."""
    scores = _as_scores(scores, "scores")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence must be in (0, 1), got {confidence}")
    if num_resamples < 100:
        raise ConfigurationError(f"num_resamples must be >= 100, got {num_resamples}")
    rng = as_rng(rng)
    resample_means = np.empty(num_resamples)
    for index in range(num_resamples):
        resample = rng.choice(scores, size=scores.size, replace=True)
        resample_means[index] = resample.mean()
    alpha = 1.0 - confidence
    lower, upper = np.quantile(resample_means, [alpha / 2.0, 1.0 - alpha / 2.0])
    return BootstrapInterval(
        mean=float(scores.mean()), lower=float(lower), upper=float(upper),
        confidence=confidence, num_resamples=num_resamples,
    )


@dataclass(frozen=True)
class PairedComparison:
    """Outcome of a paired permutation test between two methods."""

    mean_difference: float
    p_value: float
    num_pairs: int
    num_permutations: int

    def significant(self, alpha: float = 0.05) -> bool:
        """True when the two methods differ at significance level ``alpha``."""
        return self.p_value < alpha


def paired_permutation_test(first, second, num_permutations: int = 5000,
                            rng: int | np.random.Generator | None = 0) -> PairedComparison:
    """Two-sided paired permutation (sign-flip) test on per-seed score differences.

    ``first`` and ``second`` must contain scores from the *same* seeds/runs in
    the same order (the pairing is what gives the test its power at 10 runs).
    """
    first = _as_scores(first, "first")
    second = _as_scores(second, "second")
    if first.size != second.size:
        raise ConfigurationError(
            f"paired scores must have equal length, got {first.size} vs {second.size}"
        )
    if num_permutations < 100:
        raise ConfigurationError(f"num_permutations must be >= 100, got {num_permutations}")
    rng = as_rng(rng)
    differences = first - second
    observed = abs(differences.mean())
    count_extreme = 0
    for _ in range(num_permutations):
        signs = rng.choice([-1.0, 1.0], size=differences.size)
        if abs((differences * signs).mean()) >= observed - 1e-15:
            count_extreme += 1
    # Add-one smoothing keeps the p-value strictly positive (permutation convention).
    p_value = (count_extreme + 1) / (num_permutations + 1)
    return PairedComparison(
        mean_difference=float(differences.mean()), p_value=float(p_value),
        num_pairs=int(first.size), num_permutations=num_permutations,
    )


def win_matrix(results: dict[str, list[float]], alpha: float = 0.05,
               num_permutations: int = 2000,
               rng: int | np.random.Generator | None = 0) -> tuple[list[str], np.ndarray]:
    """Pairwise significant-win matrix over several methods' paired scores.

    Returns ``(names, matrix)`` where ``matrix[i, j] = 1`` if method ``i``
    significantly beats method ``j`` (positive mean difference and
    ``p < alpha``), ``-1`` if it significantly loses, and ``0`` otherwise.
    """
    if len(results) < 2:
        raise ConfigurationError("win_matrix needs at least two methods")
    names = list(results)
    rng = as_rng(rng)
    matrix = np.zeros((len(names), len(names)), dtype=np.int64)
    for i, name_i in enumerate(names):
        for j, name_j in enumerate(names):
            if i >= j:
                continue
            comparison = paired_permutation_test(
                results[name_i], results[name_j],
                num_permutations=num_permutations, rng=rng,
            )
            if comparison.significant(alpha):
                sign = 1 if comparison.mean_difference > 0 else -1
                matrix[i, j] = sign
                matrix[j, i] = -sign
    return names, matrix


def summarize_comparison(name_first: str, scores_first, name_second: str, scores_second,
                         alpha: float = 0.05) -> str:
    """One-line human-readable verdict used by the benchmark harness."""
    comparison = paired_permutation_test(scores_first, scores_second)
    direction = ">" if comparison.mean_difference > 0 else "<"
    verdict = "significant" if comparison.significant(alpha) else "not significant"
    return (f"{name_first} {direction} {name_second}: "
            f"mean diff {comparison.mean_difference:+.4f}, "
            f"p = {comparison.p_value:.4f} ({verdict} at alpha = {alpha:g})")
