"""Single-machine experiment commands: ``datasets``, ``train``,
``baselines``, ``figure``, ``tune``, ``sensitivity`` and ``attack``."""

from __future__ import annotations

import math
from pathlib import Path

from repro.cli.commands.shared import (
    add_dataset_arguments,
    add_gcon_arguments,
    add_preparation_cache_argument,
    build_gcon,
    load_graph,
    parse_steps,
)


def command_datasets(args) -> int:
    """List the dataset presets and their generated-versus-paper statistics."""
    from repro.evaluation.reporting import render_table
    from repro.graphs.datasets import dataset_statistics, list_datasets, reference_statistics

    names = list_datasets()
    generated = dataset_statistics(names, scale=args.scale, seed=args.seed)
    reference = reference_statistics()
    headers = ["dataset", "nodes", "edges", "features", "classes", "homophily",
               "paper nodes", "paper edges", "paper homophily"]
    rows = []
    for stats in generated:
        name = stats["name"]
        paper = reference[name]
        rows.append([
            name, stats["nodes"], stats["edges"], stats["features"], stats["classes"],
            f"{stats['homophily']:.3f}", paper["nodes"], paper["edges"],
            f"{paper['homophily']:.2f}",
        ])
    print(render_table(headers, rows, title=f"Dataset presets (scale={args.scale})"))
    return 0


def command_train(args) -> int:
    """Train a single GCON model and report train/validation/test micro-F1."""
    graph = load_graph(args)
    model = build_gcon(args, graph).fit(graph, seed=args.seed)
    epsilon, delta = model.privacy_spent
    print(f"dataset: {graph.name} (n={graph.num_nodes}, |E|={graph.num_edges})")
    print(f"privacy: epsilon={epsilon:g}, delta={delta:.3g}")
    for split_name, idx in (("train", graph.train_idx), ("val", graph.val_idx),
                            ("test", graph.test_idx)):
        if idx.size == 0:
            continue
        score = model.score(graph, idx=idx, mode=args.inference_mode)
        print(f"{split_name} micro-F1 ({args.inference_mode} inference): {score:.4f}")
    return 0


def command_baselines(args) -> int:
    """Train every Figure-1 method once at a single epsilon and print a comparison table."""
    from repro.evaluation.figures import FigureSettings, build_method_registry
    from repro.evaluation.reporting import render_table
    from repro.runtime.cells import SweepCell
    from repro.runtime.engine import ParallelExperimentRunner
    from repro.runtime.workers import FigureCellRunner

    settings = FigureSettings(scale=args.scale, repeats=1, seed=args.seed,
                              epochs=args.epochs)
    registry = build_method_registry(settings)
    cells = [
        SweepCell(index=position, method=name, dataset=args.dataset,
                  epsilon=args.epsilon, repeat=0, seed=args.seed, group=position)
        for position, name in enumerate(registry)
    ]
    engine = ParallelExperimentRunner(
        FigureCellRunner(settings=settings, delta=args.delta,
                         preparation_cache=args.preparation_cache),
        jobs=args.jobs)
    results = engine.run(cells)
    rows = [[result.method, f"{result.micro_f1:.4f}"] for result in results]
    print(render_table(["method", "test micro-F1"], rows,
                       title=f"{args.dataset} @ epsilon={args.epsilon:g}"))
    return 0


def command_figure(args) -> int:
    """Regenerate one of the paper's tables/figures and export text/CSV/JSON."""
    from repro.evaluation.export import export_figure
    from repro.evaluation.figures import (
        FigureSettings,
        attack_auc_vs_epsilon,
        figure1_accuracy_vs_epsilon,
        figure23_propagation_step,
        figure4_restart_probability,
        table2_dataset_statistics,
    )
    from repro.evaluation.reporting import render_series, render_table

    settings = FigureSettings(scale=args.scale, repeats=args.repeats, seed=args.seed,
                              datasets=tuple(args.datasets.split(",")),
                              jobs=args.jobs,
                              preparation_cache=args.preparation_cache)
    output_dir = Path(args.output_dir)

    if args.id == "table2":
        result = table2_dataset_statistics(settings)
        headers = ["dataset", "nodes", "edges", "features", "classes", "homophily"]
        rows = [[s["name"], s["nodes"], s["edges"], s["features"], s["classes"],
                 f"{s['homophily']:.3f}"] for s in result["generated"]]
        text = render_table(headers, rows, title="Table II (generated presets)")
        output_dir.mkdir(parents=True, exist_ok=True)
        (output_dir / "table2.txt").write_text(text + "\n")
        print(text)
        return 0

    generators = {
        "figure1": lambda: figure1_accuracy_vs_epsilon(settings),
        "figure2": lambda: figure23_propagation_step(settings, inference_mode="private"),
        "figure3": lambda: figure23_propagation_step(settings, inference_mode="public"),
        "figure4": lambda: figure4_restart_probability(settings),
        "attack": lambda: attack_auc_vs_epsilon(settings),
    }
    series = generators[args.id]()
    paths = export_figure(series, output_dir, args.id,
                          title=f"{args.id} (scale={args.scale}, repeats={args.repeats})",
                          metadata={"scale": args.scale, "repeats": args.repeats,
                                    "seed": args.seed})
    print(render_series(series, title=args.id))
    print(f"\nwritten: {', '.join(str(p) for p in paths.values())}")
    return 0


def command_tune(args) -> int:
    """Random/grid search over the Appendix-Q hyperparameter grid for GCON."""
    from repro.evaluation.reporting import render_table
    from repro.tuning import GridSearch, RandomSearch, gcon_quick_space, gcon_search_space, \
        make_gcon_factory

    graph = load_graph(args)
    factory = make_gcon_factory(args.epsilon, args.delta, encoder_epochs=args.encoder_epochs)
    if args.space == "full":
        space = gcon_search_space(args.dataset)
    else:
        space = gcon_quick_space()
    if args.strategy == "grid":
        search = GridSearch(factory, space, repeats=args.repeats, seed=args.seed)
    else:
        search = RandomSearch(factory, space, num_trials=args.trials,
                              repeats=args.repeats, seed=args.seed)
    result = search.run(graph)
    headers, rows = result.to_rows(top_k=args.top_k)
    print(render_table(headers, rows,
                       title=f"Validation leaderboard ({len(result)} trials)"))
    print(f"\nbest params: {result.best_params}")
    print(f"best validation micro-F1: {result.best_score:.4f}")
    return 0


def command_sensitivity(args) -> int:
    """Print the closed-form Lemma-2 sensitivity for a grid of (alpha, m) settings."""
    from repro.core.sensitivity import aggregate_sensitivity
    from repro.evaluation.reporting import render_table

    alphas = [float(a) for a in args.alphas.split(",")]
    steps = list(parse_steps(args.m_values))
    headers = ["alpha"] + [("inf" if math.isinf(m) else str(m)) for m in steps]
    rows = []
    for alpha in alphas:
        rows.append([f"{alpha:g}"] + [f"{aggregate_sensitivity(alpha, m):.4f}" for m in steps])
    print(render_table(headers, rows, title="Psi(Z_m) = 2(1-a)/a (1-(1-a)^m)"))
    return 0


def command_attack(args) -> int:
    """Run the link-stealing attack suite against GCON and the non-private GCN."""
    from repro.attacks import attack_auc, sample_edge_candidates
    from repro.attacks.similarity import strongest_attack_auc
    from repro.baselines import GCNClassifier
    from repro.evaluation.reporting import render_table

    graph = load_graph(args)
    pairs, labels = sample_edge_candidates(graph, num_pairs=args.pairs, rng=args.seed)
    rows = []

    gcn = GCNClassifier(epochs=args.epochs).fit(graph, seed=args.seed)
    name, auc = strongest_attack_auc(gcn.decision_scores(graph), pairs, labels)
    rows.append(["GCN (non-DP)", name, f"{auc:.4f}"])

    model = build_gcon(args, graph).fit(graph, seed=args.seed)
    scores = model.decision_scores(graph, mode="private")
    name, auc = strongest_attack_auc(scores, pairs, labels)
    rows.append([f"GCON (eps={args.epsilon:g})", name, f"{auc:.4f}"])

    print(render_table(["model", "best metric", "attack AUC"], rows,
                       title=f"Link-stealing attack on {graph.name} ({args.pairs} pairs)"))
    _ = attack_auc  # re-exported for API discoverability
    return 0


def configure(subparsers) -> None:
    datasets = subparsers.add_parser("datasets", help="list dataset presets and statistics")
    add_dataset_arguments(datasets)
    datasets.set_defaults(func=command_datasets)

    train = subparsers.add_parser("train", help="train one GCON model")
    add_dataset_arguments(train)
    add_gcon_arguments(train)
    train.set_defaults(func=command_train)

    baselines = subparsers.add_parser("baselines", help="compare all methods at one epsilon")
    add_dataset_arguments(baselines)
    baselines.add_argument("--epsilon", type=float, default=1.0)
    baselines.add_argument("--delta", type=float, default=None)
    baselines.add_argument("--epochs", type=int, default=100)
    baselines.add_argument("--jobs", type=int, default=1,
                           help="number of parallel worker processes")
    add_preparation_cache_argument(baselines)
    baselines.set_defaults(func=command_baselines)

    figure = subparsers.add_parser("figure", help="regenerate a paper table/figure")
    figure.add_argument("id", choices=("table2", "figure1", "figure2", "figure3",
                                       "figure4", "attack"))
    figure.add_argument("--scale", type=float, default=0.25)
    figure.add_argument("--repeats", type=int, default=1)
    figure.add_argument("--seed", type=int, default=0)
    figure.add_argument("--datasets", default="cora_ml",
                        help="comma-separated dataset presets")
    figure.add_argument("--jobs", type=int, default=1,
                        help="number of parallel worker processes")
    figure.add_argument("--output-dir", default="benchmarks/output", dest="output_dir")
    add_preparation_cache_argument(figure)
    figure.set_defaults(func=command_figure)

    tune = subparsers.add_parser("tune", help="hyperparameter search for GCON")
    add_dataset_arguments(tune)
    tune.add_argument("--epsilon", type=float, default=1.0)
    tune.add_argument("--delta", type=float, default=None)
    tune.add_argument("--strategy", choices=("grid", "random"), default="random")
    tune.add_argument("--space", choices=("quick", "full"), default="quick")
    tune.add_argument("--trials", type=int, default=8)
    tune.add_argument("--repeats", type=int, default=1)
    tune.add_argument("--top-k", type=int, default=10, dest="top_k")
    tune.add_argument("--encoder-epochs", type=int, default=100, dest="encoder_epochs")
    tune.set_defaults(func=command_tune)

    sensitivity = subparsers.add_parser("sensitivity",
                                        help="print the Lemma-2 sensitivity table")
    sensitivity.add_argument("--alphas", default="0.2,0.4,0.6,0.8")
    sensitivity.add_argument("--m-values", default="1,2,5,10,inf", dest="m_values")
    sensitivity.set_defaults(func=command_sensitivity)

    attack = subparsers.add_parser("attack", help="run the link-stealing attack suite")
    add_dataset_arguments(attack)
    add_gcon_arguments(attack)
    attack.add_argument("--pairs", type=int, default=300)
    attack.add_argument("--epochs", type=int, default=100)
    attack.set_defaults(func=command_attack)
