"""Observability commands: ``trace`` and ``alerts``."""

from __future__ import annotations

import json
import sys
from pathlib import Path


def command_trace(args) -> int:
    """List recent traces, or pretty-print one trace as a span tree.

    Spans are fetched from every ``--url`` and merged by trace id, so a
    cross-replica trace (relay proxy hop + owner execution) renders as one
    tree even though each replica stores only its own spans.
    """
    from repro.obs.aggregate import (
        fetch_recent_traces,
        fetch_trace_spans,
        render_trace_list,
        render_trace_tree,
    )

    if args.trace_id is None:
        rows = fetch_recent_traces(args.urls, limit=args.limit)
        print(render_trace_list(rows))
        return 0
    spans = fetch_trace_spans(args.urls, args.trace_id)
    if not spans:
        print(f"trace {args.trace_id} not found on any replica "
              f"({len(args.urls)} server(s) queried)", file=sys.stderr)
        return 1
    print(render_trace_tree(spans))
    return 0


def command_alerts(args) -> int:
    """One-shot alert evaluation over a replica's telemetry store.

    Replays the rule engine over every recorded scrape time in the
    ``--since`` horizon — so ``for:`` holds are reconstructed exactly as the
    live collector saw them — prints the verdict table, and exits 1 when
    anything is firing (the cron/CI contract).  Census instants (fleet,
    dist queue) read the *current* directories at every replayed tick;
    rules over them should use ``for: 0``.
    """
    from repro.obs.alerts import (
        AlertEngine,
        default_rules,
        fleet_down_signal,
        format_alert_table,
        load_rules,
        quarantine_signal,
    )
    from repro.obs.tsdb import TelemetryStore

    if not Path(args.telemetry_dir).is_dir():
        print(f"alerts failed: telemetry dir {args.telemetry_dir} does not "
              f"exist (is the replica running with --telemetry-dir?)",
              file=sys.stderr)
        return 2
    try:
        store = TelemetryStore(Path(args.telemetry_dir))
        rules = load_rules(args.rules) if args.rules else default_rules()
    except (OSError, ValueError) as error:
        print(f"alerts failed: {error}", file=sys.stderr)
        return 2
    instants = {}
    if args.fleet_dir:
        instants["fleet_replicas_down"] = fleet_down_signal(args.fleet_dir)
    if args.dist_dir:
        instants["dist_groups_quarantined"] = quarantine_signal(args.dist_dir)
    engine = AlertEngine(rules, store, instants=instants)

    times = store.scrape_times()
    if times:
        horizon = times[-1] - args.since
        engine.replay([t for t in times if t >= horizon])
    else:
        engine.evaluate()  # census instants still apply to an empty store
    payload = engine.as_dict()
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        if not times:
            print("no scrapes recorded in the telemetry store yet",
                  file=sys.stderr)
        print(format_alert_table(payload))
    return 1 if engine.firing() else 0


def configure(subparsers) -> None:
    trace = subparsers.add_parser(
        "trace", help="list or pretty-print request traces from servers")
    trace.add_argument("trace_id", nargs="?", default=None,
                       help="trace id to render as a span tree (omit to "
                            "list recent traces)")
    trace.add_argument("--url", required=True, action="append", dest="urls",
                       metavar="URL",
                       help="server base URL, e.g. http://127.0.0.1:8151; "
                            "repeat to merge spans across fleet replicas")
    trace.add_argument("--limit", type=int, default=10,
                       help="how many recent traces to list per server")
    trace.set_defaults(func=command_trace)

    alerts = subparsers.add_parser(
        "alerts", help="evaluate alert rules over a telemetry store once")
    alerts.add_argument("--telemetry-dir", required=True, dest="telemetry_dir",
                        metavar="DIR",
                        help="the replica's serve --telemetry-dir store")
    alerts.add_argument("--rules", default=None, metavar="FILE",
                        help="JSON alert rule file (default: the built-in "
                             "SLO burn-rate, shed-rate, trace-loss and "
                             "census rules)")
    alerts.add_argument("--fleet-dir", default=None, dest="fleet_dir",
                        metavar="DIR",
                        help="also evaluate the replica-down census rule "
                             "against this fleet membership directory")
    alerts.add_argument("--dist-dir", default=None, dest="dist_dir",
                        metavar="DIR",
                        help="also evaluate the worker-quarantine census "
                             "rule against this distributed queue")
    alerts.add_argument("--since", type=float, default=3600.0,
                        metavar="SECONDS",
                        help="replay the rule engine over the scrapes of "
                             "this trailing horizon (default: 3600)")
    alerts.add_argument("--json", action="store_true",
                        help="print the full /alerts payload as JSON "
                             "instead of the table")
    alerts.set_defaults(func=command_alerts)
