"""The ``sweep`` command: the full method x dataset x epsilon x repeat grid,
run on the in-process pool or fanned out through the distributed queue."""

from __future__ import annotations

import sys

from repro.cli.commands.shared import (
    add_preparation_cache_argument,
    add_sweep_grid_arguments,
    resolve_sweep_names,
    sweep_spec_from_args,
)


def print_sweep_summary(results, jobs, output) -> None:
    from repro.evaluation.reporting import render_series, render_table
    from repro.evaluation.runner import aggregate_results, series_from_results

    aggregated = aggregate_results(results)
    rows = [
        [method, dataset, f"{epsilon:g}", f"{stats['mean']:.4f}", f"{stats['std']:.4f}",
         f"{stats['min']:.4f}", f"{stats['max']:.4f}", stats["count"]]
        for (method, dataset, epsilon), stats in sorted(aggregated.items())
    ]
    print(render_table(
        ["method", "dataset", "epsilon", "mean", "std", "min", "max", "repeats"],
        rows, title=f"sweep ({len(results)} cells, jobs={jobs})"))
    print()
    print(render_series(series_from_results(results), title="mean micro-F1 series"))
    if output:
        print(f"\nresults stored in: {output}")


def command_sweep(args) -> int:
    """Run a full method x dataset x epsilon x repeat sweep on the parallel engine."""
    from repro.evaluation.figures import FigureSettings
    from repro.runtime.cells import expand_cells
    from repro.runtime.engine import ParallelExperimentRunner
    from repro.runtime.store import JsonlResultStore
    from repro.runtime.workers import FigureCellRunner

    methods, error = resolve_sweep_names(args)
    if error:
        print(error, file=sys.stderr)
        return 2
    if args.dist_dir:
        return _sweep_distributed(args, methods)

    settings = FigureSettings(
        scale=args.scale, repeats=args.repeats, seed=args.seed, epochs=args.epochs,
        encoder_epochs=args.encoder_epochs, datasets=tuple(args.datasets),
        epsilons=tuple(args.epsilons), jobs=args.jobs,
    )
    cells = expand_cells(methods, settings.datasets, settings.epsilons,
                         settings.repeats, seed=settings.seed)
    store = JsonlResultStore(args.output) if args.output else None
    engine = ParallelExperimentRunner(
        FigureCellRunner(settings=settings, delta=args.delta,
                         fast_sweep=not args.serial_cells,
                         preparation_cache=args.preparation_cache),
        jobs=args.jobs, store=store, progress=not args.quiet,
        resume_context=dict(settings.resume_context(), delta=args.delta),
    )
    results = engine.run(cells)
    print_sweep_summary(results, args.jobs, args.output)
    return 0


def _sweep_distributed(args, methods: list[str]) -> int:
    """The ``sweep --dist-dir`` fast path: submit, fan out local workers, merge."""
    from repro.distributed import Coordinator, start_local_workers
    from repro.runtime.store import JsonlResultStore

    spec = sweep_spec_from_args(args, methods)
    coordinator = Coordinator(args.dist_dir)
    report = coordinator.submit(spec)
    print(f"dist queue {args.dist_dir}: {report.summary()}", file=sys.stderr)

    workers = start_local_workers(
        args.dist_dir, jobs=args.jobs,
        preparation_cache=args.preparation_cache)
    try:
        completed = coordinator.wait(
            progress=not args.quiet,
            should_abort=lambda: not any(p.is_alive() for p in workers))
    finally:
        for process in workers:
            process.join()
    if not completed and coordinator.queue.pending_ids():
        print("distributed sweep did not complete (see the failed/ directory "
              "of the queue); rerun to resume", file=sys.stderr)
        return 1

    merge_report = coordinator.merge(args.output or None)
    print(merge_report.summary(), file=sys.stderr)
    results = JsonlResultStore(merge_report.output).load()
    print_sweep_summary(results, args.jobs, str(merge_report.output))
    return 0


def configure(subparsers) -> None:
    sweep = subparsers.add_parser(
        "sweep", help="run a method x dataset x epsilon x repeat sweep in parallel")
    add_sweep_grid_arguments(sweep)
    sweep.add_argument("--jobs", type=int, default=1,
                       help="number of parallel worker processes")
    sweep.add_argument("--output", default=None,
                       help="JSONL result store; rerunning with the same path "
                            "resumes an interrupted sweep")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress progress reporting on stderr")
    sweep.add_argument("--dist-dir", default=None, dest="dist_dir", metavar="DIR",
                       help="run the sweep through the distributed queue in DIR "
                            "instead of an in-process pool: submit the spec, "
                            "fan out --jobs local worker processes, merge the "
                            "shards (other machines may join with "
                            "'repro dist work --dist-dir DIR')")
    add_preparation_cache_argument(sweep)
    sweep.set_defaults(func=command_sweep)
