"""The ``dist`` sub-commands: shard a sweep across machines through a
shared-filesystem queue (submit / work / status / merge)."""

from __future__ import annotations

import sys

from repro.cli.commands.shared import (
    add_preparation_cache_argument,
    add_sweep_grid_arguments,
    resolve_sweep_names,
    sweep_spec_from_args,
)


def command_dist_submit(args) -> int:
    """Expand a sweep into the distributed queue (idempotent)."""
    from repro.distributed import Coordinator
    from repro.exceptions import ConfigurationError

    methods, error = resolve_sweep_names(args)
    if error:
        print(error, file=sys.stderr)
        return 2
    spec = sweep_spec_from_args(args, methods)
    try:
        report = Coordinator(args.dist_dir).submit(spec)
    except ConfigurationError as error:
        print(f"submit failed: {error}", file=sys.stderr)
        return 2
    print(f"spec {spec.digest()[:12]}: {spec.describe()}")
    print(report.summary())
    print(f"start workers with:  repro dist work --dist-dir {args.dist_dir}")
    return 0


def command_dist_work(args) -> int:
    """Run one worker loop against a queue until the sweep completes."""
    from repro.distributed import DistributedWorker
    from repro.exceptions import ConfigurationError

    worker = DistributedWorker(
        args.dist_dir, args.worker_id, lease_ttl=args.lease_ttl,
        poll_interval=args.poll_interval, max_groups=args.max_groups,
        wait_for_completion=not args.no_wait,
        preparation_cache=args.preparation_cache,
        max_attempts=args.max_attempts,
        log_stream=None if args.quiet else sys.stderr)
    try:
        report = worker.run()
    except ConfigurationError as error:
        print(f"worker failed to start: {error}", file=sys.stderr)
        return 2
    print(report.summary())
    return 1 if report.groups_quarantined else 0


def command_dist_status(args) -> int:
    """Print the queue census: groups done/leased/expired, per-worker holds."""
    from repro.distributed import Coordinator
    from repro.exceptions import ConfigurationError

    coordinator = Coordinator(args.dist_dir)
    try:
        spec = coordinator.spec()
    except ConfigurationError as error:
        print(f"status failed: {error}", file=sys.stderr)
        return 2
    print(f"spec {spec.digest()[:12]}: {spec.describe()}")
    print(coordinator.status().summary())
    return 0


def command_dist_merge(args) -> int:
    """Merge completed shards into one deduplicated, fingerprint-checked store."""
    from repro.distributed import Coordinator

    coordinator = Coordinator(args.dist_dir)
    try:
        report = coordinator.merge(args.output or None,
                                   require_complete=not args.partial)
    except (RuntimeError, ValueError) as error:
        print(f"merge failed: {error}", file=sys.stderr)
        return 1
    print(report.summary())
    return 0


def configure(subparsers) -> None:
    dist = subparsers.add_parser(
        "dist", help="shard a sweep across machines via a shared-filesystem queue")
    dist_sub = dist.add_subparsers(dest="dist_command", required=True)

    dist_submit = dist_sub.add_parser(
        "submit", help="expand a sweep spec into the queue (idempotent)")
    dist_submit.add_argument("--dist-dir", required=True, dest="dist_dir",
                             metavar="DIR", help="queue directory (shared filesystem)")
    add_sweep_grid_arguments(dist_submit)
    dist_submit.set_defaults(func=command_dist_submit)

    dist_work = dist_sub.add_parser(
        "work", help="claim and execute groups until the sweep completes")
    dist_work.add_argument("--dist-dir", required=True, dest="dist_dir", metavar="DIR")
    dist_work.add_argument("--worker-id", default=None, dest="worker_id",
                           help="stable worker identity (default: host-pid-nonce)")
    dist_work.add_argument("--lease-ttl", type=float, default=60.0, dest="lease_ttl",
                           help="seconds without a heartbeat before this worker's "
                                "claims may be re-leased by others")
    dist_work.add_argument("--poll-interval", type=float, default=0.5,
                           dest="poll_interval",
                           help="seconds between queue polls when nothing is claimable")
    dist_work.add_argument("--max-groups", type=int, default=None, dest="max_groups",
                           help="stop after completing this many groups")
    dist_work.add_argument("--max-attempts", type=int, default=3, dest="max_attempts",
                           help="failed executions of one group before it is "
                                "quarantined (moved out of the claimable set "
                                "with its traceback under failed/)")
    dist_work.add_argument("--no-wait", action="store_true", dest="no_wait",
                           help="exit when nothing is claimable instead of waiting "
                                "for the whole sweep to complete")
    dist_work.add_argument("--quiet", action="store_true",
                           help="suppress per-group progress lines on stderr")
    add_preparation_cache_argument(dist_work)
    dist_work.set_defaults(func=command_dist_work)

    dist_status = dist_sub.add_parser("status", help="print the queue census")
    dist_status.add_argument("--dist-dir", required=True, dest="dist_dir", metavar="DIR")
    dist_status.set_defaults(func=command_dist_status)

    dist_merge = dist_sub.add_parser(
        "merge", help="merge completed shards into one result store")
    dist_merge.add_argument("--dist-dir", required=True, dest="dist_dir", metavar="DIR")
    dist_merge.add_argument("--output", default=None,
                            help="merged JSONL path (default: DIR/merged.jsonl)")
    dist_merge.add_argument("--partial", action="store_true",
                            help="merge whatever shards exist instead of requiring "
                                 "a complete sweep")
    dist_merge.set_defaults(func=command_dist_merge)
