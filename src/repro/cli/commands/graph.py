"""The ``graph`` command family: live mutation of a replica's serving graph.

``repro graph update`` posts an edge-delta batch to a running server's
``POST /v1/graph/update`` (explicit edges, server-side sampled edges, or
both); ``repro graph status`` reads ``GET /v1/graph/status``.  Both talk to
one replica over HTTP — the fleet-wide epoch view lives in
``repro fleet status``.
"""

from __future__ import annotations

import json
import sys
import urllib.error
import urllib.request

DEFAULT_SERVER = "http://127.0.0.1:8151"


def _parse_edge(text: str) -> list:
    u, sep, v = text.partition(":")
    if not sep or not u.strip().isdigit() or not v.strip().isdigit():
        raise ValueError(f"edges are given as U:V with integer node ids, "
                         f"got {text!r}")
    return [int(u), int(v)]


def _request_json(url: str, *, body: dict | None = None,
                  timeout: float = 30.0):
    """One JSON round-trip; returns ``(status, payload)`` and treats an
    HTTP error with a JSON body (the server's 4xx shapes) as an answer."""
    data = None
    headers = {"Connection": "close"}
    if body is not None:
        data = json.dumps(body).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(url, data=data, headers=headers,
                                     method="POST" if body is not None
                                     else "GET")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return int(response.status), json.loads(response.read())
    except urllib.error.HTTPError as error:
        try:
            return int(error.code), json.loads(error.read())
        except (OSError, ValueError):
            return int(error.code), {"error": str(error)}


def command_graph_update(args) -> int:
    """Apply one edge-delta batch to a running server's serving graph."""
    try:
        inserts = [_parse_edge(edge) for edge in (args.insert or [])]
        deletes = [_parse_edge(edge) for edge in (args.delete or [])]
    except ValueError as error:
        print(f"graph update failed: {error}", file=sys.stderr)
        return 2
    payload: dict = {}
    if inserts:
        payload["insert"] = inserts
    if deletes:
        payload["delete"] = deletes
    if args.sample_insert:
        payload["sample_insert"] = args.sample_insert
    if args.sample_delete:
        payload["sample_delete"] = args.sample_delete
    if args.seed is not None:
        payload["seed"] = args.seed
    if args.graph:
        payload["graph"] = args.graph
    if not payload:
        print("graph update failed: nothing to apply; give --insert/--delete "
              "edges or --sample-insert/--sample-delete counts",
              file=sys.stderr)
        return 2
    url = args.server.rstrip("/") + "/v1/graph/update"
    try:
        status, answer = _request_json(url, body=payload,
                                       timeout=args.timeout)
    except (urllib.error.URLError, OSError) as error:
        print(f"graph update failed: {args.server} unreachable ({error})",
              file=sys.stderr)
        return 1
    if status != 200:
        print(f"graph update failed ({status}): "
              f"{answer.get('error', answer)}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(answer, indent=2, sort_keys=True))
        return 0
    timings = answer.get("timings_ms", {})
    print(f"graph {answer.get('graph')}: epoch "
          f"{answer.get('previous_epoch')} -> {answer.get('epoch')} "
          f"(digest {str(answer.get('digest'))[:16]}…)")
    print(f"  +{answer.get('inserted', 0)} edge(s), "
          f"-{answer.get('deleted', 0)} edge(s), "
          f"{len(answer.get('endpoints', []))} touched node(s)")
    print(f"  sessions refreshed: {answer.get('sessions_refreshed', 0)} "
          f"(apply {timings.get('apply', 0):g}ms, "
          f"re-propagate {timings.get('repropagate', 0):g}ms)")
    return 0


def command_graph_status(args) -> int:
    """Print a running server's versioned-graph status."""
    url = args.server.rstrip("/") + "/v1/graph/status"
    try:
        status, answer = _request_json(url, timeout=args.timeout)
    except (urllib.error.URLError, OSError) as error:
        print(f"graph status failed: {args.server} unreachable ({error})",
              file=sys.stderr)
        return 1
    if status != 200:
        print(f"graph status failed ({status}): "
              f"{answer.get('error', answer)}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(answer, indent=2, sort_keys=True))
        return 0
    graphs = answer.get("graphs", {})
    if not graphs:
        print("no serving graph loaded yet (serve a prediction first)")
    for key in sorted(graphs):
        info = graphs[key]
        print(f"graph {key}: epoch {info.get('epoch')} "
              f"(digest {str(info.get('digest'))[:16]}…)")
        print(f"  {info.get('nodes')} node(s), {info.get('edges')} edge(s), "
              f"{info.get('updates')} update(s) applied; retained epochs "
              f"{info.get('retained_epochs')}")
    stats = answer.get("stats", {})
    if stats:
        print(f"rebuilds: {stats.get('sessions_rebuilt_incremental', 0)} "
              f"incremental, {stats.get('sessions_rebuilt_full', 0)} full; "
              f"rows recomputed {stats.get('rows_recomputed', 0)}, "
              f"reused {stats.get('rows_reused', 0)}")
    return 0


def configure(subparsers) -> None:
    graph = subparsers.add_parser(
        "graph", help="inspect or mutate a running server's serving graph")
    graph_sub = graph.add_subparsers(dest="graph_command", required=True)

    update = graph_sub.add_parser(
        "update", help="apply an edge-delta batch (inserts/deletes) to the "
                       "serving graph; the epoch advances atomically")
    update.add_argument("--server", default=DEFAULT_SERVER,
                        help=f"server base URL (default: {DEFAULT_SERVER})")
    update.add_argument("--insert", action="append", metavar="U:V",
                        help="edge to insert, as two node ids U:V; repeat "
                             "for a batch")
    update.add_argument("--delete", action="append", metavar="U:V",
                        help="edge to delete, as two node ids U:V; repeat "
                             "for a batch")
    update.add_argument("--sample-insert", type=int, default=0,
                        dest="sample_insert", metavar="N",
                        help="additionally insert N server-sampled random "
                             "non-edges")
    update.add_argument("--sample-delete", type=int, default=0,
                        dest="sample_delete", metavar="N",
                        help="additionally delete N server-sampled random "
                             "existing edges")
    update.add_argument("--seed", type=int, default=None,
                        help="seed for the server-side edge sampling")
    update.add_argument("--graph", default=None, metavar="KEY",
                        help="graph store key to update (only needed when "
                             "the server holds several graphs)")
    update.add_argument("--timeout", type=float, default=120.0,
                        help="seconds to wait for apply + re-propagation")
    update.add_argument("--json", action="store_true",
                        help="print the full update response as JSON")
    update.set_defaults(func=command_graph_update)

    status = graph_sub.add_parser(
        "status", help="show the serving graph's epoch, digest and "
                       "update/rebuild counters")
    status.add_argument("--server", default=DEFAULT_SERVER,
                        help=f"server base URL (default: {DEFAULT_SERVER})")
    status.add_argument("--timeout", type=float, default=10.0,
                        help="seconds to wait for the status response")
    status.add_argument("--json", action="store_true",
                        help="print the full status payload as JSON")
    status.set_defaults(func=command_graph_status)
