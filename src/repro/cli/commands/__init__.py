"""The command registry: one module per command family.

Each module exposes ``configure(subparsers)`` which registers its parsers
and binds each one's ``func`` default to the handler;
:func:`repro.cli.main.build_parser` walks :data:`COMMAND_MODULES` in order.
Adding a command means adding a module here (or a parser to an existing
one) — ``main.py`` never changes, and ``tests/test_docs.py`` walks the
live argparse tree so ``docs/cli.md`` must name whatever is registered.
"""

from repro.cli.commands import (
    dist,
    experiments,
    fleet,
    graph,
    obs,
    serving,
    sweep,
)

COMMAND_MODULES = (
    experiments,
    sweep,
    dist,
    serving,
    graph,
    fleet,
    obs,
)

__all__ = ["COMMAND_MODULES"]
