"""The ``publish`` and ``serve`` commands: release a sweep winner into the
model registry and serve registry models over the batched HTTP JSON API."""

from __future__ import annotations

import sys
from pathlib import Path

from repro.cli.commands.shared import (
    add_sweep_grid_arguments,
    resolve_sweep_names,
    sweep_spec_from_args,
)


def command_publish(args) -> int:
    """Publish the winning GCON cell of a sweep store into a model registry.

    The sweep grid arguments must repeat the knobs of the sweep that produced
    ``--store`` (they default to the sweep defaults); the rebuilt context
    fingerprint is checked against the stamp on the winning record, so a
    store cannot silently be published under different settings.  The cell is
    refit from its deterministic seed — the released theta is recomputed, not
    read from the store, which only ever holds scores.
    """
    from repro.graphs.datasets import load_dataset
    from repro.runtime.cells import derive_cell_seed
    from repro.runtime.store import JsonlResultStore, best_record
    from repro.runtime.workers import score_estimator
    from repro.serving import ModelRegistry

    methods, error = resolve_sweep_names(args)
    if error:
        print(error, file=sys.stderr)
        return 2
    store = JsonlResultStore(args.store)
    records = store.load()
    if not records:
        print(f"store {args.store} holds no records", file=sys.stderr)
        return 2
    try:
        winner = best_record(records, method=args.select_method,
                             dataset=args.select_dataset,
                             epsilon=args.select_epsilon)
    except ValueError as error:
        print(f"publish failed: {error}", file=sys.stderr)
        return 2
    if winner.method != "GCON":
        print(f"publish failed: the winning record is {winner.method!r}; only "
              f"GCON releases are publishable (narrow with --method)",
              file=sys.stderr)
        return 2

    spec = sweep_spec_from_args(args, methods)
    stamped = winner.extra.get("sweep_context")
    if stamped is not None and stamped != spec.context_digest():
        print(f"publish failed: the store was produced under sweep context "
              f"{stamped}, but the given grid arguments fingerprint to "
              f"{spec.context_digest()}; repeat the original sweep's knobs",
              file=sys.stderr)
        return 2
    if stamped is None:
        print("warning: the winning record carries no sweep-context stamp; "
              "trusting the given grid arguments", file=sys.stderr)

    from repro.core.model import GCON
    from repro.core.propagation import graph_fingerprint
    from repro.evaluation.figures import default_gcon_config

    settings = spec.settings()
    graph = load_dataset(winner.dataset, scale=spec.scale, seed=spec.seed)
    delta = spec.delta if spec.delta is not None else 1.0 / max(graph.num_edges, 1)
    cell_seed = derive_cell_seed(spec.seed, winner.dataset, winner.method,
                                 winner.repeat)
    model = GCON(default_gcon_config(winner.epsilon, delta, settings))
    model.fit(graph, seed=cell_seed)
    refit_score = score_estimator(model, graph, args.inference_mode)

    registry = ModelRegistry(args.registry)
    record = registry.publish(model, args.name, inference_mode=args.inference_mode,
                              training={
                                  "dataset": winner.dataset,
                                  "scale": spec.scale,
                                  "graph_seed": spec.seed,
                                  # Epoch-0 digest of the training graph:
                                  # /v1/graph/status reports the serving
                                  # digest, so drift is detectable.
                                  "graph_digest": graph_fingerprint(
                                      graph.adjacency),
                                  "cell_seed": cell_seed,
                                  "repeat": winner.repeat,
                                  "epsilon": winner.epsilon,
                                  "store_micro_f1": winner.micro_f1,
                                  "refit_micro_f1": refit_score,
                                  "sweep_context": stamped,
                                  "store": str(args.store),
                              })
    epsilon, delta_spent = model.privacy_spent
    print(f"published {record.ref} (digest {record.digest[:16]}…)")
    print(f"  source cell: {winner.method}/{winner.dataset} "
          f"epsilon={winner.epsilon:g} repeat={winner.repeat} "
          f"(store micro-F1 {winner.micro_f1:.4f})")
    print(f"  privacy: epsilon={epsilon:g}, delta={delta_spent:.3g}")
    print(f"  refit test micro-F1 ({args.inference_mode} inference): {refit_score:.4f}")
    if abs(refit_score - winner.micro_f1) > 0.02:
        print("  note: refit score differs from the store record by more than "
              "0.02 — the record may come from the vectorised sweep fast path "
              "(solver-tolerance-level drift is expected)", file=sys.stderr)
    print(f"serve it with:  repro serve --registry {args.registry} "
          f"--model {args.name}@latest")
    return 0


def _parse_advertise(advertise: str | None, host: str, port: int) -> tuple[str, int]:
    """``--advertise HOST[:PORT]`` → the address peers dial; defaults to the
    actually bound host:port (so ``--port 0`` advertises the ephemeral one)."""
    if not advertise:
        return host, port
    adv_host, sep, adv_port = advertise.rpartition(":")
    if sep and adv_port.isdigit():
        return adv_host or host, int(adv_port)
    return advertise, port


def _build_telemetry(args):
    """Validate the ``--telemetry-dir`` configuration up front, before the
    socket binds: the store root, the rule set (file or defaults) and the
    scrape interval all fail here with a clean message, never mid-serve.
    Returns ``(store, rules, error_message)``."""
    from repro.obs.alerts import default_rules, load_rules
    from repro.obs.tsdb import TelemetryStore

    if args.scrape_interval <= 0:
        return None, None, f"--scrape-interval must be > 0, got {args.scrape_interval:g}"
    try:
        store = TelemetryStore(Path(args.telemetry_dir))
        rules = (load_rules(args.alert_rules) if args.alert_rules
                 else default_rules())
    except (OSError, ValueError) as error:
        return None, None, str(error)
    return store, rules, None


def command_serve(args) -> int:
    """Serve registry models over the selector-loop HTTP JSON API."""
    from repro.serving import InferenceService, SloController, serve_http

    telemetry_store = rules = None
    if args.telemetry_dir:
        telemetry_store, rules, error = _build_telemetry(args)
        if error:
            print(f"serve failed: {error}", file=sys.stderr)
            return 2

    max_queue_depth = args.max_queue_depth if args.max_queue_depth > 0 else None
    service = InferenceService(
        args.registry, max_batch_size=args.batch_size,
        max_latency=args.max_latency_ms / 1000.0,
        max_queue_depth=max_queue_depth,
        mmap_bundles=not args.no_mmap)
    records = []
    try:
        for ref in args.models:
            records.append(service.registry.verify(ref))
            # Warm each session (graph load, encoder forward pass,
            # propagation) before binding the socket, so the first query pays
            # only one matmul — and a bad manifest/graph fails here with a
            # clean message instead of on the first request.  Warming also
            # matters more now: a cold build would run on the selector loop.
            service.predict_scores(ref, [0])
    except Exception as error:
        print(f"serve failed: {error}", file=sys.stderr)
        return 2
    controller = None
    if args.slo_p99_ms > 0 and not args.static_batching:
        controller = SloController(service.batcher,
                                   target_p99=args.slo_p99_ms / 1000.0)
        service.attach_slo(controller)
        controller.start()
    server = serve_http(service, host=args.host, port=args.port,
                        log_stream=None if args.quiet else sys.stderr,
                        max_connections=args.max_connections,
                        stats_interval=args.stats_interval,
                        trace=not args.no_trace)
    host, port = server.server_address[:2]

    member = None
    if args.fleet_dir:
        from repro.serving import FleetMember, FleetRouter, default_replica_id

        adv_host, adv_port = _parse_advertise(args.advertise, host, port)
        replica_id = args.replica_id or default_replica_id(adv_host, adv_port)
        try:
            member = FleetMember(args.fleet_dir, replica_id, adv_host,
                                 adv_port, ttl=args.fleet_ttl)
            member.join(service.loaded_digests(),
                        graph_epochs=service.graph_epochs())
        except Exception as error:
            server.server_close()
            if controller is not None:
                controller.close()
            service.close()
            print(f"serve failed: {error}", file=sys.stderr)
            return 2
        member.start()
        server.fleet = FleetRouter(member, proxy=not args.fleet_redirect)

        def _advertise_epochs(_result):
            # An applied edge delta re-advertises the new epoch map on the
            # membership lease, so `repro fleet status` shows agreement.
            member.advertise(service.loaded_digests(),
                             graph_epochs=service.graph_epochs())

        service.on_graph_update = _advertise_epochs

    collector = None
    if telemetry_store is not None:
        from repro.obs.alerts import AlertEngine, fleet_down_signal
        from repro.obs.collector import TelemetryCollector
        from repro.obs.prometheus import render_server_metrics

        instants = {}
        if args.fleet_dir:
            instants["fleet_replicas_down"] = fleet_down_signal(args.fleet_dir)
        engine = AlertEngine(
            rules, telemetry_store, instants=instants,
            history_path=Path(args.telemetry_dir) / "alerts.jsonl")
        server.alerts = engine  # GET /alerts serves the latest evaluation
        collector = TelemetryCollector(
            telemetry_store,
            lambda: render_server_metrics(service, server=server,
                                          tracer=server.tracer),
            interval=args.scrape_interval,
            replica=member.replica_id if member is not None else "local",
            engine=engine)
        collector.start()

    watcher = None
    if args.reload_interval and args.reload_interval > 0:
        from repro.serving import watch_models

        def _readvertise(_name, _old, _new):
            if member is not None:
                member.advertise(service.loaded_digests(),
                                 graph_epochs=service.graph_epochs())

        watcher = watch_models(service, args.models,
                               interval=args.reload_interval,
                               on_flip=_readvertise).start()

    served = ", ".join(f"{record.ref} (mode={record.inference_mode})"
                       for record in records)
    slo_note = (f"slo p99<={args.slo_p99_ms:g}ms" if controller is not None
                else "static batching")
    depth_note = (f"queue<={max_queue_depth}" if max_queue_depth is not None
                  else "no admission cap")
    fleet_note = (f", fleet {member.replica_id} in {args.fleet_dir} "
                  f"(ttl {args.fleet_ttl:g}s)" if member is not None else "")
    telemetry_note = (f", telemetry in {args.telemetry_dir} "
                      f"(scrape {args.scrape_interval:g}s, "
                      f"{len(rules)} alert rule(s))"
                      if collector is not None else "")
    print(f"serving {served} on http://{host}:{port} "
          f"(batch<={args.batch_size}, latency<={args.max_latency_ms:g}ms, "
          f"connections<={args.max_connections}, {slo_note}, {depth_note})"
          f"{fleet_note}{telemetry_note}",
          file=sys.stderr, flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if watcher is not None:
            watcher.close()
        if collector is not None:
            collector.close()
        if member is not None:
            member.leave()  # graceful: the census drops us immediately
        server.server_close()
        if controller is not None:
            controller.close()
        service.close()
    return 0


def configure(subparsers) -> None:
    publish = subparsers.add_parser(
        "publish", help="publish the winning sweep cell into a model registry")
    publish.add_argument("--store", required=True,
                         help="JSONL result store of the finished sweep")
    publish.add_argument("--registry", required=True, metavar="DIR",
                         help="model registry root directory")
    publish.add_argument("--name", required=True,
                         help="model name to publish under (versions are "
                              "content-addressed; latest advances)")
    publish.add_argument("--method", default="GCON", dest="select_method",
                         help="restrict winner selection to this method "
                              "(default: GCON, the only publishable release)")
    publish.add_argument("--dataset", default=None, dest="select_dataset",
                         help="restrict winner selection to this dataset")
    publish.add_argument("--epsilon", type=float, default=None, dest="select_epsilon",
                         help="restrict winner selection to this privacy budget")
    publish.add_argument("--inference-mode", choices=("private", "public"),
                         default="private", dest="inference_mode",
                         help="default Algorithm-4 mode stamped into the manifest")
    add_sweep_grid_arguments(publish)
    publish.set_defaults(func=command_publish)

    serve = subparsers.add_parser(
        "serve", help="serve registry models over a batched HTTP JSON API")
    serve.add_argument("--registry", required=True, metavar="DIR",
                       help="model registry root directory")
    serve.add_argument("--model", required=True, action="append",
                       dest="models", metavar="REF",
                       help="model reference, e.g. NAME@latest or "
                            "NAME@<digest>; repeat to verify and pre-warm "
                            "several models (each gets its own batch queue)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8151,
                       help="TCP port (0 binds an ephemeral port)")
    serve.add_argument("--batch-size", type=int, default=64, dest="batch_size",
                       help="flush a model's micro-batch at this many "
                            "queried rows (per-model queues)")
    serve.add_argument("--max-latency-ms", type=float, default=5.0,
                       dest="max_latency_ms",
                       help="flush a model's forming micro-batch after this "
                            "many milliseconds even if not full")
    serve.add_argument("--max-connections", type=int, default=512,
                       dest="max_connections",
                       help="concurrent connection bound of the selector "
                            "frontend; excess accepts are answered 503")
    serve.add_argument("--stats-interval", type=float, default=None,
                       dest="stats_interval", metavar="SECONDS",
                       help="log a per-model latency summary "
                            "(n/p50/p95/p99) to stderr every SECONDS")
    serve.add_argument("--slo-p99-ms", type=float, default=50.0,
                       dest="slo_p99_ms", metavar="MS",
                       help="target request p99 in milliseconds; an AIMD "
                            "controller tunes each model's batch budgets to "
                            "hold it (0 disables, like --static-batching)")
    serve.add_argument("--static-batching", action="store_true",
                       dest="static_batching",
                       help="disable the SLO controller and keep the "
                            "--batch-size/--max-latency-ms limits fixed")
    serve.add_argument("--max-queue-depth", type=int, default=512,
                       dest="max_queue_depth", metavar="N",
                       help="shed load with HTTP 429 + Retry-After once a "
                            "model has this many requests in flight "
                            "(0 disables admission control)")
    serve.add_argument("--no-mmap", action="store_true", dest="no_mmap",
                       help="load model bundles eagerly instead of "
                            "memory-mapping them (scores are bitwise "
                            "identical either way)")
    serve.add_argument("--fleet-dir", default=None, dest="fleet_dir",
                       metavar="DIR",
                       help="join the replica fleet coordinated under DIR: "
                            "hold a membership lease there and route each "
                            "model digest to its owning replica over a "
                            "consistent-hash ring")
    serve.add_argument("--advertise", default=None, metavar="HOST[:PORT]",
                       help="address peers should reach this replica at "
                            "(default: the bound host:port)")
    serve.add_argument("--replica-id", default=None, dest="replica_id",
                       help="fleet replica id (default: derived from the "
                            "advertised address and pid; must be unique "
                            "per fleet)")
    serve.add_argument("--fleet-ttl", type=float, default=10.0,
                       dest="fleet_ttl", metavar="SECONDS",
                       help="membership lease TTL: a replica that misses "
                            "heartbeats this long is expired and its ring "
                            "arcs move to the survivors (default: 10)")
    serve.add_argument("--fleet-redirect", action="store_true",
                       dest="fleet_redirect",
                       help="answer peer-owned digests with a 307 redirect "
                            "instead of proxying server-side")
    serve.add_argument("--reload-interval", type=float, default=1.0,
                       dest="reload_interval", metavar="SECONDS",
                       help="poll the registry's latest pointers this often; "
                            "a flipped version is pre-warmed before the old "
                            "one's queues retire (0 disables hot-reload)")
    serve.add_argument("--telemetry-dir", default=None, dest="telemetry_dir",
                       metavar="DIR",
                       help="retain this replica's own /metrics scrapes in an "
                            "append-only telemetry store under DIR and run "
                            "the alert rule engine over them; GET /alerts "
                            "and 'repro alerts' read the verdicts")
    serve.add_argument("--scrape-interval", type=float, default=5.0,
                       dest="scrape_interval", metavar="SECONDS",
                       help="seconds between telemetry self-scrapes (and "
                            "alert rule evaluations) when --telemetry-dir "
                            "is set (default: 5)")
    serve.add_argument("--alert-rules", default=None, dest="alert_rules",
                       metavar="FILE",
                       help="JSON alert rule file evaluated by the telemetry "
                            "collector (default: the built-in SLO burn-rate, "
                            "shed-rate, trace-loss and census rules)")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress per-request log lines on stderr")
    serve.add_argument("--no-trace", action="store_true", dest="no_trace",
                       help="disable request tracing (/debug/traces and the "
                            "per-stage histograms on /metrics; scores are "
                            "bitwise identical either way)")
    serve.set_defaults(func=command_serve)
