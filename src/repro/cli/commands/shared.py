"""Argument-parsing helpers shared across the command modules.

The sweep grid arguments live here because three surfaces (``sweep``,
``dist submit``, ``publish``) must mean exactly the same thing by them:
same defaults, same resume context, same spec fingerprint.
"""

from __future__ import annotations

import argparse
import math


def parse_steps(raw: str) -> tuple:
    """Parse a comma-separated propagation-step list such as ``"1,2,inf"``."""
    steps = []
    for token in raw.split(","):
        token = token.strip().lower()
        if not token:
            continue
        steps.append(math.inf if token in ("inf", "infinity") else int(token))
    if not steps:
        raise argparse.ArgumentTypeError("at least one propagation step is required")
    return tuple(steps)


def parse_name_list(raw: str) -> list[str]:
    names = [token.strip() for token in raw.split(",") if token.strip()]
    if not names:
        raise argparse.ArgumentTypeError("at least one name is required")
    return names


def parse_float_list(raw: str) -> list[float]:
    try:
        values = [float(token) for token in raw.split(",") if token.strip()]
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None
    if not values:
        raise argparse.ArgumentTypeError("at least one value is required")
    return values


def add_preparation_cache_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--preparation-cache", default=None, dest="preparation_cache", metavar="DIR",
        help="directory of the content-addressed preparation store: fitted "
             "encoder weights and propagated features are cached by "
             "(config, graph, seed), so repeats and resumed sweeps skip the "
             "preparation phase (default: $REPRO_PREPARATION_CACHE when set)")


def add_sweep_grid_arguments(parser: argparse.ArgumentParser) -> None:
    """The sweep grid plus every numerical knob, shared by ``sweep`` and
    ``dist submit`` so a distributed spec means exactly what a local sweep
    means (same defaults, same resume context)."""
    parser.add_argument("--datasets", type=parse_name_list, default=["cora_ml"],
                        help="comma-separated dataset presets")
    parser.add_argument("--methods", type=parse_name_list, default=None,
                        help="comma-separated method names (default: all registered)")
    parser.add_argument("--epsilons", type=parse_float_list,
                        default=[0.5, 1.0, 2.0, 3.0, 4.0],
                        help="comma-separated privacy budgets")
    parser.add_argument("--repeats", type=int, default=1,
                        help="independent repeats per cell")
    parser.add_argument("--scale", type=float, default=0.25,
                        help="dataset down-scaling factor (1.0 = paper size)")
    parser.add_argument("--seed", type=int, default=0, help="master random seed")
    parser.add_argument("--delta", type=float, default=None,
                        help="privacy parameter delta (default: 1/|E| per graph)")
    parser.add_argument("--epochs", type=int, default=120,
                        help="training epochs of the non-convex baselines")
    parser.add_argument("--encoder-epochs", type=int, default=150, dest="encoder_epochs",
                        help="GCON public-encoder training epochs")
    parser.add_argument("--serial-cells", action="store_true", dest="serial_cells",
                        help="run every cell through the per-cell reference path "
                             "instead of the vectorised epsilon-sweep solver")


def add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="cora_ml",
                        help="dataset preset name (see 'datasets' sub-command)")
    parser.add_argument("--scale", type=float, default=0.25,
                        help="down-scaling factor of the synthetic preset (1.0 = paper size)")
    parser.add_argument("--seed", type=int, default=0, help="master random seed")


def add_gcon_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--epsilon", type=float, default=1.0, help="privacy budget epsilon")
    parser.add_argument("--delta", type=float, default=None,
                        help="privacy parameter delta (default: 1/|E|)")
    parser.add_argument("--alpha", type=float, default=0.8, help="restart probability")
    parser.add_argument("--steps", type=parse_steps, default=(2,),
                        help="comma-separated propagation steps, e.g. '2' or '1,2,inf'")
    parser.add_argument("--loss", choices=("soft_margin", "pseudo_huber"),
                        default="soft_margin", help="convex per-class loss")
    parser.add_argument("--lambda-reg", type=float, default=0.2, dest="lambda_reg",
                        help="regularisation coefficient Lambda")
    parser.add_argument("--encoder-dim", type=int, default=16, dest="encoder_dim",
                        help="encoder output dimension d1")
    parser.add_argument("--pseudo-labels", action="store_true", dest="pseudo_labels",
                        help="expand the training set with encoder pseudo-labels (n1 = n)")
    parser.add_argument("--inference-mode", choices=("private", "public"),
                        default="private", help="Algorithm-4 inference mode")


def load_graph(args):
    from repro.graphs.datasets import load_dataset

    return load_dataset(args.dataset, scale=args.scale, seed=args.seed)


def build_gcon(args, graph):
    from repro.core.config import GCONConfig
    from repro.core.model import GCON

    config = GCONConfig(
        epsilon=args.epsilon,
        delta=args.delta,
        alpha=args.alpha,
        propagation_steps=args.steps,
        loss=args.loss,
        lambda_reg=args.lambda_reg,
        encoder_dim=args.encoder_dim,
        use_pseudo_labels=args.pseudo_labels,
    )
    return GCON(config)


def resolve_sweep_names(args) -> tuple[list[str] | None, str | None]:
    """Validate --methods/--datasets; returns (methods, error message)."""
    from repro.evaluation.figures import FigureSettings, build_method_registry
    from repro.graphs.datasets import list_datasets

    registry = build_method_registry(FigureSettings())
    methods = args.methods if args.methods is not None else list(registry)
    unknown = [name for name in methods if name not in registry]
    if unknown:
        return None, (f"unknown methods: {', '.join(unknown)} "
                      f"(available: {', '.join(registry)})")
    known_datasets = list_datasets()
    unknown = [name for name in args.datasets if name not in known_datasets]
    if unknown:
        return None, (f"unknown datasets: {', '.join(unknown)} "
                      f"(available: {', '.join(known_datasets)})")
    return methods, None


def sweep_spec_from_args(args, methods: list[str]):
    """The distributed :class:`SweepSpec` equivalent of this ``sweep`` run."""
    from repro.distributed import SweepSpec

    return SweepSpec(
        methods=tuple(methods), datasets=tuple(args.datasets),
        epsilons=tuple(args.epsilons), repeats=args.repeats, seed=args.seed,
        scale=args.scale, delta=args.delta, epochs=args.epochs,
        encoder_epochs=args.encoder_epochs,
        fast_sweep=not getattr(args, "serial_cells", False),
    )
