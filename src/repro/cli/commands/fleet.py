"""The ``fleet`` sub-commands: census inspection and the live dashboard."""

from __future__ import annotations

import sys
import time
import urllib.error


def command_fleet_status(args) -> int:
    """Print the fleet census: replicas, lease ages, digest routing."""
    from repro.serving import FleetView

    view = FleetView(args.fleet_dir)
    status = view.status()
    if not status.replicas:
        print(f"fleet {view.fleet_dir}: no replicas (no lease files)")
        return 0
    print(status.summary())
    if args.metrics:
        from repro.obs.aggregate import fleet_metrics_report

        print()
        print(fleet_metrics_report(
            [(replica.replica_id, replica.base_url)
             for replica in status.live]))
    return 0


def command_fleet_watch(args) -> int:
    """Redraw a live fleet dashboard: scrape every live replica each tick
    into an in-memory telemetry store, evaluate the alert rules, render.

    The watcher holds no files — its store keeps only the trailing window —
    so it can point at any fleet directory without touching the replicas'
    own ``--telemetry-dir`` retention.
    """
    from repro.obs.aggregate import scrape_page
    from repro.obs.alerts import AlertEngine, default_rules, fleet_down_signal, load_rules
    from repro.obs.dashboard import render_dashboard
    from repro.obs.tsdb import TelemetryStore
    from repro.serving import FleetView

    if args.interval <= 0:
        print(f"--interval must be > 0, got {args.interval:g}", file=sys.stderr)
        return 2
    try:
        rules = load_rules(args.rules) if args.rules else default_rules()
    except (OSError, ValueError) as error:
        print(f"fleet watch failed: {error}", file=sys.stderr)
        return 2
    # In-memory store: enough retention for the slowest rule window plus
    # the dashboard window, nothing written to disk.
    horizon = max([args.window, 300.0,
                   *(rule.slow_window for rule in rules
                     if rule.kind == "burn_rate")])
    store = TelemetryStore(retention=2 * horizon)
    engine = AlertEngine(
        rules, store,
        instants={"fleet_replicas_down": fleet_down_signal(args.fleet_dir)})
    view = FleetView(args.fleet_dir)

    iterations = 0
    clear = not args.no_clear and sys.stdout.isatty()
    try:
        while True:
            status = view.status()
            unreachable = []
            for replica in status.live:
                try:
                    page = scrape_page(replica.base_url, timeout=args.timeout)
                    store.append_page(page, replica=replica.replica_id)
                except (urllib.error.URLError, OSError, ValueError):
                    unreachable.append(replica.replica_id)
            engine.evaluate()
            frame = render_dashboard(status, store, engine,
                                     window=args.window,
                                     unreachable=unreachable)
            if clear:
                print("\x1b[H\x1b[2J", end="")
            print(frame, flush=True)
            iterations += 1
            if args.iterations is not None and iterations >= args.iterations:
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    return 0


def configure(subparsers) -> None:
    fleet = subparsers.add_parser(
        "fleet", help="inspect a serving fleet's shared membership directory")
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    fleet_status = fleet_sub.add_parser(
        "status", help="print the replica census and digest routing table")
    fleet_status.add_argument("--fleet-dir", required=True, dest="fleet_dir",
                              metavar="DIR",
                              help="the membership directory the replicas "
                                   "share (their serve --fleet-dir)")
    fleet_status.add_argument("--metrics", action="store_true",
                              help="scrape every live replica's /metrics and "
                                   "print fleet-wide per-model latency "
                                   "quantiles (exact histogram merge)")
    fleet_status.set_defaults(func=command_fleet_status)

    fleet_watch = fleet_sub.add_parser(
        "watch", help="live terminal dashboard over the fleet's replicas")
    fleet_watch.add_argument("--fleet-dir", required=True, dest="fleet_dir",
                             metavar="DIR",
                             help="the membership directory the replicas share")
    fleet_watch.add_argument("--interval", type=float, default=2.0,
                             metavar="SECONDS",
                             help="seconds between scrape-and-redraw ticks")
    fleet_watch.add_argument("--window", type=float, default=60.0,
                             metavar="SECONDS",
                             help="trailing window of the rate/p99 columns")
    fleet_watch.add_argument("--iterations", type=int, default=None,
                             metavar="N",
                             help="render N frames then exit (default: run "
                                  "until interrupted; N=1 is a one-shot "
                                  "snapshot for scripts and CI)")
    fleet_watch.add_argument("--rules", default=None, metavar="FILE",
                             help="JSON alert rule file (default: the "
                                  "built-in rules)")
    fleet_watch.add_argument("--timeout", type=float, default=2.0,
                             metavar="SECONDS",
                             help="per-replica scrape timeout")
    fleet_watch.add_argument("--no-clear", action="store_true", dest="no_clear",
                             help="append frames instead of clearing the "
                                  "terminal between redraws")
    fleet_watch.set_defaults(func=command_fleet_watch)
