"""Argument parsing and sub-command dispatch for the ``gcon-repro`` CLI.

The sub-commands themselves live in :mod:`repro.cli.commands`, one module
per family (experiments, sweep, dist, serving, fleet, obs); each registers
its parsers through ``configure(subparsers)``.  This module only assembles
the tree and dispatches — ``build_parser``/``main`` stay importable from
here, which is the surface the console scripts, ``python -m repro.cli``
and the test suite bind to.
"""

from __future__ import annotations

import argparse
import sys

from repro.cli.commands import COMMAND_MODULES
from repro.version import __version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gcon-repro",
        description="Reproduction of GCON (ICDE 2025): DP GCNs via objective perturbation.",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)
    for module in COMMAND_MODULES:
        module.configure(subparsers)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv if argv is not None else sys.argv[1:])
    return args.func(args)
