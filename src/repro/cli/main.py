"""Argument parsing and sub-command dispatch for the ``gcon-repro`` CLI."""

from __future__ import annotations

import argparse
import math
import sys
from pathlib import Path

from repro.version import __version__


# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #
def _parse_steps(raw: str) -> tuple:
    """Parse a comma-separated propagation-step list such as ``"1,2,inf"``."""
    steps = []
    for token in raw.split(","):
        token = token.strip().lower()
        if not token:
            continue
        steps.append(math.inf if token in ("inf", "infinity") else int(token))
    if not steps:
        raise argparse.ArgumentTypeError("at least one propagation step is required")
    return tuple(steps)


def _add_preparation_cache_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--preparation-cache", default=None, dest="preparation_cache", metavar="DIR",
        help="directory of the content-addressed preparation store: fitted "
             "encoder weights and propagated features are cached by "
             "(config, graph, seed), so repeats and resumed sweeps skip the "
             "preparation phase (default: $REPRO_PREPARATION_CACHE when set)")


def _add_sweep_grid_arguments(parser: argparse.ArgumentParser) -> None:
    """The sweep grid plus every numerical knob, shared by ``sweep`` and
    ``dist submit`` so a distributed spec means exactly what a local sweep
    means (same defaults, same resume context)."""
    parser.add_argument("--datasets", type=_parse_name_list, default=["cora_ml"],
                        help="comma-separated dataset presets")
    parser.add_argument("--methods", type=_parse_name_list, default=None,
                        help="comma-separated method names (default: all registered)")
    parser.add_argument("--epsilons", type=_parse_float_list,
                        default=[0.5, 1.0, 2.0, 3.0, 4.0],
                        help="comma-separated privacy budgets")
    parser.add_argument("--repeats", type=int, default=1,
                        help="independent repeats per cell")
    parser.add_argument("--scale", type=float, default=0.25,
                        help="dataset down-scaling factor (1.0 = paper size)")
    parser.add_argument("--seed", type=int, default=0, help="master random seed")
    parser.add_argument("--delta", type=float, default=None,
                        help="privacy parameter delta (default: 1/|E| per graph)")
    parser.add_argument("--epochs", type=int, default=120,
                        help="training epochs of the non-convex baselines")
    parser.add_argument("--encoder-epochs", type=int, default=150, dest="encoder_epochs",
                        help="GCON public-encoder training epochs")
    parser.add_argument("--serial-cells", action="store_true", dest="serial_cells",
                        help="run every cell through the per-cell reference path "
                             "instead of the vectorised epsilon-sweep solver")


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="cora_ml",
                        help="dataset preset name (see 'datasets' sub-command)")
    parser.add_argument("--scale", type=float, default=0.25,
                        help="down-scaling factor of the synthetic preset (1.0 = paper size)")
    parser.add_argument("--seed", type=int, default=0, help="master random seed")


def _add_gcon_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--epsilon", type=float, default=1.0, help="privacy budget epsilon")
    parser.add_argument("--delta", type=float, default=None,
                        help="privacy parameter delta (default: 1/|E|)")
    parser.add_argument("--alpha", type=float, default=0.8, help="restart probability")
    parser.add_argument("--steps", type=_parse_steps, default=(2,),
                        help="comma-separated propagation steps, e.g. '2' or '1,2,inf'")
    parser.add_argument("--loss", choices=("soft_margin", "pseudo_huber"),
                        default="soft_margin", help="convex per-class loss")
    parser.add_argument("--lambda-reg", type=float, default=0.2, dest="lambda_reg",
                        help="regularisation coefficient Lambda")
    parser.add_argument("--encoder-dim", type=int, default=16, dest="encoder_dim",
                        help="encoder output dimension d1")
    parser.add_argument("--pseudo-labels", action="store_true", dest="pseudo_labels",
                        help="expand the training set with encoder pseudo-labels (n1 = n)")
    parser.add_argument("--inference-mode", choices=("private", "public"),
                        default="private", help="Algorithm-4 inference mode")


def _load_graph(args):
    from repro.graphs.datasets import load_dataset

    return load_dataset(args.dataset, scale=args.scale, seed=args.seed)


def _build_gcon(args, graph):
    from repro.core.config import GCONConfig
    from repro.core.model import GCON

    config = GCONConfig(
        epsilon=args.epsilon,
        delta=args.delta,
        alpha=args.alpha,
        propagation_steps=args.steps,
        loss=args.loss,
        lambda_reg=args.lambda_reg,
        encoder_dim=args.encoder_dim,
        use_pseudo_labels=args.pseudo_labels,
    )
    return GCON(config)


# --------------------------------------------------------------------------- #
# sub-commands
# --------------------------------------------------------------------------- #
def command_datasets(args) -> int:
    """List the dataset presets and their generated-versus-paper statistics."""
    from repro.evaluation.reporting import render_table
    from repro.graphs.datasets import dataset_statistics, list_datasets, reference_statistics

    names = list_datasets()
    generated = dataset_statistics(names, scale=args.scale, seed=args.seed)
    reference = reference_statistics()
    headers = ["dataset", "nodes", "edges", "features", "classes", "homophily",
               "paper nodes", "paper edges", "paper homophily"]
    rows = []
    for stats in generated:
        name = stats["name"]
        paper = reference[name]
        rows.append([
            name, stats["nodes"], stats["edges"], stats["features"], stats["classes"],
            f"{stats['homophily']:.3f}", paper["nodes"], paper["edges"],
            f"{paper['homophily']:.2f}",
        ])
    print(render_table(headers, rows, title=f"Dataset presets (scale={args.scale})"))
    return 0


def command_train(args) -> int:
    """Train a single GCON model and report train/validation/test micro-F1."""
    graph = _load_graph(args)
    model = _build_gcon(args, graph).fit(graph, seed=args.seed)
    epsilon, delta = model.privacy_spent
    print(f"dataset: {graph.name} (n={graph.num_nodes}, |E|={graph.num_edges})")
    print(f"privacy: epsilon={epsilon:g}, delta={delta:.3g}")
    for split_name, idx in (("train", graph.train_idx), ("val", graph.val_idx),
                            ("test", graph.test_idx)):
        if idx.size == 0:
            continue
        score = model.score(graph, idx=idx, mode=args.inference_mode)
        print(f"{split_name} micro-F1 ({args.inference_mode} inference): {score:.4f}")
    return 0


def command_baselines(args) -> int:
    """Train every Figure-1 method once at a single epsilon and print a comparison table."""
    from repro.evaluation.figures import FigureSettings, build_method_registry
    from repro.evaluation.reporting import render_table
    from repro.runtime.cells import SweepCell
    from repro.runtime.engine import ParallelExperimentRunner
    from repro.runtime.workers import FigureCellRunner

    settings = FigureSettings(scale=args.scale, repeats=1, seed=args.seed,
                              epochs=args.epochs)
    registry = build_method_registry(settings)
    cells = [
        SweepCell(index=position, method=name, dataset=args.dataset,
                  epsilon=args.epsilon, repeat=0, seed=args.seed, group=position)
        for position, name in enumerate(registry)
    ]
    engine = ParallelExperimentRunner(
        FigureCellRunner(settings=settings, delta=args.delta,
                         preparation_cache=args.preparation_cache),
        jobs=args.jobs)
    results = engine.run(cells)
    rows = [[result.method, f"{result.micro_f1:.4f}"] for result in results]
    print(render_table(["method", "test micro-F1"], rows,
                       title=f"{args.dataset} @ epsilon={args.epsilon:g}"))
    return 0


def _parse_name_list(raw: str) -> list[str]:
    names = [token.strip() for token in raw.split(",") if token.strip()]
    if not names:
        raise argparse.ArgumentTypeError("at least one name is required")
    return names


def _parse_float_list(raw: str) -> list[float]:
    try:
        values = [float(token) for token in raw.split(",") if token.strip()]
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None
    if not values:
        raise argparse.ArgumentTypeError("at least one value is required")
    return values


def _resolve_sweep_names(args) -> tuple[list[str] | None, str | None]:
    """Validate --methods/--datasets; returns (methods, error message)."""
    from repro.evaluation.figures import FigureSettings, build_method_registry
    from repro.graphs.datasets import list_datasets

    registry = build_method_registry(FigureSettings())
    methods = args.methods if args.methods is not None else list(registry)
    unknown = [name for name in methods if name not in registry]
    if unknown:
        return None, (f"unknown methods: {', '.join(unknown)} "
                      f"(available: {', '.join(registry)})")
    known_datasets = list_datasets()
    unknown = [name for name in args.datasets if name not in known_datasets]
    if unknown:
        return None, (f"unknown datasets: {', '.join(unknown)} "
                      f"(available: {', '.join(known_datasets)})")
    return methods, None


def _sweep_spec_from_args(args, methods: list[str]):
    """The distributed :class:`SweepSpec` equivalent of this ``sweep`` run."""
    from repro.distributed import SweepSpec

    return SweepSpec(
        methods=tuple(methods), datasets=tuple(args.datasets),
        epsilons=tuple(args.epsilons), repeats=args.repeats, seed=args.seed,
        scale=args.scale, delta=args.delta, epochs=args.epochs,
        encoder_epochs=args.encoder_epochs,
        fast_sweep=not getattr(args, "serial_cells", False),
    )


def _print_sweep_summary(results, jobs, output) -> None:
    from repro.evaluation.reporting import render_series, render_table
    from repro.evaluation.runner import aggregate_results, series_from_results

    aggregated = aggregate_results(results)
    rows = [
        [method, dataset, f"{epsilon:g}", f"{stats['mean']:.4f}", f"{stats['std']:.4f}",
         f"{stats['min']:.4f}", f"{stats['max']:.4f}", stats["count"]]
        for (method, dataset, epsilon), stats in sorted(aggregated.items())
    ]
    print(render_table(
        ["method", "dataset", "epsilon", "mean", "std", "min", "max", "repeats"],
        rows, title=f"sweep ({len(results)} cells, jobs={jobs})"))
    print()
    print(render_series(series_from_results(results), title="mean micro-F1 series"))
    if output:
        print(f"\nresults stored in: {output}")


def command_sweep(args) -> int:
    """Run a full method x dataset x epsilon x repeat sweep on the parallel engine."""
    from repro.evaluation.figures import FigureSettings
    from repro.runtime.cells import expand_cells
    from repro.runtime.engine import ParallelExperimentRunner
    from repro.runtime.store import JsonlResultStore
    from repro.runtime.workers import FigureCellRunner

    methods, error = _resolve_sweep_names(args)
    if error:
        print(error, file=sys.stderr)
        return 2
    if args.dist_dir:
        return _sweep_distributed(args, methods)

    settings = FigureSettings(
        scale=args.scale, repeats=args.repeats, seed=args.seed, epochs=args.epochs,
        encoder_epochs=args.encoder_epochs, datasets=tuple(args.datasets),
        epsilons=tuple(args.epsilons), jobs=args.jobs,
    )
    cells = expand_cells(methods, settings.datasets, settings.epsilons,
                         settings.repeats, seed=settings.seed)
    store = JsonlResultStore(args.output) if args.output else None
    engine = ParallelExperimentRunner(
        FigureCellRunner(settings=settings, delta=args.delta,
                         fast_sweep=not args.serial_cells,
                         preparation_cache=args.preparation_cache),
        jobs=args.jobs, store=store, progress=not args.quiet,
        resume_context=dict(settings.resume_context(), delta=args.delta),
    )
    results = engine.run(cells)
    _print_sweep_summary(results, args.jobs, args.output)
    return 0


def _sweep_distributed(args, methods: list[str]) -> int:
    """The ``sweep --dist-dir`` fast path: submit, fan out local workers, merge."""
    from repro.distributed import Coordinator, start_local_workers
    from repro.runtime.store import JsonlResultStore

    spec = _sweep_spec_from_args(args, methods)
    coordinator = Coordinator(args.dist_dir)
    report = coordinator.submit(spec)
    print(f"dist queue {args.dist_dir}: {report.summary()}", file=sys.stderr)

    workers = start_local_workers(
        args.dist_dir, jobs=args.jobs,
        preparation_cache=args.preparation_cache)
    try:
        completed = coordinator.wait(
            progress=not args.quiet,
            should_abort=lambda: not any(p.is_alive() for p in workers))
    finally:
        for process in workers:
            process.join()
    if not completed and coordinator.queue.pending_ids():
        print("distributed sweep did not complete (see the failed/ directory "
              "of the queue); rerun to resume", file=sys.stderr)
        return 1

    merge_report = coordinator.merge(args.output or None)
    print(merge_report.summary(), file=sys.stderr)
    results = JsonlResultStore(merge_report.output).load()
    _print_sweep_summary(results, args.jobs, str(merge_report.output))
    return 0


# --------------------------------------------------------------------------- #
# dist sub-commands
# --------------------------------------------------------------------------- #
def command_dist_submit(args) -> int:
    """Expand a sweep into the distributed queue (idempotent)."""
    from repro.distributed import Coordinator
    from repro.exceptions import ConfigurationError

    methods, error = _resolve_sweep_names(args)
    if error:
        print(error, file=sys.stderr)
        return 2
    spec = _sweep_spec_from_args(args, methods)
    try:
        report = Coordinator(args.dist_dir).submit(spec)
    except ConfigurationError as error:
        print(f"submit failed: {error}", file=sys.stderr)
        return 2
    print(f"spec {spec.digest()[:12]}: {spec.describe()}")
    print(report.summary())
    print(f"start workers with:  repro dist work --dist-dir {args.dist_dir}")
    return 0


def command_dist_work(args) -> int:
    """Run one worker loop against a queue until the sweep completes."""
    from repro.distributed import DistributedWorker
    from repro.exceptions import ConfigurationError

    worker = DistributedWorker(
        args.dist_dir, args.worker_id, lease_ttl=args.lease_ttl,
        poll_interval=args.poll_interval, max_groups=args.max_groups,
        wait_for_completion=not args.no_wait,
        preparation_cache=args.preparation_cache,
        max_attempts=args.max_attempts,
        log_stream=None if args.quiet else sys.stderr)
    try:
        report = worker.run()
    except ConfigurationError as error:
        print(f"worker failed to start: {error}", file=sys.stderr)
        return 2
    print(report.summary())
    return 1 if report.groups_quarantined else 0


def command_dist_status(args) -> int:
    """Print the queue census: groups done/leased/expired, per-worker holds."""
    from repro.distributed import Coordinator
    from repro.exceptions import ConfigurationError

    coordinator = Coordinator(args.dist_dir)
    try:
        spec = coordinator.spec()
    except ConfigurationError as error:
        print(f"status failed: {error}", file=sys.stderr)
        return 2
    print(f"spec {spec.digest()[:12]}: {spec.describe()}")
    print(coordinator.status().summary())
    return 0


def command_dist_merge(args) -> int:
    """Merge completed shards into one deduplicated, fingerprint-checked store."""
    from repro.distributed import Coordinator

    coordinator = Coordinator(args.dist_dir)
    try:
        report = coordinator.merge(args.output or None,
                                   require_complete=not args.partial)
    except (RuntimeError, ValueError) as error:
        print(f"merge failed: {error}", file=sys.stderr)
        return 1
    print(report.summary())
    return 0


def command_publish(args) -> int:
    """Publish the winning GCON cell of a sweep store into a model registry.

    The sweep grid arguments must repeat the knobs of the sweep that produced
    ``--store`` (they default to the sweep defaults); the rebuilt context
    fingerprint is checked against the stamp on the winning record, so a
    store cannot silently be published under different settings.  The cell is
    refit from its deterministic seed — the released theta is recomputed, not
    read from the store, which only ever holds scores.
    """
    from repro.graphs.datasets import load_dataset
    from repro.runtime.cells import derive_cell_seed
    from repro.runtime.store import JsonlResultStore, best_record
    from repro.runtime.workers import score_estimator
    from repro.serving import ModelRegistry

    methods, error = _resolve_sweep_names(args)
    if error:
        print(error, file=sys.stderr)
        return 2
    store = JsonlResultStore(args.store)
    records = store.load()
    if not records:
        print(f"store {args.store} holds no records", file=sys.stderr)
        return 2
    try:
        winner = best_record(records, method=args.select_method,
                             dataset=args.select_dataset,
                             epsilon=args.select_epsilon)
    except ValueError as error:
        print(f"publish failed: {error}", file=sys.stderr)
        return 2
    if winner.method != "GCON":
        print(f"publish failed: the winning record is {winner.method!r}; only "
              f"GCON releases are publishable (narrow with --method)",
              file=sys.stderr)
        return 2

    spec = _sweep_spec_from_args(args, methods)
    stamped = winner.extra.get("sweep_context")
    if stamped is not None and stamped != spec.context_digest():
        print(f"publish failed: the store was produced under sweep context "
              f"{stamped}, but the given grid arguments fingerprint to "
              f"{spec.context_digest()}; repeat the original sweep's knobs",
              file=sys.stderr)
        return 2
    if stamped is None:
        print("warning: the winning record carries no sweep-context stamp; "
              "trusting the given grid arguments", file=sys.stderr)

    from repro.core.model import GCON
    from repro.evaluation.figures import default_gcon_config

    settings = spec.settings()
    graph = load_dataset(winner.dataset, scale=spec.scale, seed=spec.seed)
    delta = spec.delta if spec.delta is not None else 1.0 / max(graph.num_edges, 1)
    cell_seed = derive_cell_seed(spec.seed, winner.dataset, winner.method,
                                 winner.repeat)
    model = GCON(default_gcon_config(winner.epsilon, delta, settings))
    model.fit(graph, seed=cell_seed)
    refit_score = score_estimator(model, graph, args.inference_mode)

    registry = ModelRegistry(args.registry)
    record = registry.publish(model, args.name, inference_mode=args.inference_mode,
                              training={
                                  "dataset": winner.dataset,
                                  "scale": spec.scale,
                                  "graph_seed": spec.seed,
                                  "cell_seed": cell_seed,
                                  "repeat": winner.repeat,
                                  "epsilon": winner.epsilon,
                                  "store_micro_f1": winner.micro_f1,
                                  "refit_micro_f1": refit_score,
                                  "sweep_context": stamped,
                                  "store": str(args.store),
                              })
    epsilon, delta_spent = model.privacy_spent
    print(f"published {record.ref} (digest {record.digest[:16]}…)")
    print(f"  source cell: {winner.method}/{winner.dataset} "
          f"epsilon={winner.epsilon:g} repeat={winner.repeat} "
          f"(store micro-F1 {winner.micro_f1:.4f})")
    print(f"  privacy: epsilon={epsilon:g}, delta={delta_spent:.3g}")
    print(f"  refit test micro-F1 ({args.inference_mode} inference): {refit_score:.4f}")
    if abs(refit_score - winner.micro_f1) > 0.02:
        print("  note: refit score differs from the store record by more than "
              "0.02 — the record may come from the vectorised sweep fast path "
              "(solver-tolerance-level drift is expected)", file=sys.stderr)
    print(f"serve it with:  repro serve --registry {args.registry} "
          f"--model {args.name}@latest")
    return 0


def _parse_advertise(advertise: str | None, host: str, port: int) -> tuple[str, int]:
    """``--advertise HOST[:PORT]`` → the address peers dial; defaults to the
    actually bound host:port (so ``--port 0`` advertises the ephemeral one)."""
    if not advertise:
        return host, port
    adv_host, sep, adv_port = advertise.rpartition(":")
    if sep and adv_port.isdigit():
        return adv_host or host, int(adv_port)
    return advertise, port


def command_serve(args) -> int:
    """Serve registry models over the selector-loop HTTP JSON API."""
    from repro.serving import InferenceService, SloController, serve_http

    max_queue_depth = args.max_queue_depth if args.max_queue_depth > 0 else None
    service = InferenceService(
        args.registry, max_batch_size=args.batch_size,
        max_latency=args.max_latency_ms / 1000.0,
        max_queue_depth=max_queue_depth,
        mmap_bundles=not args.no_mmap)
    records = []
    try:
        for ref in args.models:
            records.append(service.registry.verify(ref))
            # Warm each session (graph load, encoder forward pass,
            # propagation) before binding the socket, so the first query pays
            # only one matmul — and a bad manifest/graph fails here with a
            # clean message instead of on the first request.  Warming also
            # matters more now: a cold build would run on the selector loop.
            service.predict_scores(ref, [0])
    except Exception as error:
        print(f"serve failed: {error}", file=sys.stderr)
        return 2
    controller = None
    if args.slo_p99_ms > 0 and not args.static_batching:
        controller = SloController(service.batcher,
                                   target_p99=args.slo_p99_ms / 1000.0)
        service.attach_slo(controller)
        controller.start()
    server = serve_http(service, host=args.host, port=args.port,
                        log_stream=None if args.quiet else sys.stderr,
                        max_connections=args.max_connections,
                        stats_interval=args.stats_interval,
                        trace=not args.no_trace)
    host, port = server.server_address[:2]

    member = None
    if args.fleet_dir:
        from repro.serving import FleetMember, FleetRouter, default_replica_id

        adv_host, adv_port = _parse_advertise(args.advertise, host, port)
        replica_id = args.replica_id or default_replica_id(adv_host, adv_port)
        try:
            member = FleetMember(args.fleet_dir, replica_id, adv_host,
                                 adv_port, ttl=args.fleet_ttl)
            member.join(service.loaded_digests())
        except Exception as error:
            server.server_close()
            if controller is not None:
                controller.close()
            service.close()
            print(f"serve failed: {error}", file=sys.stderr)
            return 2
        member.start()
        server.fleet = FleetRouter(member, proxy=not args.fleet_redirect)

    watcher = None
    if args.reload_interval and args.reload_interval > 0:
        from repro.serving import watch_models

        def _readvertise(_name, _old, _new):
            if member is not None:
                member.advertise(service.loaded_digests())

        watcher = watch_models(service, args.models,
                               interval=args.reload_interval,
                               on_flip=_readvertise).start()

    served = ", ".join(f"{record.ref} (mode={record.inference_mode})"
                       for record in records)
    slo_note = (f"slo p99<={args.slo_p99_ms:g}ms" if controller is not None
                else "static batching")
    depth_note = (f"queue<={max_queue_depth}" if max_queue_depth is not None
                  else "no admission cap")
    fleet_note = (f", fleet {member.replica_id} in {args.fleet_dir} "
                  f"(ttl {args.fleet_ttl:g}s)" if member is not None else "")
    print(f"serving {served} on http://{host}:{port} "
          f"(batch<={args.batch_size}, latency<={args.max_latency_ms:g}ms, "
          f"connections<={args.max_connections}, {slo_note}, {depth_note})"
          f"{fleet_note}",
          file=sys.stderr, flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if watcher is not None:
            watcher.close()
        if member is not None:
            member.leave()  # graceful: the census drops us immediately
        server.server_close()
        if controller is not None:
            controller.close()
        service.close()
    return 0


def command_fleet_status(args) -> int:
    """Print the fleet census: replicas, lease ages, digest routing."""
    from repro.serving import FleetView

    view = FleetView(args.fleet_dir)
    status = view.status()
    if not status.replicas:
        print(f"fleet {view.fleet_dir}: no replicas (no lease files)")
        return 0
    print(status.summary())
    if args.metrics:
        from repro.obs.aggregate import fleet_metrics_report

        print()
        print(fleet_metrics_report(
            [(replica.replica_id, replica.base_url)
             for replica in status.live]))
    return 0


def command_trace(args) -> int:
    """List recent traces, or pretty-print one trace as a span tree.

    Spans are fetched from every ``--url`` and merged by trace id, so a
    cross-replica trace (relay proxy hop + owner execution) renders as one
    tree even though each replica stores only its own spans.
    """
    from repro.obs.aggregate import (
        fetch_recent_traces,
        fetch_trace_spans,
        render_trace_list,
        render_trace_tree,
    )

    if args.trace_id is None:
        rows = fetch_recent_traces(args.urls, limit=args.limit)
        print(render_trace_list(rows))
        return 0
    spans = fetch_trace_spans(args.urls, args.trace_id)
    if not spans:
        print(f"trace {args.trace_id} not found on any of "
              f"{len(args.urls)} server(s)", file=sys.stderr)
        return 1
    print(render_trace_tree(spans))
    return 0


def command_figure(args) -> int:
    """Regenerate one of the paper's tables/figures and export text/CSV/JSON."""
    from repro.evaluation.export import export_figure
    from repro.evaluation.figures import (
        FigureSettings,
        attack_auc_vs_epsilon,
        figure1_accuracy_vs_epsilon,
        figure23_propagation_step,
        figure4_restart_probability,
        table2_dataset_statistics,
    )
    from repro.evaluation.reporting import render_series, render_table

    settings = FigureSettings(scale=args.scale, repeats=args.repeats, seed=args.seed,
                              datasets=tuple(args.datasets.split(",")),
                              jobs=args.jobs,
                              preparation_cache=args.preparation_cache)
    output_dir = Path(args.output_dir)

    if args.id == "table2":
        result = table2_dataset_statistics(settings)
        headers = ["dataset", "nodes", "edges", "features", "classes", "homophily"]
        rows = [[s["name"], s["nodes"], s["edges"], s["features"], s["classes"],
                 f"{s['homophily']:.3f}"] for s in result["generated"]]
        text = render_table(headers, rows, title="Table II (generated presets)")
        output_dir.mkdir(parents=True, exist_ok=True)
        (output_dir / "table2.txt").write_text(text + "\n")
        print(text)
        return 0

    generators = {
        "figure1": lambda: figure1_accuracy_vs_epsilon(settings),
        "figure2": lambda: figure23_propagation_step(settings, inference_mode="private"),
        "figure3": lambda: figure23_propagation_step(settings, inference_mode="public"),
        "figure4": lambda: figure4_restart_probability(settings),
        "attack": lambda: attack_auc_vs_epsilon(settings),
    }
    series = generators[args.id]()
    paths = export_figure(series, output_dir, args.id,
                          title=f"{args.id} (scale={args.scale}, repeats={args.repeats})",
                          metadata={"scale": args.scale, "repeats": args.repeats,
                                    "seed": args.seed})
    print(render_series(series, title=args.id))
    print(f"\nwritten: {', '.join(str(p) for p in paths.values())}")
    return 0


def command_tune(args) -> int:
    """Random/grid search over the Appendix-Q hyperparameter grid for GCON."""
    from repro.evaluation.reporting import render_table
    from repro.tuning import GridSearch, RandomSearch, gcon_quick_space, gcon_search_space, \
        make_gcon_factory

    graph = _load_graph(args)
    factory = make_gcon_factory(args.epsilon, args.delta, encoder_epochs=args.encoder_epochs)
    if args.space == "full":
        space = gcon_search_space(args.dataset)
    else:
        space = gcon_quick_space()
    if args.strategy == "grid":
        search = GridSearch(factory, space, repeats=args.repeats, seed=args.seed)
    else:
        search = RandomSearch(factory, space, num_trials=args.trials,
                              repeats=args.repeats, seed=args.seed)
    result = search.run(graph)
    headers, rows = result.to_rows(top_k=args.top_k)
    print(render_table(headers, rows,
                       title=f"Validation leaderboard ({len(result)} trials)"))
    print(f"\nbest params: {result.best_params}")
    print(f"best validation micro-F1: {result.best_score:.4f}")
    return 0


def command_sensitivity(args) -> int:
    """Print the closed-form Lemma-2 sensitivity for a grid of (alpha, m) settings."""
    from repro.core.sensitivity import aggregate_sensitivity
    from repro.evaluation.reporting import render_table

    alphas = [float(a) for a in args.alphas.split(",")]
    steps = list(_parse_steps(args.m_values))
    headers = ["alpha"] + [("inf" if math.isinf(m) else str(m)) for m in steps]
    rows = []
    for alpha in alphas:
        rows.append([f"{alpha:g}"] + [f"{aggregate_sensitivity(alpha, m):.4f}" for m in steps])
    print(render_table(headers, rows, title="Psi(Z_m) = 2(1-a)/a (1-(1-a)^m)"))
    return 0


def command_attack(args) -> int:
    """Run the link-stealing attack suite against GCON and the non-private GCN."""
    from repro.attacks import attack_auc, sample_edge_candidates
    from repro.attacks.similarity import strongest_attack_auc
    from repro.baselines import GCNClassifier
    from repro.evaluation.reporting import render_table

    graph = _load_graph(args)
    pairs, labels = sample_edge_candidates(graph, num_pairs=args.pairs, rng=args.seed)
    rows = []

    gcn = GCNClassifier(epochs=args.epochs).fit(graph, seed=args.seed)
    name, auc = strongest_attack_auc(gcn.decision_scores(graph), pairs, labels)
    rows.append(["GCN (non-DP)", name, f"{auc:.4f}"])

    model = _build_gcon(args, graph).fit(graph, seed=args.seed)
    scores = model.decision_scores(graph, mode="private")
    name, auc = strongest_attack_auc(scores, pairs, labels)
    rows.append([f"GCON (eps={args.epsilon:g})", name, f"{auc:.4f}"])

    print(render_table(["model", "best metric", "attack AUC"], rows,
                       title=f"Link-stealing attack on {graph.name} ({args.pairs} pairs)"))
    _ = attack_auc  # re-exported for API discoverability
    return 0


# --------------------------------------------------------------------------- #
# parser construction
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gcon-repro",
        description="Reproduction of GCON (ICDE 2025): DP GCNs via objective perturbation.",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    datasets = subparsers.add_parser("datasets", help="list dataset presets and statistics")
    _add_dataset_arguments(datasets)
    datasets.set_defaults(func=command_datasets)

    train = subparsers.add_parser("train", help="train one GCON model")
    _add_dataset_arguments(train)
    _add_gcon_arguments(train)
    train.set_defaults(func=command_train)

    baselines = subparsers.add_parser("baselines", help="compare all methods at one epsilon")
    _add_dataset_arguments(baselines)
    baselines.add_argument("--epsilon", type=float, default=1.0)
    baselines.add_argument("--delta", type=float, default=None)
    baselines.add_argument("--epochs", type=int, default=100)
    baselines.add_argument("--jobs", type=int, default=1,
                           help="number of parallel worker processes")
    _add_preparation_cache_argument(baselines)
    baselines.set_defaults(func=command_baselines)

    sweep = subparsers.add_parser(
        "sweep", help="run a method x dataset x epsilon x repeat sweep in parallel")
    _add_sweep_grid_arguments(sweep)
    sweep.add_argument("--jobs", type=int, default=1,
                       help="number of parallel worker processes")
    sweep.add_argument("--output", default=None,
                       help="JSONL result store; rerunning with the same path "
                            "resumes an interrupted sweep")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress progress reporting on stderr")
    sweep.add_argument("--dist-dir", default=None, dest="dist_dir", metavar="DIR",
                       help="run the sweep through the distributed queue in DIR "
                            "instead of an in-process pool: submit the spec, "
                            "fan out --jobs local worker processes, merge the "
                            "shards (other machines may join with "
                            "'repro dist work --dist-dir DIR')")
    _add_preparation_cache_argument(sweep)
    sweep.set_defaults(func=command_sweep)

    dist = subparsers.add_parser(
        "dist", help="shard a sweep across machines via a shared-filesystem queue")
    dist_sub = dist.add_subparsers(dest="dist_command", required=True)

    dist_submit = dist_sub.add_parser(
        "submit", help="expand a sweep spec into the queue (idempotent)")
    dist_submit.add_argument("--dist-dir", required=True, dest="dist_dir",
                             metavar="DIR", help="queue directory (shared filesystem)")
    _add_sweep_grid_arguments(dist_submit)
    dist_submit.set_defaults(func=command_dist_submit)

    dist_work = dist_sub.add_parser(
        "work", help="claim and execute groups until the sweep completes")
    dist_work.add_argument("--dist-dir", required=True, dest="dist_dir", metavar="DIR")
    dist_work.add_argument("--worker-id", default=None, dest="worker_id",
                           help="stable worker identity (default: host-pid-nonce)")
    dist_work.add_argument("--lease-ttl", type=float, default=60.0, dest="lease_ttl",
                           help="seconds without a heartbeat before this worker's "
                                "claims may be re-leased by others")
    dist_work.add_argument("--poll-interval", type=float, default=0.5,
                           dest="poll_interval",
                           help="seconds between queue polls when nothing is claimable")
    dist_work.add_argument("--max-groups", type=int, default=None, dest="max_groups",
                           help="stop after completing this many groups")
    dist_work.add_argument("--max-attempts", type=int, default=3, dest="max_attempts",
                           help="failed executions of one group before it is "
                                "quarantined (moved out of the claimable set "
                                "with its traceback under failed/)")
    dist_work.add_argument("--no-wait", action="store_true", dest="no_wait",
                           help="exit when nothing is claimable instead of waiting "
                                "for the whole sweep to complete")
    dist_work.add_argument("--quiet", action="store_true",
                           help="suppress per-group progress lines on stderr")
    _add_preparation_cache_argument(dist_work)
    dist_work.set_defaults(func=command_dist_work)

    dist_status = dist_sub.add_parser("status", help="print the queue census")
    dist_status.add_argument("--dist-dir", required=True, dest="dist_dir", metavar="DIR")
    dist_status.set_defaults(func=command_dist_status)

    dist_merge = dist_sub.add_parser(
        "merge", help="merge completed shards into one result store")
    dist_merge.add_argument("--dist-dir", required=True, dest="dist_dir", metavar="DIR")
    dist_merge.add_argument("--output", default=None,
                            help="merged JSONL path (default: DIR/merged.jsonl)")
    dist_merge.add_argument("--partial", action="store_true",
                            help="merge whatever shards exist instead of requiring "
                                 "a complete sweep")
    dist_merge.set_defaults(func=command_dist_merge)

    publish = subparsers.add_parser(
        "publish", help="publish the winning sweep cell into a model registry")
    publish.add_argument("--store", required=True,
                         help="JSONL result store of the finished sweep")
    publish.add_argument("--registry", required=True, metavar="DIR",
                         help="model registry root directory")
    publish.add_argument("--name", required=True,
                         help="model name to publish under (versions are "
                              "content-addressed; latest advances)")
    publish.add_argument("--method", default="GCON", dest="select_method",
                         help="restrict winner selection to this method "
                              "(default: GCON, the only publishable release)")
    publish.add_argument("--dataset", default=None, dest="select_dataset",
                         help="restrict winner selection to this dataset")
    publish.add_argument("--epsilon", type=float, default=None, dest="select_epsilon",
                         help="restrict winner selection to this privacy budget")
    publish.add_argument("--inference-mode", choices=("private", "public"),
                         default="private", dest="inference_mode",
                         help="default Algorithm-4 mode stamped into the manifest")
    _add_sweep_grid_arguments(publish)
    publish.set_defaults(func=command_publish)

    serve = subparsers.add_parser(
        "serve", help="serve registry models over a batched HTTP JSON API")
    serve.add_argument("--registry", required=True, metavar="DIR",
                       help="model registry root directory")
    serve.add_argument("--model", required=True, action="append",
                       dest="models", metavar="REF",
                       help="model reference, e.g. NAME@latest or "
                            "NAME@<digest>; repeat to verify and pre-warm "
                            "several models (each gets its own batch queue)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8151,
                       help="TCP port (0 binds an ephemeral port)")
    serve.add_argument("--batch-size", type=int, default=64, dest="batch_size",
                       help="flush a model's micro-batch at this many "
                            "queried rows (per-model queues)")
    serve.add_argument("--max-latency-ms", type=float, default=5.0,
                       dest="max_latency_ms",
                       help="flush a model's forming micro-batch after this "
                            "many milliseconds even if not full")
    serve.add_argument("--max-connections", type=int, default=512,
                       dest="max_connections",
                       help="concurrent connection bound of the selector "
                            "frontend; excess accepts are answered 503")
    serve.add_argument("--stats-interval", type=float, default=None,
                       dest="stats_interval", metavar="SECONDS",
                       help="log a per-model latency summary "
                            "(n/p50/p95/p99) to stderr every SECONDS")
    serve.add_argument("--slo-p99-ms", type=float, default=50.0,
                       dest="slo_p99_ms", metavar="MS",
                       help="target request p99 in milliseconds; an AIMD "
                            "controller tunes each model's batch budgets to "
                            "hold it (0 disables, like --static-batching)")
    serve.add_argument("--static-batching", action="store_true",
                       dest="static_batching",
                       help="disable the SLO controller and keep the "
                            "--batch-size/--max-latency-ms limits fixed")
    serve.add_argument("--max-queue-depth", type=int, default=512,
                       dest="max_queue_depth", metavar="N",
                       help="shed load with HTTP 429 + Retry-After once a "
                            "model has this many requests in flight "
                            "(0 disables admission control)")
    serve.add_argument("--no-mmap", action="store_true", dest="no_mmap",
                       help="load model bundles eagerly instead of "
                            "memory-mapping them (scores are bitwise "
                            "identical either way)")
    serve.add_argument("--fleet-dir", default=None, dest="fleet_dir",
                       metavar="DIR",
                       help="join the replica fleet coordinated under DIR: "
                            "hold a membership lease there and route each "
                            "model digest to its owning replica over a "
                            "consistent-hash ring")
    serve.add_argument("--advertise", default=None, metavar="HOST[:PORT]",
                       help="address peers should reach this replica at "
                            "(default: the bound host:port)")
    serve.add_argument("--replica-id", default=None, dest="replica_id",
                       help="fleet replica id (default: derived from the "
                            "advertised address and pid; must be unique "
                            "per fleet)")
    serve.add_argument("--fleet-ttl", type=float, default=10.0,
                       dest="fleet_ttl", metavar="SECONDS",
                       help="membership lease TTL: a replica that misses "
                            "heartbeats this long is expired and its ring "
                            "arcs move to the survivors (default: 10)")
    serve.add_argument("--fleet-redirect", action="store_true",
                       dest="fleet_redirect",
                       help="answer peer-owned digests with a 307 redirect "
                            "instead of proxying server-side")
    serve.add_argument("--reload-interval", type=float, default=1.0,
                       dest="reload_interval", metavar="SECONDS",
                       help="poll the registry's latest pointers this often; "
                            "a flipped version is pre-warmed before the old "
                            "one's queues retire (0 disables hot-reload)")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress per-request log lines on stderr")
    serve.add_argument("--no-trace", action="store_true", dest="no_trace",
                       help="disable request tracing (/debug/traces and the "
                            "per-stage histograms on /metrics; scores are "
                            "bitwise identical either way)")
    serve.set_defaults(func=command_serve)

    fleet = subparsers.add_parser(
        "fleet", help="inspect a serving fleet's shared membership directory")
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    fleet_status = fleet_sub.add_parser(
        "status", help="print the replica census and digest routing table")
    fleet_status.add_argument("--fleet-dir", required=True, dest="fleet_dir",
                              metavar="DIR",
                              help="the membership directory the replicas "
                                   "share (their serve --fleet-dir)")
    fleet_status.add_argument("--metrics", action="store_true",
                              help="scrape every live replica's /metrics and "
                                   "print fleet-wide per-model latency "
                                   "quantiles (exact histogram merge)")
    fleet_status.set_defaults(func=command_fleet_status)

    trace = subparsers.add_parser(
        "trace", help="list or pretty-print request traces from servers")
    trace.add_argument("trace_id", nargs="?", default=None,
                       help="trace id to render as a span tree (omit to "
                            "list recent traces)")
    trace.add_argument("--url", required=True, action="append", dest="urls",
                       metavar="URL",
                       help="server base URL, e.g. http://127.0.0.1:8151; "
                            "repeat to merge spans across fleet replicas")
    trace.add_argument("--limit", type=int, default=10,
                       help="how many recent traces to list per server")
    trace.set_defaults(func=command_trace)

    figure = subparsers.add_parser("figure", help="regenerate a paper table/figure")
    figure.add_argument("id", choices=("table2", "figure1", "figure2", "figure3",
                                       "figure4", "attack"))
    figure.add_argument("--scale", type=float, default=0.25)
    figure.add_argument("--repeats", type=int, default=1)
    figure.add_argument("--seed", type=int, default=0)
    figure.add_argument("--datasets", default="cora_ml",
                        help="comma-separated dataset presets")
    figure.add_argument("--jobs", type=int, default=1,
                        help="number of parallel worker processes")
    figure.add_argument("--output-dir", default="benchmarks/output", dest="output_dir")
    _add_preparation_cache_argument(figure)
    figure.set_defaults(func=command_figure)

    tune = subparsers.add_parser("tune", help="hyperparameter search for GCON")
    _add_dataset_arguments(tune)
    tune.add_argument("--epsilon", type=float, default=1.0)
    tune.add_argument("--delta", type=float, default=None)
    tune.add_argument("--strategy", choices=("grid", "random"), default="random")
    tune.add_argument("--space", choices=("quick", "full"), default="quick")
    tune.add_argument("--trials", type=int, default=8)
    tune.add_argument("--repeats", type=int, default=1)
    tune.add_argument("--top-k", type=int, default=10, dest="top_k")
    tune.add_argument("--encoder-epochs", type=int, default=100, dest="encoder_epochs")
    tune.set_defaults(func=command_tune)

    sensitivity = subparsers.add_parser("sensitivity",
                                        help="print the Lemma-2 sensitivity table")
    sensitivity.add_argument("--alphas", default="0.2,0.4,0.6,0.8")
    sensitivity.add_argument("--m-values", default="1,2,5,10,inf", dest="m_values")
    sensitivity.set_defaults(func=command_sensitivity)

    attack = subparsers.add_parser("attack", help="run the link-stealing attack suite")
    _add_dataset_arguments(attack)
    _add_gcon_arguments(attack)
    attack.add_argument("--pairs", type=int, default=300)
    attack.add_argument("--epochs", type=int, default=100)
    attack.set_defaults(func=command_attack)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv if argv is not None else sys.argv[1:])
    return args.func(args)
