"""Command-line interface for the GCON reproduction.

``python -m repro.cli --help`` (or the ``gcon-repro`` console script) exposes
the library's main workflows without writing any Python: dataset statistics,
single GCON/baseline training runs, regeneration of each paper figure,
hyperparameter search, sensitivity inspection and the link-stealing attack.
"""

from repro.cli.main import build_parser, main

__all__ = ["build_parser", "main"]
