"""Entry point for ``python -m repro.cli``."""

import sys

from repro.cli.main import main

if __name__ == "__main__":  # pragma: no cover - thin wrapper
    sys.exit(main())
