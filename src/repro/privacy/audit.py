"""Empirical privacy auditing via membership-style distinguishing attacks.

A DP guarantee upper-bounds the power of *any* distinguisher between a pair
of neighbouring inputs.  Conversely, a concrete distinguisher yields a
statistical *lower* bound on the privacy loss: if an attacker achieves true
positive rate TPR and false positive rate FPR when guessing which of two
neighbouring datasets produced an observed output, then any (ε, δ)-DP
mechanism must satisfy ``TPR <= e^ε FPR + δ``, hence

``ε >= log((TPR - δ) / FPR)``.

The auditor below runs a mechanism many times on a fixed pair of neighbouring
inputs, applies a threshold distinguisher to a scalar score of the output and
converts the observed rates — deflated by Clopper-Pearson confidence
intervals — into an empirical ε lower bound.  It is used by the test suite to
sanity check the Laplace mechanism and (at a handful of trials) the GCON
release, and by ``examples/privacy_audit.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy import stats

from repro.exceptions import ConfigurationError, PrivacyBudgetError
from repro.utils.random import as_rng


def clopper_pearson_interval(successes: int, trials: int,
                             confidence: float = 0.95) -> tuple[float, float]:
    """Exact (Clopper-Pearson) two-sided confidence interval for a binomial proportion."""
    if trials <= 0:
        raise ConfigurationError(f"trials must be > 0, got {trials}")
    if not 0 <= successes <= trials:
        raise ConfigurationError(f"successes must be in [0, {trials}], got {successes}")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence must be in (0, 1), got {confidence}")
    alpha = 1.0 - confidence
    if successes == 0:
        lower = 0.0
    else:
        lower = float(stats.beta.ppf(alpha / 2.0, successes, trials - successes + 1))
    if successes == trials:
        upper = 1.0
    else:
        upper = float(stats.beta.ppf(1.0 - alpha / 2.0, successes + 1, trials - successes))
    return lower, upper


def epsilon_lower_bound(tpr_lower: float, fpr_upper: float, delta: float) -> float:
    """Convert (conservative) attack rates into an ε lower bound.

    Uses ``TPR <= e^ε FPR + δ``; returns 0 when the rates carry no signal.
    """
    if not 0.0 <= delta <= 1.0:
        raise PrivacyBudgetError(f"delta must be in [0, 1], got {delta}")
    numerator = tpr_lower - delta
    if numerator <= 0.0 or fpr_upper <= 0.0:
        return 0.0
    return max(0.0, float(np.log(numerator / fpr_upper)))


@dataclass(frozen=True)
class AuditResult:
    """Outcome of an empirical privacy audit."""

    empirical_epsilon: float
    claimed_epsilon: float
    delta: float
    true_positive_rate: float
    false_positive_rate: float
    trials: int
    threshold: float

    @property
    def consistent(self) -> bool:
        """True when the empirical lower bound does not exceed the claimed ε."""
        return self.empirical_epsilon <= self.claimed_epsilon + 1e-9


class PrivacyAuditor:
    """Threshold-distinguisher audit of a randomized mechanism.

    Parameters
    ----------
    mechanism:
        Callable ``(dataset, rng) -> output``; the output may be any object
        accepted by ``score_fn``.
    score_fn:
        Callable mapping a mechanism output to a scalar; higher scores should
        be (weakly) more likely under ``dataset_a`` than under ``dataset_b``
        for the audit to have power.  A natural choice for vector outputs is
        the projection onto the direction separating the two datasets' means.
    """

    def __init__(self, mechanism: Callable, score_fn: Callable[[object], float]):
        self.mechanism = mechanism
        self.score_fn = score_fn

    def run(self, dataset_a, dataset_b, *, claimed_epsilon: float, delta: float,
            trials: int = 200, confidence: float = 0.95,
            seed: int | np.random.Generator | None = 0) -> AuditResult:
        """Run ``trials`` mechanism invocations on each dataset and audit the release."""
        if trials < 2:
            raise ConfigurationError(f"trials must be >= 2, got {trials}")
        if claimed_epsilon <= 0:
            raise PrivacyBudgetError(f"claimed_epsilon must be > 0, got {claimed_epsilon}")
        rng = as_rng(seed)
        scores_a = np.array([
            float(self.score_fn(self.mechanism(dataset_a, rng))) for _ in range(trials)
        ])
        scores_b = np.array([
            float(self.score_fn(self.mechanism(dataset_b, rng))) for _ in range(trials)
        ])

        threshold, tpr, fpr = self._best_threshold(scores_a, scores_b)
        tpr_lower, _ = clopper_pearson_interval(int(round(tpr * trials)), trials, confidence)
        _, fpr_upper = clopper_pearson_interval(int(round(fpr * trials)), trials, confidence)
        empirical = epsilon_lower_bound(tpr_lower, fpr_upper, delta)
        return AuditResult(
            empirical_epsilon=empirical,
            claimed_epsilon=claimed_epsilon,
            delta=delta,
            true_positive_rate=float(tpr),
            false_positive_rate=float(fpr),
            trials=trials,
            threshold=float(threshold),
        )

    @staticmethod
    def _best_threshold(scores_a: np.ndarray, scores_b: np.ndarray) -> tuple[float, float, float]:
        """Pick the threshold maximising the log-ratio signal ``TPR / max(FPR, 1/n)``."""
        candidates = np.unique(np.concatenate([scores_a, scores_b]))
        trials = scores_a.size
        best = (float(candidates[0]), 0.0, 1.0)
        best_signal = -np.inf
        for threshold in candidates:
            tpr = float(np.mean(scores_a >= threshold))
            fpr = float(np.mean(scores_b >= threshold))
            signal = tpr / max(fpr, 1.0 / trials)
            if tpr > 0 and signal > best_signal:
                best_signal = signal
                best = (float(threshold), tpr, fpr)
        return best


def audit_laplace_mechanism(epsilon: float, sensitivity: float = 1.0, trials: int = 2000,
                            seed: int | np.random.Generator | None = 0) -> AuditResult:
    """Convenience audit of the scalar Laplace mechanism on inputs 0 and ``sensitivity``.

    The empirical ε lower bound should stay below ``epsilon``; a broken
    implementation (e.g. noise calibrated to half the sensitivity) exceeds it
    once ``trials`` is large enough.
    """
    from repro.privacy.mechanisms import laplace_mechanism

    def mechanism(value, rng):
        return laplace_mechanism(np.array([value]), sensitivity, epsilon, rng=rng)

    auditor = PrivacyAuditor(mechanism, score_fn=lambda output: float(output[0]))
    return auditor.run(
        sensitivity, 0.0, claimed_epsilon=epsilon, delta=0.0, trials=trials, seed=seed,
    )
