"""Erlang-radius spherical noise (Algorithm 2 of the paper).

GCON's linear perturbation term ``B ⊙ Θ`` uses a noise matrix whose columns
are sampled uniformly on a d-dimensional sphere with a random radius following
the Erlang distribution with shape ``d`` and rate ``beta`` (Eq. 14):

    gamma(x) = x^{d-1} e^{-beta x} beta^d / (d-1)!

Sampling (Algorithm 2): draw the radius from the Erlang distribution, draw a
standard normal vector, and scale it to that radius — by the rotational
symmetry of the normal distribution the direction is uniform on the sphere
(Lemma 6).
"""

from __future__ import annotations

import numpy as np
from scipy import special

from repro.exceptions import ConfigurationError
from repro.utils.random import as_rng


def erlang_pdf(x: np.ndarray, dimension: int, beta: float) -> np.ndarray:
    """Probability density of the Erlang(shape=dimension, rate=beta) distribution."""
    if dimension < 1:
        raise ConfigurationError(f"dimension must be >= 1, got {dimension}")
    if beta <= 0:
        raise ConfigurationError(f"beta must be > 0, got {beta}")
    x = np.asarray(x, dtype=np.float64)
    log_pdf = (
        (dimension - 1) * np.log(np.where(x > 0, x, 1.0))
        - beta * x
        + dimension * np.log(beta)
        - special.gammaln(dimension)
    )
    pdf = np.where(x > 0, np.exp(log_pdf), 0.0)
    return pdf


def sample_erlang_radius(dimension: int, beta: float, rng=None, size: int | None = None):
    """Sample radii from the Erlang distribution of Eq. (14).

    The Erlang distribution with integer shape ``d`` and rate ``beta`` is the
    Gamma distribution with shape ``d`` and scale ``1/beta``.
    """
    if dimension < 1:
        raise ConfigurationError(f"dimension must be >= 1, got {dimension}")
    if beta <= 0:
        raise ConfigurationError(f"beta must be > 0, got {beta}")
    rng = as_rng(rng)
    return rng.gamma(shape=dimension, scale=1.0 / beta, size=size)


def sample_sphere_noise(dimension: int, beta: float, num_columns: int = 1,
                        rng=None) -> np.ndarray:
    """Sample the noise matrix ``B`` of Algorithm 2.

    Returns an array of shape ``(dimension, num_columns)`` whose columns are
    independent, each uniformly distributed on the sphere of a radius drawn
    from Erlang(dimension, beta).
    """
    if num_columns < 1:
        raise ConfigurationError(f"num_columns must be >= 1, got {num_columns}")
    rng = as_rng(rng)
    radii = sample_erlang_radius(dimension, beta, rng=rng, size=num_columns)
    directions = rng.normal(0.0, 1.0, size=(dimension, num_columns))
    norms = np.linalg.norm(directions, axis=0, keepdims=True)
    # A zero draw has probability zero; guard anyway for numerical safety.
    norms = np.where(norms > 0, norms, 1.0)
    return directions / norms * radii[np.newaxis, :]
