"""Rényi differential privacy (RDP) accounting.

Used by the DP-SGD and GAP/ProGAP baselines, which compose many Gaussian
mechanism invocations.  We implement:

* the RDP curve of the Gaussian mechanism, ``alpha / (2 sigma^2)``;
* an upper bound on the RDP of the Poisson-subsampled Gaussian mechanism at
  integer orders (Mironov, Talwar & Zhang 2019, Eq. (8) binomial expansion);
* the standard RDP -> (epsilon, delta)-DP conversion.
"""

from __future__ import annotations

import numpy as np
from scipy import special

from repro.exceptions import PrivacyBudgetError

#: Default Rényi orders used for accounting (integer orders for the
#: subsampled-Gaussian bound plus a few fractional low orders for the pure
#: Gaussian curve).
DEFAULT_ORDERS: tuple[float, ...] = tuple(
    [1.25, 1.5, 1.75, 2.0, 2.5, 3.0] + list(range(4, 64)) + [128.0, 256.0, 512.0]
)


def rdp_gaussian(sigma: float, orders=DEFAULT_ORDERS, sensitivity: float = 1.0) -> np.ndarray:
    """RDP of the Gaussian mechanism with noise multiplier ``sigma / sensitivity``."""
    if sigma <= 0:
        raise PrivacyBudgetError(f"sigma must be > 0, got {sigma}")
    orders = np.asarray(orders, dtype=np.float64)
    noise_multiplier = sigma / sensitivity
    return orders / (2.0 * noise_multiplier ** 2)


def _log_add(a: float, b: float) -> float:
    """Stable log(exp(a) + exp(b))."""
    if a == -np.inf:
        return b
    if b == -np.inf:
        return a
    return max(a, b) + np.log1p(np.exp(-abs(a - b)))


def _rdp_subsampled_gaussian_int(q: float, sigma: float, alpha: int) -> float:
    """RDP at integer order ``alpha`` of the Poisson-subsampled Gaussian mechanism.

    Implements the binomial-expansion upper bound of Mironov et al. (2019):

        RDP(alpha) = 1/(alpha-1) * log( sum_{k=0}^{alpha} C(alpha,k) (1-q)^{alpha-k} q^k
                                        * exp(k(k-1) / (2 sigma^2)) )
    """
    log_terms = []
    for k in range(alpha + 1):
        log_coef = (
            special.gammaln(alpha + 1)
            - special.gammaln(k + 1)
            - special.gammaln(alpha - k + 1)
        )
        log_term = (
            log_coef
            + k * np.log(q)
            + (alpha - k) * np.log1p(-q)
            + k * (k - 1) / (2.0 * sigma ** 2)
        )
        log_terms.append(log_term)
    total = -np.inf
    for term in log_terms:
        total = _log_add(total, term)
    return float(total / (alpha - 1))


def rdp_subsampled_gaussian(q: float, sigma: float, steps: int,
                            orders=DEFAULT_ORDERS) -> np.ndarray:
    """Total RDP over ``steps`` iterations of the Poisson-subsampled Gaussian.

    Non-integer orders are handled by rounding up to the next integer, which
    only makes the bound more conservative at that order.
    ``q`` is the sampling probability per step, ``sigma`` the noise multiplier
    relative to the per-example clipping norm.
    """
    if not 0.0 <= q <= 1.0:
        raise PrivacyBudgetError(f"sampling probability must be in [0, 1], got {q}")
    if sigma <= 0:
        raise PrivacyBudgetError(f"sigma must be > 0, got {sigma}")
    if steps < 0:
        raise PrivacyBudgetError(f"steps must be >= 0, got {steps}")
    orders = np.asarray(orders, dtype=np.float64)
    if q == 0.0 or steps == 0:
        return np.zeros_like(orders)
    if q == 1.0:
        return steps * rdp_gaussian(sigma, orders)
    per_step = np.array(
        [
            _rdp_subsampled_gaussian_int(q, sigma, max(2, int(np.ceil(alpha))))
            for alpha in orders
        ]
    )
    return steps * per_step


def rdp_to_dp(rdp_values: np.ndarray, delta: float,
              orders=DEFAULT_ORDERS) -> tuple[float, float]:
    """Convert an RDP curve to an (epsilon, delta)-DP guarantee.

    Uses the standard conversion ``epsilon = min_alpha RDP(alpha) +
    log(1/delta)/(alpha - 1)`` and returns ``(epsilon, best_alpha)``.
    """
    if not 0 < delta < 1:
        raise PrivacyBudgetError(f"delta must be in (0, 1), got {delta}")
    orders = np.asarray(orders, dtype=np.float64)
    rdp_values = np.asarray(rdp_values, dtype=np.float64)
    if orders.shape != rdp_values.shape:
        raise PrivacyBudgetError("orders and rdp_values must have matching shapes")
    epsilons = rdp_values + np.log(1.0 / delta) / (orders - 1.0)
    best = int(np.argmin(epsilons))
    return float(epsilons[best]), float(orders[best])


def calibrate_gaussian_noise_rdp(target_epsilon: float, target_delta: float, q: float,
                                 steps: int, orders=DEFAULT_ORDERS,
                                 sigma_bounds: tuple[float, float] = (0.3, 200.0)) -> float:
    """Find the smallest noise multiplier meeting a target (epsilon, delta) budget.

    Performs a bisection over ``sigma`` for ``steps`` compositions of the
    Poisson-subsampled Gaussian mechanism with sampling rate ``q``.
    """
    if target_epsilon <= 0:
        raise PrivacyBudgetError(f"target_epsilon must be > 0, got {target_epsilon}")

    def epsilon_of(sigma: float) -> float:
        rdp = rdp_subsampled_gaussian(q, sigma, steps, orders)
        return rdp_to_dp(rdp, target_delta, orders)[0]

    low, high = sigma_bounds
    if epsilon_of(high) > target_epsilon:
        raise PrivacyBudgetError(
            "cannot meet the requested budget within the sigma search range; "
            "reduce the number of steps or the sampling rate"
        )
    if epsilon_of(low) <= target_epsilon:
        return low
    for _ in range(80):
        mid = 0.5 * (low + high)
        if epsilon_of(mid) > target_epsilon:
            low = mid
        else:
            high = mid
    return high
