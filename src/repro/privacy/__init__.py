"""Differential-privacy primitives: mechanisms, accountants, noise samplers."""

from repro.privacy.definitions import PrivacySpec
from repro.privacy.mechanisms import (
    laplace_mechanism,
    gaussian_mechanism,
    gaussian_sigma,
    analytic_gaussian_sigma,
    randomized_response_matrix,
)
from repro.privacy.erlang import sample_erlang_radius, sample_sphere_noise, erlang_pdf
from repro.privacy.rdp import (
    rdp_gaussian,
    rdp_subsampled_gaussian,
    rdp_to_dp,
    DEFAULT_ORDERS,
)
from repro.privacy.accountant import RdpAccountant, BudgetLedger
from repro.privacy.composition import (
    basic_composition,
    parallel_composition,
    advanced_composition,
    optimal_homogeneous_composition,
    heterogeneous_advanced_composition,
    CompositionPlan,
)
from repro.privacy.pdp import (
    pdp_implies_dp,
    log_ratio_violation_fraction,
    empirical_pdp_epsilon,
    check_pdp,
)
from repro.privacy.audit import (
    PrivacyAuditor,
    AuditResult,
    audit_laplace_mechanism,
    clopper_pearson_interval,
    epsilon_lower_bound,
)

__all__ = [
    "PrivacySpec",
    "laplace_mechanism",
    "gaussian_mechanism",
    "gaussian_sigma",
    "analytic_gaussian_sigma",
    "randomized_response_matrix",
    "sample_erlang_radius",
    "sample_sphere_noise",
    "erlang_pdf",
    "rdp_gaussian",
    "rdp_subsampled_gaussian",
    "rdp_to_dp",
    "DEFAULT_ORDERS",
    "RdpAccountant",
    "BudgetLedger",
    "basic_composition",
    "parallel_composition",
    "advanced_composition",
    "optimal_homogeneous_composition",
    "heterogeneous_advanced_composition",
    "CompositionPlan",
    "pdp_implies_dp",
    "log_ratio_violation_fraction",
    "empirical_pdp_epsilon",
    "check_pdp",
    "PrivacyAuditor",
    "AuditResult",
    "audit_laplace_mechanism",
    "clopper_pearson_interval",
    "epsilon_lower_bound",
]
