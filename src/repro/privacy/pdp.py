"""Probabilistic differential privacy (pDP) helpers.

Theorem 1 of the paper is proved via (ε, δ)-*probabilistic* DP (Definition 6
in Appendix M): with probability at least ``1 - δ`` over the output, the
log-density ratio between neighbouring inputs lies in ``[-ε, ε]``; Lemma 10
then converts pDP to ordinary (ε, δ)-DP.  This module captures that argument
so tests (and the empirical audit in :mod:`repro.privacy.audit`) can exercise
it directly on log-density-ratio samples.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import PrivacyBudgetError


def pdp_implies_dp(epsilon: float, delta: float) -> tuple[float, float]:
    """Lemma 10: an (ε, δ)-pDP mechanism is (ε, δ)-DP with the same parameters."""
    if epsilon < 0:
        raise PrivacyBudgetError(f"epsilon must be >= 0, got {epsilon}")
    if not 0.0 <= delta <= 1.0:
        raise PrivacyBudgetError(f"delta must be in [0, 1], got {delta}")
    return epsilon, delta


def log_ratio_violation_fraction(log_density_ratios: np.ndarray, epsilon: float) -> float:
    """Fraction of outputs whose absolute log-density ratio exceeds ``epsilon``.

    ``log_density_ratios`` are samples of ``log g(o | D) - log g(o | D')`` drawn
    with ``o ~ A(D)``.  For an (ε, δ)-pDP mechanism the returned fraction is a
    consistent estimator of a quantity that is at most δ.
    """
    if epsilon < 0:
        raise PrivacyBudgetError(f"epsilon must be >= 0, got {epsilon}")
    ratios = np.asarray(log_density_ratios, dtype=np.float64)
    if ratios.size == 0:
        raise PrivacyBudgetError("log_density_ratios must be non-empty")
    return float(np.mean(np.abs(ratios) > epsilon))


def empirical_pdp_epsilon(log_density_ratios: np.ndarray, delta: float) -> float:
    """Smallest ε such that the observed samples satisfy the pDP inequality at level δ.

    This is the empirical ``(1 - delta)``-quantile of the absolute log-density
    ratios: a diagnostic (not a certified bound) that should sit below the
    analytical ε of Theorem 1 when the mechanism is implemented correctly.
    """
    if not 0.0 <= delta <= 1.0:
        raise PrivacyBudgetError(f"delta must be in [0, 1], got {delta}")
    ratios = np.abs(np.asarray(log_density_ratios, dtype=np.float64))
    if ratios.size == 0:
        raise PrivacyBudgetError("log_density_ratios must be non-empty")
    if delta <= 0.0:
        return float(ratios.max())
    return float(np.quantile(ratios, 1.0 - delta))


def check_pdp(log_density_ratios: np.ndarray, epsilon: float, delta: float,
              slack: float = 0.0) -> bool:
    """True if the sampled log-density ratios are consistent with (ε, δ)-pDP.

    ``slack`` loosens the δ comparison to account for Monte-Carlo error; a
    typical choice is two binomial standard deviations,
    ``2 * sqrt(delta * (1 - delta) / n)``.
    """
    violation = log_ratio_violation_fraction(log_density_ratios, epsilon)
    return violation <= delta + slack
