"""Composition theorems for (ε, δ)-differential privacy.

GCON itself needs no composition: Theorem 1 charges the entire budget to a
single objective-perturbation release.  The baselines, however, compose many
noisy releases (per-hop aggregation noise in GAP/ProGAP, per-step gradient
noise in DP-SGD), and the experiment harness occasionally needs to reason
about the total budget of a pipeline.  This module provides the standard
composition bounds:

* sequential (basic) composition -- budgets add up;
* advanced composition (Dwork, Rothblum, Vadhan 2010) -- sub-linear growth in
  the number of mechanisms at the price of an extra ``delta_prime``;
* the optimal homogeneous bound of Kairouz, Oh and Viswanath (2015);
* parallel composition -- disjoint inputs cost only the maximum budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.exceptions import PrivacyBudgetError


def _validate_budget(epsilon: float, delta: float) -> None:
    if epsilon < 0:
        raise PrivacyBudgetError(f"epsilon must be >= 0, got {epsilon}")
    if not 0.0 <= delta <= 1.0:
        raise PrivacyBudgetError(f"delta must be in [0, 1], got {delta}")


def basic_composition(budgets: Iterable[tuple[float, float]]) -> tuple[float, float]:
    """Sequential composition: ``(sum eps_i, sum delta_i)``.

    Parameters
    ----------
    budgets:
        Iterable of ``(epsilon, delta)`` pairs, one per mechanism.
    """
    total_epsilon = 0.0
    total_delta = 0.0
    for epsilon, delta in budgets:
        _validate_budget(epsilon, delta)
        total_epsilon += epsilon
        total_delta += delta
    return total_epsilon, min(total_delta, 1.0)


def parallel_composition(budgets: Iterable[tuple[float, float]]) -> tuple[float, float]:
    """Parallel composition over disjoint data partitions: the maximum budget."""
    max_epsilon = 0.0
    max_delta = 0.0
    empty = True
    for epsilon, delta in budgets:
        _validate_budget(epsilon, delta)
        max_epsilon = max(max_epsilon, epsilon)
        max_delta = max(max_delta, delta)
        empty = False
    if empty:
        return 0.0, 0.0
    return max_epsilon, max_delta


def advanced_composition(epsilon: float, delta: float, num_mechanisms: int,
                         delta_prime: float) -> tuple[float, float]:
    """Advanced composition of ``k`` identical (ε, δ)-DP mechanisms.

    Returns the (ε', kδ + δ') guarantee of Dwork-Rothblum-Vadhan:

    ``eps' = sqrt(2 k ln(1/δ')) ε + k ε (e^ε - 1)``.
    """
    _validate_budget(epsilon, delta)
    if num_mechanisms < 1:
        raise PrivacyBudgetError(f"num_mechanisms must be >= 1, got {num_mechanisms}")
    if not 0.0 < delta_prime < 1.0:
        raise PrivacyBudgetError(f"delta_prime must be in (0, 1), got {delta_prime}")
    epsilon_total = (
        math.sqrt(2.0 * num_mechanisms * math.log(1.0 / delta_prime)) * epsilon
        + num_mechanisms * epsilon * (math.exp(epsilon) - 1.0)
    )
    delta_total = num_mechanisms * delta + delta_prime
    return epsilon_total, min(delta_total, 1.0)


def optimal_homogeneous_composition(epsilon: float, delta: float, num_mechanisms: int,
                                    delta_slack: float) -> tuple[float, float]:
    """Kairouz-Oh-Viswanath optimal composition of ``k`` identical (ε, δ)-DP mechanisms.

    Evaluates the three candidate bounds of Theorem 3.3 in KOV'15 (the naive
    ``k ε`` bound and the two concentration bounds) and returns the smallest.
    The resulting guarantee is ``(eps', 1 - (1 - delta)^k (1 - delta_slack))``;
    for simplicity we report the slightly looser ``k delta + delta_slack``.
    """
    _validate_budget(epsilon, delta)
    if num_mechanisms < 1:
        raise PrivacyBudgetError(f"num_mechanisms must be >= 1, got {num_mechanisms}")
    if not 0.0 < delta_slack < 1.0:
        raise PrivacyBudgetError(f"delta_slack must be in (0, 1), got {delta_slack}")
    k = num_mechanisms
    naive = k * epsilon
    expm1 = math.expm1(epsilon)
    mean_shift = k * epsilon * expm1 / (math.exp(epsilon) + 1.0)
    candidate_a = mean_shift + epsilon * math.sqrt(2.0 * k * math.log(1.0 / delta_slack))
    candidate_b = mean_shift + epsilon * math.sqrt(
        2.0 * k * math.log(math.e + epsilon * math.sqrt(k) / delta_slack)
    )
    epsilon_total = min(naive, candidate_a, candidate_b)
    delta_total = min(k * delta + delta_slack, 1.0)
    return epsilon_total, delta_total


def heterogeneous_advanced_composition(budgets: Sequence[tuple[float, float]],
                                       delta_prime: float) -> tuple[float, float]:
    """Advanced composition for mechanisms with different budgets.

    Uses the heterogeneous form
    ``eps' = sqrt(2 ln(1/δ') Σ eps_i²) + Σ eps_i (e^{eps_i} - 1)``.
    """
    if not 0.0 < delta_prime < 1.0:
        raise PrivacyBudgetError(f"delta_prime must be in (0, 1), got {delta_prime}")
    sum_sq = 0.0
    drift = 0.0
    total_delta = 0.0
    for epsilon, delta in budgets:
        _validate_budget(epsilon, delta)
        sum_sq += epsilon * epsilon
        drift += epsilon * (math.exp(epsilon) - 1.0)
        total_delta += delta
    epsilon_total = math.sqrt(2.0 * math.log(1.0 / delta_prime) * sum_sq) + drift
    return epsilon_total, min(total_delta + delta_prime, 1.0)


@dataclass
class CompositionPlan:
    """Convenience wrapper comparing composition bounds for a sequence of releases.

    Example
    -------
    >>> plan = CompositionPlan()
    >>> plan.add(0.1, 1e-6, count=50)
    >>> eps, delta = plan.best(delta_prime=1e-6)
    """

    budgets: list[tuple[float, float]] | None = None

    def __post_init__(self) -> None:
        if self.budgets is None:
            self.budgets = []

    def add(self, epsilon: float, delta: float = 0.0, count: int = 1) -> "CompositionPlan":
        """Record ``count`` identical (ε, δ)-DP releases (chainable)."""
        _validate_budget(epsilon, delta)
        if count < 1:
            raise PrivacyBudgetError(f"count must be >= 1, got {count}")
        self.budgets.extend([(epsilon, delta)] * count)
        return self

    def __len__(self) -> int:
        return len(self.budgets)

    def basic(self) -> tuple[float, float]:
        return basic_composition(self.budgets)

    def advanced(self, delta_prime: float) -> tuple[float, float]:
        return heterogeneous_advanced_composition(self.budgets, delta_prime)

    def best(self, delta_prime: float) -> tuple[float, float]:
        """The tighter of basic and advanced composition (matching deltas are reported)."""
        basic_eps, basic_delta = self.basic()
        adv_eps, adv_delta = self.advanced(delta_prime)
        if adv_eps < basic_eps:
            return adv_eps, adv_delta
        return basic_eps, basic_delta
