"""Privacy budget specification shared by GCON and the baselines."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import PrivacyBudgetError


@dataclass(frozen=True)
class PrivacySpec:
    """An (epsilon, delta) edge-level differential privacy budget.

    ``delta`` defaults to the paper's convention ``1 / |E|`` when constructed
    via :meth:`for_graph`.
    """

    epsilon: float
    delta: float

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise PrivacyBudgetError(f"epsilon must be > 0, got {self.epsilon}")
        if not 0.0 <= self.delta < 1.0:
            raise PrivacyBudgetError(f"delta must be in [0, 1), got {self.delta}")

    @classmethod
    def for_graph(cls, epsilon: float, graph) -> "PrivacySpec":
        """Construct a budget with ``delta = 1/|E|`` for the given graph."""
        num_edges = max(int(graph.num_edges), 1)
        return cls(epsilon=epsilon, delta=1.0 / num_edges)

    def split(self, fraction: float) -> tuple["PrivacySpec", "PrivacySpec"]:
        """Split the epsilon budget into two parts; delta is carried by both halves.

        The split is done by sequential composition on epsilon only, which is
        the convention the DPGCN/LPGNet baselines use for their two-stage
        mechanisms.
        """
        if not 0.0 < fraction < 1.0:
            raise PrivacyBudgetError(f"fraction must be in (0, 1), got {fraction}")
        first = PrivacySpec(self.epsilon * fraction, self.delta)
        second = PrivacySpec(self.epsilon * (1.0 - fraction), self.delta)
        return first, second

    def __str__(self) -> str:
        return f"(ε={self.epsilon:g}, δ={self.delta:g})"
