"""Classical DP mechanisms: Laplace, Gaussian, randomized response.

These power the baselines: DPGCN perturbs the adjacency matrix with Laplace
noise (LapGraph), GAP/ProGAP add Gaussian noise to aggregate embeddings, and
randomized response is provided as an alternative adjacency perturbation.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize, stats

from repro.exceptions import PrivacyBudgetError
from repro.utils.random import as_rng


def laplace_mechanism(values: np.ndarray, sensitivity: float, epsilon: float,
                      rng=None) -> np.ndarray:
    """Add Laplace(sensitivity / epsilon) noise to ``values`` (epsilon-DP)."""
    if sensitivity <= 0:
        raise PrivacyBudgetError(f"sensitivity must be > 0, got {sensitivity}")
    if epsilon <= 0:
        raise PrivacyBudgetError(f"epsilon must be > 0, got {epsilon}")
    rng = as_rng(rng)
    scale = sensitivity / epsilon
    values = np.asarray(values, dtype=np.float64)
    return values + rng.laplace(0.0, scale, size=values.shape)


def gaussian_sigma(sensitivity: float, epsilon: float, delta: float) -> float:
    """Classical Gaussian-mechanism noise scale ``sigma`` for (epsilon, delta)-DP.

    Uses the standard bound ``sigma = sensitivity * sqrt(2 ln(1.25/delta)) / epsilon``
    which is valid for ``epsilon <= 1``; for larger epsilon the analytic
    calibration (:func:`analytic_gaussian_sigma`) should be preferred.
    """
    if sensitivity <= 0 or epsilon <= 0 or not 0 < delta < 1:
        raise PrivacyBudgetError("invalid (sensitivity, epsilon, delta) for Gaussian mechanism")
    return sensitivity * np.sqrt(2.0 * np.log(1.25 / delta)) / epsilon


def analytic_gaussian_sigma(sensitivity: float, epsilon: float, delta: float) -> float:
    """Analytic Gaussian mechanism calibration (Balle & Wang, 2018).

    Finds the smallest ``sigma`` such that the Gaussian mechanism with L2
    sensitivity ``sensitivity`` satisfies (epsilon, delta)-DP, valid for all
    ``epsilon > 0`` (unlike the classical bound).  The condition used is

    ``Phi(s/(2 sigma) - epsilon sigma / s) - e^eps Phi(-s/(2 sigma) - epsilon sigma / s) <= delta``.
    """
    if sensitivity <= 0 or epsilon <= 0 or not 0 < delta < 1:
        raise PrivacyBudgetError("invalid (sensitivity, epsilon, delta) for Gaussian mechanism")

    def delta_of_sigma(sigma: float) -> float:
        a = sensitivity / (2.0 * sigma)
        b = epsilon * sigma / sensitivity
        return stats.norm.cdf(a - b) - np.exp(epsilon) * stats.norm.cdf(-a - b)

    # Bracket: large sigma drives delta to 0, tiny sigma drives it to 1.
    low, high = 1e-6 * sensitivity, sensitivity
    while delta_of_sigma(high) > delta:
        high *= 2.0
        if high > 1e9 * sensitivity:  # pragma: no cover - defensive
            raise PrivacyBudgetError("failed to bracket analytic Gaussian sigma")
    result = optimize.brentq(lambda s: delta_of_sigma(s) - delta, low, high, xtol=1e-12)
    return float(result)


def gaussian_mechanism(values: np.ndarray, sensitivity: float, epsilon: float,
                       delta: float, rng=None, analytic: bool = True) -> np.ndarray:
    """Add Gaussian noise calibrated for (epsilon, delta)-DP to ``values``."""
    rng = as_rng(rng)
    sigma = (analytic_gaussian_sigma if analytic else gaussian_sigma)(sensitivity, epsilon, delta)
    values = np.asarray(values, dtype=np.float64)
    return values + rng.normal(0.0, sigma, size=values.shape)


def randomized_response_matrix(adjacency: np.ndarray, epsilon: float, rng=None) -> np.ndarray:
    """Apply randomized response to the upper triangle of a dense binary adjacency.

    Each potential undirected edge bit is kept with probability
    ``e^eps / (e^eps + 1)`` and flipped otherwise, which satisfies epsilon-edge-DP.
    Returns a symmetric binary matrix with zero diagonal.  Intended for small
    graphs only (dense ``n x n`` memory).
    """
    if epsilon <= 0:
        raise PrivacyBudgetError(f"epsilon must be > 0, got {epsilon}")
    rng = as_rng(rng)
    adjacency = np.asarray(adjacency, dtype=np.float64)
    n = adjacency.shape[0]
    keep_prob = np.exp(epsilon) / (np.exp(epsilon) + 1.0)
    upper = np.triu(adjacency, k=1)
    flips = rng.random((n, n)) >= keep_prob
    perturbed_upper = np.where(np.triu(flips, k=1), 1.0 - upper, upper)
    perturbed_upper = np.triu(perturbed_upper, k=1)
    return perturbed_upper + perturbed_upper.T
