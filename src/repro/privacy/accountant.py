"""Privacy accountants: an RDP accountant and a simple sequential-composition ledger."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import PrivacyBudgetError
from repro.privacy.rdp import DEFAULT_ORDERS, rdp_gaussian, rdp_subsampled_gaussian, rdp_to_dp


class RdpAccountant:
    """Accumulates RDP over a sequence of (subsampled) Gaussian mechanism events."""

    def __init__(self, orders=DEFAULT_ORDERS):
        self.orders = np.asarray(orders, dtype=np.float64)
        self._rdp = np.zeros_like(self.orders)
        self._events: list[dict] = []

    def add_gaussian(self, sigma: float, sensitivity: float = 1.0, count: int = 1) -> None:
        """Record ``count`` releases of a Gaussian mechanism with scale ``sigma``."""
        if count < 0:
            raise PrivacyBudgetError(f"count must be >= 0, got {count}")
        self._rdp = self._rdp + count * rdp_gaussian(sigma, self.orders, sensitivity)
        self._events.append({"kind": "gaussian", "sigma": sigma, "sensitivity": sensitivity,
                             "count": count})

    def add_subsampled_gaussian(self, q: float, sigma: float, steps: int) -> None:
        """Record ``steps`` Poisson-subsampled Gaussian steps (e.g. DP-SGD iterations)."""
        self._rdp = self._rdp + rdp_subsampled_gaussian(q, sigma, steps, self.orders)
        self._events.append({"kind": "subsampled_gaussian", "q": q, "sigma": sigma,
                             "steps": steps})

    def get_epsilon(self, delta: float) -> float:
        """Return the tightest epsilon achievable at the given delta."""
        if not self._events:
            return 0.0
        epsilon, _ = rdp_to_dp(self._rdp, delta, self.orders)
        return epsilon

    @property
    def events(self) -> list[dict]:
        return list(self._events)


@dataclass
class BudgetLedger:
    """A sequential-composition ledger for pure/approximate DP spending.

    Mechanisms register their (epsilon, delta) costs; the ledger refuses to
    exceed the total budget.  Used by the multi-stage baselines (DPGCN and
    LPGNet split their budget across sub-mechanisms).
    """

    total_epsilon: float
    total_delta: float
    spent_epsilon: float = 0.0
    spent_delta: float = 0.0
    entries: list[dict] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.total_epsilon <= 0:
            raise PrivacyBudgetError(f"total_epsilon must be > 0, got {self.total_epsilon}")
        if not 0.0 <= self.total_delta < 1.0:
            raise PrivacyBudgetError(f"total_delta must be in [0, 1), got {self.total_delta}")

    def spend(self, epsilon: float, delta: float = 0.0, label: str = "") -> None:
        """Record a spend; raises if it would exceed the total budget."""
        if epsilon < 0 or delta < 0:
            raise PrivacyBudgetError("spends must be non-negative")
        tol = 1e-9
        if self.spent_epsilon + epsilon > self.total_epsilon + tol:
            raise PrivacyBudgetError(
                f"epsilon budget exceeded: spent {self.spent_epsilon:g} + {epsilon:g} "
                f"> total {self.total_epsilon:g}"
            )
        if self.spent_delta + delta > self.total_delta + tol:
            raise PrivacyBudgetError(
                f"delta budget exceeded: spent {self.spent_delta:g} + {delta:g} "
                f"> total {self.total_delta:g}"
            )
        self.spent_epsilon += epsilon
        self.spent_delta += delta
        self.entries.append({"label": label, "epsilon": epsilon, "delta": delta})

    @property
    def remaining_epsilon(self) -> float:
        return max(0.0, self.total_epsilon - self.spent_epsilon)

    @property
    def remaining_delta(self) -> float:
        return max(0.0, self.total_delta - self.spent_delta)
