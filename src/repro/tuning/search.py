"""Grid and random hyperparameter search drivers.

Both drivers evaluate an *estimator factory* — a callable mapping a parameter
dict to a fresh estimator exposing ``fit(graph, seed)`` and
``predict(graph, mode=...)`` — on the validation split of a graph, with an
arbitrary number of repeated fits per configuration (the paper averages over
10 runs).  Test-split scores are never consulted during the search, matching
the tuning protocol of Appendix Q.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.evaluation.metrics import micro_f1
from repro.exceptions import ConfigurationError
from repro.graphs.graph import GraphDataset
from repro.tuning.results import TrialResult, TuningResult
from repro.tuning.space import SearchSpace
from repro.utils.random import as_rng, spawn_rngs

EstimatorFactory = Callable[[dict], object]


def evaluate_trial(factory: EstimatorFactory, params: dict, graph: GraphDataset, *,
                   repeats: int = 1, inference_mode: str = "private",
                   seed: int | np.random.Generator | None = 0,
                   trial_id: int = 0) -> TrialResult:
    """Fit ``repeats`` estimators with ``params`` and score them on the validation split."""
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    if graph.val_idx.size == 0:
        raise ConfigurationError("the graph must provide a non-empty validation split")
    rng = as_rng(seed)
    scores = []
    for repeat_rng in spawn_rngs(rng, repeats):
        fit_seed = int(repeat_rng.integers(0, 2**31 - 1))
        estimator = factory(dict(params))
        estimator.fit(graph, seed=fit_seed)
        try:
            predictions = np.asarray(estimator.predict(graph, mode=inference_mode))
        except TypeError:
            predictions = np.asarray(estimator.predict(graph))
        scores.append(micro_f1(graph.labels[graph.val_idx], predictions[graph.val_idx]))
    return TrialResult(params=dict(params), scores=tuple(scores), trial_id=trial_id)


class _BaseSearch:
    """Shared constructor/validation of the two search drivers."""

    def __init__(self, factory: EstimatorFactory, space: SearchSpace, *,
                 repeats: int = 1, inference_mode: str = "private", seed: int = 0,
                 verbose: bool = False):
        if repeats < 1:
            raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
        if inference_mode not in ("private", "public"):
            raise ConfigurationError(
                f"inference_mode must be 'private' or 'public', got {inference_mode!r}"
            )
        self.factory = factory
        self.space = space
        self.repeats = repeats
        self.inference_mode = inference_mode
        self.seed = seed
        self.verbose = verbose

    def _evaluate_all(self, graph: GraphDataset, configurations) -> TuningResult:
        result = TuningResult()
        rng = as_rng(self.seed)
        for trial_id, params in enumerate(configurations):
            trial = evaluate_trial(
                self.factory, params, graph,
                repeats=self.repeats, inference_mode=self.inference_mode,
                seed=rng, trial_id=trial_id,
            )
            result.add(trial)
            if self.verbose:  # pragma: no cover - logging side effect only
                from repro.utils.logging import get_logger

                get_logger("repro.tuning").info(
                    "trial %d: mean=%.4f params=%s", trial_id, trial.mean_score, params
                )
        return result


class GridSearch(_BaseSearch):
    """Exhaustive search over ``space.grid()``."""

    def run(self, graph: GraphDataset) -> TuningResult:
        return self._evaluate_all(graph, self.space.grid())


class RandomSearch(_BaseSearch):
    """Random search drawing ``num_trials`` configurations from the space."""

    def __init__(self, factory: EstimatorFactory, space: SearchSpace, *,
                 num_trials: int = 20, repeats: int = 1,
                 inference_mode: str = "private", seed: int = 0, verbose: bool = False):
        super().__init__(factory, space, repeats=repeats,
                         inference_mode=inference_mode, seed=seed, verbose=verbose)
        if num_trials < 1:
            raise ConfigurationError(f"num_trials must be >= 1, got {num_trials}")
        self.num_trials = num_trials

    def run(self, graph: GraphDataset) -> TuningResult:
        rng = as_rng(self.seed)
        configurations = [self.space.sample(rng) for _ in range(self.num_trials)]
        return self._evaluate_all(graph, configurations)
