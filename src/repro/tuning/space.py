"""Declarative hyperparameter search-space definitions.

A :class:`SearchSpace` is an ordered collection of named parameters, each of
which can enumerate grid points (for :class:`~repro.tuning.search.GridSearch`)
and draw random samples (for :class:`~repro.tuning.search.RandomSearch`).
"""

from __future__ import annotations

import itertools
import math
from typing import Iterator, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.random import as_rng


class Parameter:
    """Base class of a named hyperparameter."""

    def __init__(self, name: str):
        if not name:
            raise ConfigurationError("parameter name must be non-empty")
        self.name = name

    def grid(self) -> list:
        """Finite list of grid points for exhaustive search."""
        raise NotImplementedError

    def sample(self, rng: np.random.Generator):
        """One random draw from the parameter's domain."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}({self.name!r})"


class Categorical(Parameter):
    """A parameter taking one of an explicit list of values."""

    def __init__(self, name: str, choices: Sequence):
        super().__init__(name)
        choices = list(choices)
        if not choices:
            raise ConfigurationError(f"parameter {name!r} needs at least one choice")
        self.choices = choices

    def grid(self) -> list:
        return list(self.choices)

    def sample(self, rng: np.random.Generator):
        return self.choices[int(rng.integers(0, len(self.choices)))]


class UniformFloat(Parameter):
    """A float drawn uniformly (optionally log-uniformly) from ``[low, high]``."""

    def __init__(self, name: str, low: float, high: float, log: bool = False,
                 grid_points: int = 5):
        super().__init__(name)
        if not low < high:
            raise ConfigurationError(f"{name!r}: low must be < high, got [{low}, {high}]")
        if log and low <= 0:
            raise ConfigurationError(f"{name!r}: log-uniform requires low > 0, got {low}")
        if grid_points < 2:
            raise ConfigurationError(f"{name!r}: grid_points must be >= 2, got {grid_points}")
        self.low = float(low)
        self.high = float(high)
        self.log = log
        self.grid_points = grid_points

    def grid(self) -> list:
        if self.log:
            return list(np.geomspace(self.low, self.high, self.grid_points))
        return list(np.linspace(self.low, self.high, self.grid_points))

    def sample(self, rng: np.random.Generator) -> float:
        if self.log:
            return float(math.exp(rng.uniform(math.log(self.low), math.log(self.high))))
        return float(rng.uniform(self.low, self.high))


class UniformInt(Parameter):
    """An integer drawn uniformly from ``[low, high]`` (inclusive)."""

    def __init__(self, name: str, low: int, high: int):
        super().__init__(name)
        if not low <= high:
            raise ConfigurationError(f"{name!r}: low must be <= high, got [{low}, {high}]")
        self.low = int(low)
        self.high = int(high)

    def grid(self) -> list:
        return list(range(self.low, self.high + 1))

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.low, self.high + 1))


class SearchSpace:
    """An ordered collection of :class:`Parameter` objects."""

    def __init__(self, parameters: Sequence[Parameter]):
        parameters = list(parameters)
        if not parameters:
            raise ConfigurationError("a search space needs at least one parameter")
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate parameter names in search space: {names}")
        self.parameters = parameters

    @property
    def names(self) -> list[str]:
        return [p.name for p in self.parameters]

    def __len__(self) -> int:
        return len(self.parameters)

    def grid_size(self) -> int:
        """Number of configurations enumerated by :meth:`grid`."""
        size = 1
        for parameter in self.parameters:
            size *= len(parameter.grid())
        return size

    def grid(self) -> Iterator[dict]:
        """Iterate over the Cartesian product of all parameter grids."""
        grids = [parameter.grid() for parameter in self.parameters]
        for combination in itertools.product(*grids):
            yield dict(zip(self.names, combination))

    def sample(self, rng: int | np.random.Generator | None = None) -> dict:
        """Draw one random configuration."""
        rng = as_rng(rng)
        return {parameter.name: parameter.sample(rng) for parameter in self.parameters}

    def subspace(self, names: Sequence[str]) -> "SearchSpace":
        """Restrict the space to the named parameters (preserving order)."""
        wanted = set(names)
        missing = wanted - set(self.names)
        if missing:
            raise ConfigurationError(f"unknown parameter(s) {sorted(missing)}")
        return SearchSpace([p for p in self.parameters if p.name in wanted])
