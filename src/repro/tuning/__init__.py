"""Hyperparameter search utilities (the paper's Appendix-Q tuning protocol).

The paper tunes GCON and every baseline on the validation split over explicit
grids (restart probability, propagation steps, loss, regularisation, encoder
width, pseudo-label expansion).  This subpackage provides:

* :mod:`repro.tuning.space` -- declarative search-space definitions;
* :mod:`repro.tuning.search` -- grid and random search drivers that evaluate
  any estimator with the shared ``fit``/``predict`` interface;
* :mod:`repro.tuning.results` -- trial bookkeeping and leaderboards;
* :mod:`repro.tuning.presets` -- the Appendix-Q grids for GCON.
"""

from repro.tuning.space import Categorical, UniformFloat, UniformInt, SearchSpace
from repro.tuning.results import TrialResult, TuningResult
from repro.tuning.search import GridSearch, RandomSearch, evaluate_trial
from repro.tuning.presets import gcon_search_space, gcon_quick_space, make_gcon_factory

__all__ = [
    "Categorical",
    "UniformFloat",
    "UniformInt",
    "SearchSpace",
    "TrialResult",
    "TuningResult",
    "GridSearch",
    "RandomSearch",
    "evaluate_trial",
    "gcon_search_space",
    "gcon_quick_space",
    "make_gcon_factory",
]
