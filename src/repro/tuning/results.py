"""Trial bookkeeping for the hyperparameter search drivers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class TrialResult:
    """The outcome of evaluating one hyperparameter configuration."""

    params: dict
    scores: tuple
    trial_id: int = 0

    @property
    def mean_score(self) -> float:
        return float(np.mean(self.scores))

    @property
    def std_score(self) -> float:
        return float(np.std(self.scores))

    @property
    def num_repeats(self) -> int:
        return len(self.scores)


@dataclass
class TuningResult:
    """An ordered collection of :class:`TrialResult` objects."""

    trials: list[TrialResult] = field(default_factory=list)
    metric: str = "val_micro_f1"

    def add(self, trial: TrialResult) -> None:
        self.trials.append(trial)

    def __len__(self) -> int:
        return len(self.trials)

    def __iter__(self):
        return iter(self.trials)

    @property
    def best_trial(self) -> TrialResult:
        if not self.trials:
            raise ConfigurationError("no trials have been recorded")
        return max(self.trials, key=lambda trial: trial.mean_score)

    @property
    def best_params(self) -> dict:
        return dict(self.best_trial.params)

    @property
    def best_score(self) -> float:
        return self.best_trial.mean_score

    def leaderboard(self, top_k: int | None = None) -> list[TrialResult]:
        """Trials sorted by mean score, best first."""
        ranked = sorted(self.trials, key=lambda trial: trial.mean_score, reverse=True)
        return ranked if top_k is None else ranked[:top_k]

    def to_rows(self, top_k: int | None = None) -> tuple[list[str], list[list]]:
        """Headers and rows for :func:`repro.evaluation.reporting.render_table`."""
        if not self.trials:
            return ([], [])
        param_names = sorted({name for trial in self.trials for name in trial.params})
        headers = ["rank", "mean", "std"] + param_names
        rows = []
        for rank, trial in enumerate(self.leaderboard(top_k), start=1):
            row = [rank, f"{trial.mean_score:.4f}", f"{trial.std_score:.4f}"]
            row += [self._format(trial.params.get(name)) for name in param_names]
            rows.append(row)
        return headers, rows

    @staticmethod
    def _format(value) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:g}"
        return str(value)
