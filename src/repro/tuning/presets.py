"""The Appendix-Q hyperparameter grids for GCON, packaged as search spaces."""

from __future__ import annotations

import math

from repro.core.config import GCONConfig
from repro.core.model import GCON
from repro.exceptions import ConfigurationError
from repro.tuning.space import Categorical, SearchSpace


def gcon_search_space(dataset: str = "cora_ml") -> SearchSpace:
    """The full Appendix-Q grid for GCON on a given dataset.

    Homophilous datasets (Cora-ML, CiteSeer, PubMed) use a single propagation
    branch with ``m1 ∈ {1, 2, 5, 10, ∞}``; the heterophilous Actor preset uses
    short multi-branch concatenations as in the paper.
    """
    if dataset in ("cora_ml", "citeseer", "pubmed"):
        steps = Categorical("propagation_steps", [(1,), (2,), (5,), (10,), (math.inf,)])
    elif dataset == "actor":
        steps = Categorical("propagation_steps", [(0,), (1,), (2,), (0, 1), (0, 2), (0, 1, 2)])
    else:
        raise ConfigurationError(f"unknown dataset preset {dataset!r}")
    return SearchSpace([
        Categorical("alpha", [0.2, 0.4, 0.6, 0.8]),
        steps,
        Categorical("loss", ["soft_margin", "pseudo_huber"]),
        Categorical("huber_delta", [0.1, 0.2, 0.5]),
        Categorical("lambda_reg", [0.01, 0.2, 1.0, 2.0]),
        Categorical("encoder_hidden", [8, 16, 64]),
        Categorical("use_pseudo_labels", [False, True]),
        Categorical("inference_alpha", [None, 0.1, 0.9]),
    ])


def gcon_quick_space() -> SearchSpace:
    """A small grid (a few dozen points) used by tests, examples and the CLI default."""
    return SearchSpace([
        Categorical("alpha", [0.4, 0.8]),
        Categorical("propagation_steps", [(1,), (2,)]),
        Categorical("lambda_reg", [0.2, 1.0]),
        Categorical("use_pseudo_labels", [True]),
    ])


def make_gcon_factory(epsilon: float, delta: float | None = None, **fixed):
    """An estimator factory binding the privacy budget and any fixed settings.

    The returned callable maps a search-space parameter dict to a fresh
    :class:`~repro.core.model.GCON`; search parameters override the fixed
    settings.
    """
    if epsilon <= 0:
        raise ConfigurationError(f"epsilon must be > 0, got {epsilon}")

    def factory(params: dict) -> GCON:
        settings = dict(fixed)
        settings.update(params)
        config = GCONConfig(epsilon=epsilon, delta=delta, **settings)
        return GCON(config)

    return factory
