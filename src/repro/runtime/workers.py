"""Picklable cell runners for the figure/table sweeps.

A cell runner is the unit of work the engine ships to a process pool, so it
must be picklable and cheap to serialise: these dataclasses carry only the
:class:`~repro.evaluation.figures.FigureSettings` plus a few scalars, and
rebuild graphs/method registries inside the worker process.  Per-process
memoisation keeps that rebuild cost amortised:

* graphs are loaded once per ``(dataset, scale, seed)``;
* for estimators exposing the ``prepare``/``fit(prepared=...)`` protocol
  (GCON), the epsilon-independent preparation -- encoder training plus
  propagation -- is computed once per ``(graph, cell seed, preparation key)``
  and replayed across the epsilon axis, which is where the bulk of a sweep's
  wall-clock goes.

All evaluation-layer imports are deferred to call time to keep the module
import graph acyclic (``figures`` imports this module).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.propagation import get_default_cache, propagation_cache
from repro.runtime.cells import ExperimentResult, SweepCell
from repro.utils.lru import LRUDict

_GRAPH_MEMO = LRUDict(max_entries=8)
_PREP_MEMO = LRUDict(max_entries=8)


def clear_worker_memos() -> None:
    """Drop the per-process graph and preparation memos (used by tests)."""
    _GRAPH_MEMO.clear()
    _PREP_MEMO.clear()


def _load_graph(dataset: str, scale: float, seed: int):
    from repro.graphs.datasets import load_dataset

    return _GRAPH_MEMO.get_or_compute(
        (dataset, scale, seed),
        lambda: load_dataset(dataset, scale=scale, seed=seed))


def _fit_with_preparation(estimator, graph, cell: SweepCell, graph_memo_key: tuple):
    """Fit, reusing the epsilon-independent preparation when the estimator
    supports it (results are bitwise identical either way)."""
    config = getattr(estimator, "config", None)
    preparation_key = getattr(config, "preparation_key", None)
    if hasattr(estimator, "prepare") and callable(preparation_key):
        memo_key = (graph_memo_key, cell.seed, preparation_key())
        prepared = _PREP_MEMO.get_or_compute(
            memo_key, lambda: estimator.prepare(graph, seed=cell.seed))
        estimator.fit(graph, seed=cell.seed, prepared=prepared)
    else:
        estimator.fit(graph, seed=cell.seed)
    return estimator


def score_estimator(estimator, graph, inference_mode: str) -> float:
    """Test-split micro-F1, passing the inference mode when the estimator
    supports it (shared by the worker runners and the registry runner)."""
    from repro.evaluation.metrics import micro_f1

    try:
        predictions = np.asarray(estimator.predict(graph, mode=inference_mode))
    except TypeError:
        predictions = np.asarray(estimator.predict(graph))
    return micro_f1(graph.labels[graph.test_idx], predictions[graph.test_idx])


@dataclass
class FigureCellRunner:
    """Runs one Figure-1-style cell: a registry method at one epsilon.

    ``settings`` is the shared :class:`FigureSettings`; ``delta=None`` uses
    the paper's per-graph ``1/|E|`` convention.
    """

    settings: "FigureSettings"
    inference_mode: str = "private"
    delta: float | None = None

    def __call__(self, cell: SweepCell) -> ExperimentResult:
        from repro.evaluation.figures import build_method_registry

        settings = self.settings
        graph = _load_graph(cell.dataset, settings.scale, settings.seed)
        delta = self.delta if self.delta is not None else 1.0 / max(graph.num_edges, 1)
        registry = build_method_registry(settings)
        factory = registry[cell.method]
        estimator = factory(cell.epsilon, delta, cell.seed)
        with propagation_cache(get_default_cache()):
            _fit_with_preparation(estimator, graph, cell,
                                  (cell.dataset, settings.scale, settings.seed))
            score = score_estimator(estimator, graph, self.inference_mode)
        return ExperimentResult(method=cell.method, dataset=cell.dataset,
                                epsilon=cell.epsilon, repeat=cell.repeat,
                                micro_f1=score)


@dataclass
class GconVariantCellRunner:
    """Runs GCON-configuration sweeps (Figures 2-4): one named variant per
    "method", with the cell's float axis interpreted per ``axis``.

    * ``axis="epsilon"``: the cell's value is the privacy budget (Figure 4,
      one variant per restart probability);
    * ``axis="steps"``: the cell's value is the propagation step ``m1``
      (Figures 2-3) and the budget is pinned to ``fixed_epsilon``.

    ``overrides`` maps the variant label to :class:`GCONConfig` keyword
    overrides applied on top of the settings' defaults.
    """

    settings: "FigureSettings"
    overrides: dict = field(default_factory=dict)
    axis: str = "epsilon"
    fixed_epsilon: float = 4.0
    inference_mode: str = "private"
    delta: float | None = None

    def __call__(self, cell: SweepCell) -> ExperimentResult:
        from repro.core.model import GCON
        from repro.evaluation.figures import default_gcon_config

        settings = self.settings
        graph = _load_graph(cell.dataset, settings.scale, settings.seed)
        delta = self.delta if self.delta is not None else 1.0 / max(graph.num_edges, 1)
        overrides = dict(self.overrides.get(cell.method, {}))
        if self.axis == "steps":
            epsilon = self.fixed_epsilon
            step = math.inf if math.isinf(cell.epsilon) else int(cell.epsilon)
            overrides["propagation_steps"] = (step,)
        else:
            epsilon = cell.epsilon
        config = default_gcon_config(epsilon, delta, settings, **overrides)
        estimator = GCON(config)
        with propagation_cache(get_default_cache()):
            _fit_with_preparation(estimator, graph, cell,
                                  (cell.dataset, settings.scale, settings.seed))
            score = score_estimator(estimator, graph, self.inference_mode)
        return ExperimentResult(method=cell.method, dataset=cell.dataset,
                                epsilon=cell.epsilon, repeat=cell.repeat,
                                micro_f1=score)
