"""Picklable cell runners for the figure/table sweeps.

A cell runner is the unit of work the engine ships to a process pool, so it
must be picklable and cheap to serialise: these dataclasses carry only the
:class:`~repro.evaluation.figures.FigureSettings` plus a few scalars, and
rebuild graphs/method registries inside the worker process.  Per-process
memoisation keeps that rebuild cost amortised:

* graphs are loaded once per ``(dataset, scale, seed)``;
* for estimators exposing the ``prepare``/``fit(prepared=...)`` protocol
  (GCON), the epsilon-independent preparation -- encoder training plus
  propagation -- is computed once per ``(graph, cell seed, preparation key)``
  and replayed across the epsilon axis; when a content-addressed
  :class:`~repro.core.persistence.PreparationStore` is configured (the
  ``preparation_cache`` field or the ``REPRO_PREPARATION_CACHE`` environment
  variable) it also survives on disk across repeats and resumed sweeps.

Both runners additionally implement the engine's *group protocol*
(``run_group``): a whole epsilon axis of GCON cells is solved in one
vectorised :class:`~repro.core.sweep.SweepSolver` pass — shared preparation,
warm-started convex solves, one shared inference feature matrix — instead of
one cold fit per cell.  Groups the fast path cannot take (non-GCON methods,
per-cell configuration differences beyond epsilon, ``fast_sweep=False``)
fall back to the per-cell reference path; results agree with that reference
up to solver tolerance, and bitwise when the fallback runs.

All evaluation-layer imports are deferred to call time to keep the module
import graph acyclic (``figures`` imports this module).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.propagation import get_default_cache, propagation_cache
from repro.runtime.cells import ExperimentResult, SweepCell, epsilon_axis
from repro.utils.lru import LRUDict

_GRAPH_MEMO = LRUDict(max_entries=8)
_PREP_MEMO = LRUDict(max_entries=8)
_DISK_STORES: dict[str, object] = {}


def clear_worker_memos() -> None:
    """Drop the per-process graph and preparation memos (used by tests)."""
    _GRAPH_MEMO.clear()
    _PREP_MEMO.clear()
    _DISK_STORES.clear()


def _load_graph(dataset: str, scale: float, seed: int):
    from repro.graphs.datasets import load_dataset

    return _GRAPH_MEMO.get_or_compute(
        (dataset, scale, seed),
        lambda: load_dataset(dataset, scale=scale, seed=seed))


def preparation_store(path: str | None = None):
    """The per-process :class:`PreparationStore` for ``path`` (or the
    ``REPRO_PREPARATION_CACHE`` environment variable), ``None`` when disabled.

    Stores are memoised per root so their hit/miss counters accumulate across
    the cells a worker executes.
    """
    from repro.core.persistence import PREPARATION_CACHE_ENV, PreparationStore

    if path is not None and path.strip():
        resolved = PreparationStore(path.strip())
    else:
        # The env lookup and its disabled sentinels live in from_env only.
        resolved = PreparationStore.from_env()
    if resolved is None:
        return None
    root = str(resolved.root)
    store = _DISK_STORES.get(root)
    if store is None:
        store = _DISK_STORES.setdefault(root, resolved)
    return store


def _prepared_inputs(estimator, graph, seed: int, graph_memo_key: tuple,
                     preparation_cache: str | None = None):
    """The epsilon-independent preparation for ``estimator`` on ``graph``.

    Looks through the per-process memo first, then the on-disk store (when
    configured), and falls back to a cold ``prepare``; returns ``None`` for
    estimators without the ``prepare`` protocol.
    """
    config = getattr(estimator, "config", None)
    preparation_key = getattr(config, "preparation_key", None)
    if not (hasattr(estimator, "prepare") and callable(preparation_key)):
        return None

    def compute():
        store = preparation_store(preparation_cache)
        if store is not None:
            return store.get_or_prepare(estimator, graph, seed)
        return estimator.prepare(graph, seed=seed)

    memo_key = (graph_memo_key, seed, preparation_key())
    return _PREP_MEMO.get_or_compute(memo_key, compute)


def _fit_with_preparation(estimator, graph, cell: SweepCell, graph_memo_key: tuple,
                          preparation_cache: str | None = None):
    """Fit, reusing the epsilon-independent preparation when the estimator
    supports it (results are bitwise identical either way)."""
    prepared = _prepared_inputs(estimator, graph, cell.seed, graph_memo_key,
                                preparation_cache)
    if prepared is not None:
        estimator.fit(graph, seed=cell.seed, prepared=prepared)
    else:
        estimator.fit(graph, seed=cell.seed)
    return estimator


def score_estimator(estimator, graph, inference_mode: str) -> float:
    """Test-split micro-F1, passing the inference mode when the estimator
    supports it (shared by the worker runners and the registry runner)."""
    from repro.evaluation.metrics import micro_f1

    try:
        predictions = np.asarray(estimator.predict(graph, mode=inference_mode))
    except TypeError:
        predictions = np.asarray(estimator.predict(graph))
    return micro_f1(graph.labels[graph.test_idx], predictions[graph.test_idx])


# --------------------------------------------------------------------------- #
# the epsilon-axis fast path shared by both runners
# --------------------------------------------------------------------------- #
def _config_identity(config) -> dict:
    """A config's fields minus epsilon: equal identities <=> same sweep family."""
    payload = dataclasses.asdict(config)
    payload.pop("epsilon", None)
    payload.pop("normalized_steps", None)
    return payload


def _shared_inference_features(model, graph, inference_mode: str) -> np.ndarray:
    """The matrix ``F`` with ``decision_scores = F @ theta`` for every model of
    an epsilon sweep (same encoder, same propagation — only theta differs).

    Delegates to :meth:`GCON.inference_features`, so ``argmax(F @ theta)`` is
    bitwise identical to per-model prediction.
    """
    return model.inference_features(graph, mode=inference_mode)


def _run_epsilon_sweep_group(cells: list[SweepCell], graph, estimators,
                             inference_mode: str, strategy: str,
                             graph_memo_key: tuple,
                             preparation_cache: str | None) -> list[float] | None:
    """Solve one epsilon axis of GCON cells in a single sweep pass.

    Returns the per-cell micro-F1 scores, or ``None`` when the group is not
    eligible (non-GCON estimators, or configurations that differ in more than
    epsilon) and must take the per-cell reference path.
    """
    from repro.core.model import GCON
    from repro.core.sweep import SweepSolver

    if len(cells) < 2:
        return None
    if not all(isinstance(estimator, GCON) for estimator in estimators):
        return None
    base_config = estimators[0].config
    base_identity = _config_identity(base_config)
    if any(_config_identity(estimator.config) != base_identity
           for estimator in estimators[1:]):
        return None

    epsilons = epsilon_axis(cells)
    seed = cells[0].seed
    prepared = _prepared_inputs(estimators[0], graph, seed, graph_memo_key,
                                preparation_cache)
    solver = SweepSolver(base_config, strategy=strategy)
    solves = solver.solve(graph, epsilons, seed=seed, prepared=prepared)
    for estimator, solve in zip(estimators, solves):
        estimator.adopt_solution(
            theta=solve.theta, perturbation=solve.perturbation,
            solver_result=solve.solver_result, encoder=prepared.encoder,
            num_classes=graph.num_classes, graph=graph,
        )
    from repro.evaluation.metrics import micro_f1

    features = _shared_inference_features(estimators[0], graph, inference_mode)
    test_idx = graph.test_idx
    scores = []
    for estimator in estimators:
        predictions = np.argmax(features @ estimator.theta_, axis=1)
        scores.append(micro_f1(graph.labels[test_idx], predictions[test_idx]))
    return scores


@dataclass
class FigureCellRunner:
    """Runs one Figure-1-style cell: a registry method at one epsilon.

    ``settings`` is the shared :class:`FigureSettings`; ``delta=None`` uses
    the paper's per-graph ``1/|E|`` convention.  ``fast_sweep`` enables the
    epsilon-axis group fast path (``False`` forces the per-cell reference
    path); ``sweep_strategy`` picks the :class:`SweepSolver` mode and
    ``preparation_cache`` points at an on-disk preparation store directory.
    """

    settings: "FigureSettings"
    inference_mode: str = "private"
    delta: float | None = None
    fast_sweep: bool = True
    sweep_strategy: str = "warm_start"
    preparation_cache: str | None = None

    def _graph_and_delta(self, cell: SweepCell):
        settings = self.settings
        graph = _load_graph(cell.dataset, settings.scale, settings.seed)
        delta = self.delta if self.delta is not None else 1.0 / max(graph.num_edges, 1)
        return graph, delta, (cell.dataset, settings.scale, settings.seed)

    def __call__(self, cell: SweepCell) -> ExperimentResult:
        from repro.evaluation.figures import build_method_registry

        graph, delta, memo_key = self._graph_and_delta(cell)
        registry = build_method_registry(self.settings)
        estimator = registry[cell.method](cell.epsilon, delta, cell.seed)
        with propagation_cache(get_default_cache()):
            _fit_with_preparation(estimator, graph, cell, memo_key,
                                  self.preparation_cache)
            score = score_estimator(estimator, graph, self.inference_mode)
        return ExperimentResult(method=cell.method, dataset=cell.dataset,
                                epsilon=cell.epsilon, repeat=cell.repeat,
                                micro_f1=score)

    def wants_group(self, cells: list[SweepCell]) -> bool:
        """Whether this group would actually take the sweep fast path.

        The serial engine asks before dispatching: groups that would only
        fall back cell by cell (non-GCON methods, single cells, disabled
        fast path) run per cell instead, so each finished cell streams to
        the resumable store immediately.
        """
        from repro.core.model import GCON
        from repro.evaluation.figures import build_method_registry

        if not self.fast_sweep or len(cells) < 2:
            return False
        try:
            factory = build_method_registry(self.settings)[cells[0].method]
            probe = factory(cells[0].epsilon,
                            self.delta if self.delta is not None else 1e-6,
                            cells[0].seed)
        except Exception:
            return False
        return isinstance(probe, GCON)

    def run_group(self, cells: list[SweepCell]) -> list[ExperimentResult]:
        """One epsilon axis at a time: sweep-solve eligible GCON groups."""
        from repro.evaluation.figures import build_method_registry

        if not self.fast_sweep or len(cells) < 2:
            return [self(cell) for cell in cells]
        graph, delta, memo_key = self._graph_and_delta(cells[0])
        factory = build_method_registry(self.settings)[cells[0].method]
        estimators = [factory(cell.epsilon, delta, cell.seed) for cell in cells]
        with propagation_cache(get_default_cache()):
            scores = _run_epsilon_sweep_group(
                cells, graph, estimators, self.inference_mode,
                self.sweep_strategy, memo_key, self.preparation_cache)
        if scores is None:
            return [self(cell) for cell in cells]
        return [ExperimentResult(method=cell.method, dataset=cell.dataset,
                                 epsilon=cell.epsilon, repeat=cell.repeat,
                                 micro_f1=score)
                for cell, score in zip(cells, scores)]


@dataclass
class GconVariantCellRunner:
    """Runs GCON-configuration sweeps (Figures 2-4): one named variant per
    "method", with the cell's float axis interpreted per ``axis``.

    * ``axis="epsilon"``: the cell's value is the privacy budget (Figure 4,
      one variant per restart probability);
    * ``axis="steps"``: the cell's value is the propagation step ``m1``
      (Figures 2-3) and the budget is pinned to ``fixed_epsilon``.

    ``overrides`` maps the variant label to :class:`GCONConfig` keyword
    overrides applied on top of the settings' defaults.  Epsilon-axis groups
    take the sweep-solver fast path; step-axis groups vary the preparation
    per cell, so they always run the per-cell reference path.
    """

    settings: "FigureSettings"
    overrides: dict = field(default_factory=dict)
    axis: str = "epsilon"
    fixed_epsilon: float = 4.0
    inference_mode: str = "private"
    delta: float | None = None
    fast_sweep: bool = True
    sweep_strategy: str = "warm_start"
    preparation_cache: str | None = None

    def _build_estimator(self, cell: SweepCell, delta: float):
        from repro.core.model import GCON
        from repro.evaluation.figures import default_gcon_config

        overrides = dict(self.overrides.get(cell.method, {}))
        if self.axis == "steps":
            epsilon = self.fixed_epsilon
            step = math.inf if math.isinf(cell.epsilon) else int(cell.epsilon)
            overrides["propagation_steps"] = (step,)
        else:
            epsilon = cell.epsilon
        return GCON(default_gcon_config(epsilon, delta, self.settings, **overrides))

    def _graph_and_delta(self, cell: SweepCell):
        settings = self.settings
        graph = _load_graph(cell.dataset, settings.scale, settings.seed)
        delta = self.delta if self.delta is not None else 1.0 / max(graph.num_edges, 1)
        return graph, delta, (cell.dataset, settings.scale, settings.seed)

    def __call__(self, cell: SweepCell) -> ExperimentResult:
        graph, delta, memo_key = self._graph_and_delta(cell)
        estimator = self._build_estimator(cell, delta)
        with propagation_cache(get_default_cache()):
            _fit_with_preparation(estimator, graph, cell, memo_key,
                                  self.preparation_cache)
            score = score_estimator(estimator, graph, self.inference_mode)
        return ExperimentResult(method=cell.method, dataset=cell.dataset,
                                epsilon=cell.epsilon, repeat=cell.repeat,
                                micro_f1=score)

    def wants_group(self, cells: list[SweepCell]) -> bool:
        """Epsilon-axis variant groups take the fast path; step-axis groups
        (whose preparation varies per cell) run cell by cell in serial mode
        so each result streams to the store immediately."""
        return self.fast_sweep and self.axis == "epsilon" and len(cells) >= 2

    def run_group(self, cells: list[SweepCell]) -> list[ExperimentResult]:
        """Sweep-solve epsilon-axis variant groups; step-axis groups fall back."""
        if not self.fast_sweep or self.axis != "epsilon" or len(cells) < 2:
            return [self(cell) for cell in cells]
        graph, delta, memo_key = self._graph_and_delta(cells[0])
        estimators = [self._build_estimator(cell, delta) for cell in cells]
        with propagation_cache(get_default_cache()):
            scores = _run_epsilon_sweep_group(
                cells, graph, estimators, self.inference_mode,
                self.sweep_strategy, memo_key, self.preparation_cache)
        if scores is None:
            return [self(cell) for cell in cells]
        return [ExperimentResult(method=cell.method, dataset=cell.dataset,
                                 epsilon=cell.epsilon, repeat=cell.repeat,
                                 micro_f1=score)
                for cell, score in zip(cells, scores)]
