"""Sweep expansion: cells, deterministic per-cell seeds and result records.

A *sweep* is the cross product ``method x dataset x epsilon x repeat`` behind
every figure and table of the paper.  :func:`expand_cells` turns the axes into
a flat list of independent :class:`SweepCell` records, each carrying a
deterministic seed, so the cells can be executed in any order -- serially, by
a process pool, or resumed from a partial run -- and still reproduce the exact
numbers of a serial sweep.

Two seed-derivation modes are supported:

* ``seed_axis="repeat"`` (engine default): the seed depends only on
  ``(master_seed, dataset, method, repeat)`` via a stable hash.  Cells that
  differ only in epsilon share their seed, which is what lets workers reuse
  the epsilon-independent preparation (encoder + propagation) across an
  epsilon sweep.
* ``seed_axis="epsilon"`` (legacy): bit-for-bit the derivation of the original
  serial :class:`~repro.evaluation.runner.ExperimentRunner`, which drew a
  fresh seed per ``(dataset, method, epsilon, repeat)`` from a shared
  generator.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.random import as_rng, spawn_rngs


@dataclass
class ExperimentResult:
    """One (method, dataset, epsilon, repeat) measurement."""

    method: str
    dataset: str
    epsilon: float
    repeat: int
    micro_f1: float
    extra: dict = field(default_factory=dict)


@dataclass(frozen=True)
class SweepCell:
    """One independent unit of sweep work with its deterministic seed.

    ``index`` is the cell's position in the canonical (serial) expansion
    order and fixes the ordering of the result list; ``group`` identifies the
    ``(dataset, method, repeat)`` bucket whose cells share a seed under
    ``seed_axis="repeat"`` -- the engine keeps a group on one worker so the
    per-process preparation cache can actually hit.
    """

    index: int
    method: str
    dataset: str
    epsilon: float
    repeat: int
    seed: int
    group: int

    def key(self) -> tuple:
        return (self.method, self.dataset, float(self.epsilon), self.repeat)


def result_key(result: ExperimentResult) -> tuple:
    """The (method, dataset, epsilon, repeat) identity of a result record."""
    return (result.method, result.dataset, float(result.epsilon), result.repeat)


def epsilon_axis(cells: list[SweepCell]) -> list[float]:
    """The epsilon values of one sweep group, validated, in cell order.

    A group handed to the sweep-solver fast path must be exactly one epsilon
    axis: every cell shares ``(method, dataset, repeat, seed)`` and carries a
    distinct budget.  The engine's grouping guarantees this for cells produced
    by :func:`expand_cells`; hand-built cell lists are validated here so a
    mis-grouped batch fails loudly instead of solving the wrong sweep.
    """
    if not cells:
        raise ConfigurationError("an epsilon axis needs at least one cell")
    first = cells[0]
    for cell in cells[1:]:
        if (cell.method, cell.dataset, cell.repeat, cell.seed) \
                != (first.method, first.dataset, first.repeat, first.seed):
            raise ConfigurationError(
                f"cells of one epsilon axis must share (method, dataset, repeat, seed); "
                f"got {cell.key()} alongside {first.key()}"
            )
    epsilons = [float(cell.epsilon) for cell in cells]
    if len(set(epsilons)) != len(epsilons):
        raise ConfigurationError(f"duplicate epsilon values in sweep group: {epsilons}")
    return epsilons


def _stable_token(text: str) -> int:
    """A process-invariant 63-bit integer derived from ``text``.

    ``hash()`` would vary with ``PYTHONHASHSEED`` across worker processes,
    which would break bitwise reproducibility of ``--jobs N`` runs.
    """
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") >> 1


def derive_cell_seed(master_seed: int, dataset: str, method: str, repeat: int) -> int:
    """Deterministic, epsilon-independent per-cell seed (``seed_axis="repeat"``)."""
    entropy = [master_seed & (2**63 - 1), _stable_token(dataset),
               _stable_token(method), repeat]
    state = np.random.SeedSequence(entropy=entropy).generate_state(1, dtype=np.uint64)[0]
    return int(state % (2**31 - 1))


def expand_cells(methods, datasets, epsilons, repeats: int, seed: int = 0,
                 seed_axis: str = "repeat") -> list[SweepCell]:
    """Expand sweep axes into independent cells in canonical serial order.

    The canonical order is ``dataset -> method -> epsilon -> repeat`` (the
    nested-loop order of the original serial runner); results are always
    reported back in this order regardless of execution schedule.
    """
    methods = list(methods)
    datasets = list(datasets)
    epsilons = [float(e) for e in epsilons]
    if not methods:
        raise ConfigurationError("no methods supplied")
    if not datasets:
        raise ConfigurationError("no datasets supplied")
    if not epsilons:
        raise ConfigurationError("no epsilon values supplied")
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    if seed_axis not in ("repeat", "epsilon"):
        raise ConfigurationError(
            f"seed_axis must be 'repeat' or 'epsilon', got {seed_axis!r}"
        )

    cells: list[SweepCell] = []
    groups: dict[tuple, int] = {}
    index = 0
    master_rng = as_rng(seed) if seed_axis == "epsilon" else None
    for dataset in datasets:
        for method in methods:
            for epsilon in epsilons:
                if seed_axis == "epsilon":
                    repeat_rngs = spawn_rngs(master_rng, repeats)
                    cell_seeds = [int(rng.integers(0, 2**31 - 1)) for rng in repeat_rngs]
                else:
                    cell_seeds = [derive_cell_seed(seed, dataset, method, repeat)
                                  for repeat in range(repeats)]
                for repeat, cell_seed in enumerate(cell_seeds):
                    group_key = (dataset, method, repeat)
                    group = groups.setdefault(group_key, len(groups))
                    cells.append(SweepCell(
                        index=index, method=method, dataset=dataset,
                        epsilon=epsilon, repeat=repeat, seed=cell_seed, group=group,
                    ))
                    index += 1
    return cells
