"""Throttled progress reporting for long-running sweeps.

Writes single-line updates to ``stderr`` (so piped/captured stdout stays
machine-readable) at most every ``min_interval`` seconds, plus a final
summary line with the wall-clock total.  The clock is injectable (any
zero-argument callable returning seconds) so tests can drive the throttle
deterministically instead of sleeping.
"""

from __future__ import annotations

import sys
import time


class ProgressReporter:
    """Reports ``done/total`` cell counts with an ETA estimate."""

    def __init__(self, total: int, stream=None, min_interval: float = 0.5,
                 label: str = "sweep", clock=None):
        self.total = max(int(total), 0)
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self.label = label
        self.clock = clock if clock is not None else time.perf_counter
        self.done = 0
        self._start = self.clock()
        self._last_emit = None

    def update(self, advance: int = 1, note: str = "") -> None:
        """Record ``advance`` finished cells and maybe emit a status line."""
        self.done += advance
        now = self.clock()
        if self._last_emit is not None and now - self._last_emit < self.min_interval \
                and self.done < self.total:
            return
        self._emit(now, note)

    def _emit(self, now: float, note: str) -> None:
        self._last_emit = now
        elapsed = now - self._start
        if self.done and self.total:
            eta = elapsed / self.done * (self.total - self.done)
            eta_text = f", eta {eta:.0f}s"
        else:
            eta_text = ""
        percent = 100.0 * self.done / self.total if self.total else 100.0
        suffix = f" [{note}]" if note else ""
        print(f"{self.label}: {self.done}/{self.total} cells "
              f"({percent:.0f}%, {elapsed:.1f}s{eta_text}){suffix}",
              file=self.stream, flush=True)

    def finish(self) -> float:
        """Emit the final line and return the elapsed wall-clock seconds.

        A sweep that stops short of ``total`` (interrupt, overestimated
        total) first flushes one last update-style line, bypassing the
        throttle — otherwise the closing progress report could silently
        freeze at whatever count last beat ``min_interval``.
        """
        now = self.clock()
        if self.done < self.total:
            self._emit(now, note="")
        elapsed = now - self._start
        print(f"{self.label}: finished {self.done}/{self.total} cells "
              f"in {elapsed:.1f}s", file=self.stream, flush=True)
        return elapsed
