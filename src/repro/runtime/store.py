"""Resumable on-disk result store: one JSON object per line.

The sweep engine appends every finished cell to the store as soon as it
completes, so an interrupted sweep (crash, Ctrl-C, pre-empted worker) can be
resumed by pointing the engine at the same path: already-recorded cells are
skipped.  A partially written trailing line -- the signature of a crash midway
through an append -- is tolerated on load and truncated away before new
results are appended.
"""

from __future__ import annotations

import json
import math
import os
import warnings
from pathlib import Path

from repro.runtime.cells import ExperimentResult, result_key


def _to_json(result: ExperimentResult) -> str:
    payload = {
        "method": result.method,
        "dataset": result.dataset,
        "epsilon": result.epsilon if math.isfinite(result.epsilon) else "inf",
        "repeat": result.repeat,
        "micro_f1": result.micro_f1,
        "extra": result.extra,
    }
    return json.dumps(payload, sort_keys=True)


def _from_json(line: str) -> ExperimentResult:
    payload = json.loads(line)
    epsilon = payload["epsilon"]
    epsilon = math.inf if epsilon == "inf" else float(epsilon)
    return ExperimentResult(
        method=payload["method"],
        dataset=payload["dataset"],
        epsilon=epsilon,
        repeat=int(payload["repeat"]),
        micro_f1=float(payload["micro_f1"]),
        extra=payload.get("extra", {}),
    )


class JsonlResultStore:
    """Append-only JSONL persistence for :class:`ExperimentResult` records."""

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self._handle = None

    # ------------------------------------------------------------------ #
    # loading / resume
    # ------------------------------------------------------------------ #
    def load(self) -> list[ExperimentResult]:
        """Read all intact records, discarding a truncated/corrupt tail.

        If the final line does not parse (interrupted append), a warning is
        emitted, the partial record is dropped and the file is truncated back
        to the last intact record so subsequent appends do not glue onto a
        half-written line — the dropped cell is simply recomputed on resume,
        never double-counted.  A corrupt line in the *middle* of the file
        raises: that is data corruption, not an interrupted run.
        """
        if not self.path.exists():
            return []
        raw = self.path.read_bytes()
        results: list[ExperimentResult] = []
        good_bytes = 0
        lines = raw.split(b"\n")
        for position, line in enumerate(lines):
            if not line.strip():
                good_bytes += len(line) + 1
                continue
            try:
                results.append(_from_json(line.decode("utf-8")))
            except (ValueError, KeyError, UnicodeDecodeError):
                remainder = b"".join(lines[position + 1:]).strip()
                if remainder:
                    raise ValueError(
                        f"corrupt record at line {position + 1} of {self.path}"
                    ) from None
                warnings.warn(
                    f"dropping truncated trailing record at line {position + 1} of "
                    f"{self.path} (interrupted append); the cell will be recomputed",
                    RuntimeWarning,
                    stacklevel=2,
                )
                self._truncate(good_bytes)
                break
            good_bytes += len(line) + 1
        return results

    def completed_keys(self) -> set[tuple]:
        """The (method, dataset, epsilon, repeat) identities already recorded."""
        return {result_key(result) for result in self.load()}

    def _truncate(self, num_bytes: int) -> None:
        self.close()
        with open(self.path, "rb+") as handle:
            handle.truncate(num_bytes)

    # ------------------------------------------------------------------ #
    # appending
    # ------------------------------------------------------------------ #
    def append(self, result: ExperimentResult) -> None:
        """Persist one result immediately (flushed so a crash loses at most one)."""
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._ensure_trailing_newline()
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(_to_json(result) + "\n")
        self._handle.flush()

    def _ensure_trailing_newline(self) -> None:
        """Guard against a crash that persisted a full record but not its
        newline: appending onto such a line would glue two records together."""
        if not self.path.exists():
            return
        with open(self.path, "rb") as handle:
            handle.seek(0, os.SEEK_END)
            if handle.tell() == 0:
                return
            handle.seek(-1, os.SEEK_END)
            last = handle.read(1)
        if last != b"\n":
            with open(self.path, "ab") as handle:
                handle.write(b"\n")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
