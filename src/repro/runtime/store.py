"""Resumable on-disk result store: one JSON object per line.

The sweep engine appends every finished cell to the store as soon as it
completes, so an interrupted sweep (crash, Ctrl-C, pre-empted worker) can be
resumed by pointing the engine at the same path: already-recorded cells are
skipped.  A partially written trailing line -- the signature of a crash midway
through an append -- is tolerated on load and truncated away before new
results are appended.
"""

from __future__ import annotations

import json
import math
import os
import warnings
from dataclasses import dataclass
from pathlib import Path

from repro.runtime.cells import ExperimentResult, result_key
from repro.utils.fs import atomic_write_text


def _to_json(result: ExperimentResult) -> str:
    payload = {
        "method": result.method,
        "dataset": result.dataset,
        "epsilon": result.epsilon if math.isfinite(result.epsilon) else "inf",
        "repeat": result.repeat,
        "micro_f1": result.micro_f1,
        "extra": result.extra,
    }
    return json.dumps(payload, sort_keys=True)


def _from_json(line: str) -> ExperimentResult:
    payload = json.loads(line)
    epsilon = payload["epsilon"]
    epsilon = math.inf if epsilon == "inf" else float(epsilon)
    return ExperimentResult(
        method=payload["method"],
        dataset=payload["dataset"],
        epsilon=epsilon,
        repeat=int(payload["repeat"]),
        micro_f1=float(payload["micro_f1"]),
        extra=payload.get("extra", {}),
    )


class JsonlResultStore:
    """Append-only JSONL persistence for :class:`ExperimentResult` records."""

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self._handle = None
        # Number of corrupt interior lines skipped by the most recent
        # ``load(on_corrupt="skip")``; merge reporting reads it back.
        self.last_skipped_lines = 0

    # ------------------------------------------------------------------ #
    # loading / resume
    # ------------------------------------------------------------------ #
    def load(self, on_corrupt: str = "raise") -> list[ExperimentResult]:
        """Read all intact records, discarding a truncated/corrupt tail.

        If the final line does not parse (interrupted append), a warning is
        emitted, the partial record is dropped and the file is truncated back
        to the last intact record so subsequent appends do not glue onto a
        half-written line — the dropped cell is simply recomputed on resume,
        never double-counted.

        A corrupt line in the *middle* of the file is data corruption, not an
        interrupted run.  With ``on_corrupt="raise"`` (the default) it raises;
        with ``on_corrupt="skip"`` — the shard-merge path, where one bad line
        must not sink the whole merge — it is skipped with a warning and the
        file is left untouched so the evidence survives for inspection.
        """
        if on_corrupt not in ("raise", "skip"):
            raise ValueError(f"on_corrupt must be 'raise' or 'skip', got {on_corrupt!r}")
        self.last_skipped_lines = 0
        if not self.path.exists():
            return []
        raw = self.path.read_bytes()
        results: list[ExperimentResult] = []
        good_bytes = 0
        lines = raw.split(b"\n")
        for position, line in enumerate(lines):
            if not line.strip():
                good_bytes += len(line) + 1
                continue
            try:
                results.append(_from_json(line.decode("utf-8")))
            except (ValueError, KeyError, UnicodeDecodeError):
                remainder = b"".join(lines[position + 1:]).strip()
                if remainder:
                    if on_corrupt == "raise":
                        raise ValueError(
                            f"corrupt record at line {position + 1} of {self.path}"
                        ) from None
                    warnings.warn(
                        f"skipping corrupt record at line {position + 1} of "
                        f"{self.path}",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    self.last_skipped_lines += 1
                    good_bytes += len(line) + 1
                    continue
                warnings.warn(
                    f"dropping truncated trailing record at line {position + 1} of "
                    f"{self.path} (interrupted append); the cell will be recomputed",
                    RuntimeWarning,
                    stacklevel=2,
                )
                self._truncate(good_bytes)
                break
            good_bytes += len(line) + 1
        return results

    def completed_keys(self) -> set[tuple]:
        """The (method, dataset, epsilon, repeat) identities already recorded."""
        return {result_key(result) for result in self.load()}

    def _truncate(self, num_bytes: int) -> None:
        self.close()
        with open(self.path, "rb+") as handle:
            handle.truncate(num_bytes)

    # ------------------------------------------------------------------ #
    # appending
    # ------------------------------------------------------------------ #
    def append(self, result: ExperimentResult) -> None:
        """Persist one result immediately (flushed so a crash loses at most one)."""
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._ensure_trailing_newline()
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(_to_json(result) + "\n")
        self._handle.flush()

    def _ensure_trailing_newline(self) -> None:
        """Guard against a crash that persisted a full record but not its
        newline: appending onto such a line would glue two records together."""
        if not self.path.exists():
            return
        with open(self.path, "rb") as handle:
            handle.seek(0, os.SEEK_END)
            if handle.tell() == 0:
                return
            handle.seek(-1, os.SEEK_END)
            last = handle.read(1)
        if last != b"\n":
            with open(self.path, "ab") as handle:
                handle.write(b"\n")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# --------------------------------------------------------------------------- #
# shard merging
# --------------------------------------------------------------------------- #
@dataclass
class MergeReport:
    """What :func:`merge_stores` did: provenance for logs and assertions."""

    output: Path
    shards: int
    records: int
    duplicates: int
    skipped_lines: int
    empty_shards: tuple = ()

    def summary(self) -> str:
        text = (f"merged {self.records} records from {self.shards} shard(s) "
                f"into {self.output}")
        if self.duplicates:
            text += f" ({self.duplicates} identical duplicate(s) dropped)"
        if self.skipped_lines:
            text += f" ({self.skipped_lines} corrupt line(s) skipped)"
        if self.empty_shards:
            names = ", ".join(Path(path).name for path in self.empty_shards)
            text += (f" (WARNING: {len(self.empty_shards)} empty shard(s) "
                     f"contributed no records: {names})")
        return text


def merge_stores(shard_paths, output_path: str | os.PathLike, *,
                 context_digest: str | None = None,
                 expected_keys=None, tolerant: bool = True) -> MergeReport:
    """Merge shard JSONL stores into one deduplicated result store.

    The distributed sweep writes one shard per cell group; this folds them
    back into a single store equivalent to what a single-process engine run
    would have produced:

    * records appearing in several shards (a re-leased group whose first
      worker still managed to finish) are deduplicated by their
      ``(method, dataset, epsilon, repeat)`` key — the duplicate must be
      *identical* bit for bit, anything else is corruption and raises;
    * ``context_digest`` fingerprint-checks every record's ``sweep_context``
      against the submitting spec, so a shard from a different sweep
      configuration cannot be merged in silently;
    * ``expected_keys`` (canonical cell order) pins completeness — a missing
      or unexpected cell raises — and fixes the output record order;
    * ``tolerant`` loads shards with ``on_corrupt="skip"`` so one corrupt
      interior line costs one record (and a warning), not the whole merge.

    The merged store is written atomically (temp file + rename), so a crashed
    merge never leaves a half-written output behind.
    """
    shard_paths = [Path(path) for path in shard_paths]
    output_path = Path(output_path)
    merged: dict[tuple, ExperimentResult] = {}
    duplicates = 0
    skipped = 0
    empty_shards: list[Path] = []
    for path in shard_paths:
        store = JsonlResultStore(path)
        records = store.load(on_corrupt="skip" if tolerant else "raise")
        skipped += store.last_skipped_lines
        if not records:
            # A published shard with zero records means its worker produced
            # nothing (or the file was emptied after publish).  That must not
            # pass silently: with expected_keys it surfaces as missing cells,
            # but a partial merge would otherwise just under-report.
            empty_shards.append(path)
            warnings.warn(
                f"shard {path} contributed no records to the merge "
                f"(empty or missing shard file)",
                RuntimeWarning,
                stacklevel=2,
            )
        for record in records:
            if context_digest is not None:
                stamped = record.extra.get("sweep_context")
                if stamped != context_digest:
                    raise ValueError(
                        f"shard {path}: record {result_key(record)} carries sweep "
                        f"context {stamped!r}, expected {context_digest!r} — it "
                        f"belongs to a different sweep configuration")
            key = result_key(record)
            existing = merged.get(key)
            if existing is None:
                merged[key] = record
                continue
            duplicates += 1
            if (existing.micro_f1, existing.extra) != (record.micro_f1, record.extra):
                raise ValueError(
                    f"conflicting duplicate record for {key} in {path}: "
                    f"{record.micro_f1!r} != {existing.micro_f1!r}")
    if expected_keys is not None:
        expected = [tuple(key) for key in expected_keys]
        missing = [key for key in expected if key not in merged]
        if missing:
            raise ValueError(
                f"merge is missing {len(missing)} cell(s), first: {missing[0]}")
        unexpected = set(merged) - set(expected)
        if unexpected:
            raise ValueError(
                f"merge contains {len(unexpected)} record(s) outside the sweep, "
                f"first: {sorted(unexpected)[0]}")
        order = expected
    else:
        order = list(merged)

    output_path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(output_path,
                      "".join(_to_json(merged[key]) + "\n" for key in order))
    return MergeReport(output=output_path, shards=len(shard_paths),
                       records=len(order), duplicates=duplicates,
                       skipped_lines=skipped, empty_shards=tuple(empty_shards))


# --------------------------------------------------------------------------- #
# winner selection (the publish path)
# --------------------------------------------------------------------------- #
def best_record(records, *, method: str | None = None, dataset: str | None = None,
                epsilon: float | None = None) -> ExperimentResult:
    """The winning record of a sweep store: highest micro-F1 under the filters.

    This is how a finished sweep becomes a servable model: ``repro publish``
    picks the best ``(method, dataset, epsilon, repeat)`` cell recorded in a
    result store, refits it from its deterministic seed and pushes the
    release into the model registry.  Ties keep the earliest record (the
    store's canonical order), so selection is deterministic.
    """
    records = list(records)
    candidates = [
        record for record in records
        if (method is None or record.method == method)
        and (dataset is None or record.dataset == dataset)
        and (epsilon is None or float(record.epsilon) == float(epsilon))
    ]
    if not candidates:
        filters = {"method": method, "dataset": dataset, "epsilon": epsilon}
        active = {key: value for key, value in filters.items() if value is not None}
        raise ValueError(
            f"no records match {active or 'the store'} "
            f"({len(records)} record(s) searched)")
    return max(candidates, key=lambda record: record.micro_f1)
