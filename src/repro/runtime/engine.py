"""The parallel sweep engine: fan independent cells out over process workers.

:class:`ParallelExperimentRunner` executes the cells produced by
:func:`repro.runtime.cells.expand_cells` with a user-supplied *cell runner* --
any callable ``(SweepCell) -> ExperimentResult``.  With ``jobs=1`` cells run
inline; with ``jobs > 1`` they are dispatched to a ``concurrent.futures``
process pool, in which case the cell runner must be picklable (a module-level
function or a dataclass such as
:class:`repro.runtime.workers.FigureCellRunner`).

Determinism: every cell carries its own seed, so the schedule cannot leak
into the numbers -- a ``--jobs 8`` run is bitwise identical to ``--jobs 1``.
Cells sharing a ``(dataset, method, repeat)`` group (same seed, different
epsilon) are dispatched as one task so they land on one worker and can reuse
that worker's preparation/propagation caches.

Resumability: pass a :class:`~repro.runtime.store.JsonlResultStore`; finished
cells are streamed to disk as they complete and already-recorded cells are
skipped on the next run.
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait

from repro.exceptions import ConfigurationError
from repro.runtime.cells import ExperimentResult, SweepCell, result_key
from repro.runtime.progress import ProgressReporter
from repro.runtime.store import JsonlResultStore


def context_digest(context: dict) -> str:
    """Stable short digest of a sweep's numerical settings (its *context*).

    Stored with every record and required to match on resume or shard merge,
    so results computed under different settings can never silently mix.  The
    single-process engine and the distributed workers must agree on this
    derivation bit for bit — it is the fingerprint that makes their stores
    interchangeable.
    """
    payload = json.dumps(context, sort_keys=True, default=str)
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]


class SweepExecutionError(RuntimeError):
    """A cell runner raised; carries the failing cell for diagnostics."""

    def __init__(self, cell: SweepCell, cause: BaseException):
        super().__init__(
            f"cell (method={cell.method!r}, dataset={cell.dataset!r}, "
            f"epsilon={cell.epsilon:g}, repeat={cell.repeat}) failed: {cause!r}"
        )
        self.cell = cell


def run_cell_group(cell_runner, cells: list[SweepCell]) -> list[ExperimentResult]:
    """Execute one group of cells (in a worker or inline).

    Runners implementing the *group protocol* — a ``run_group(cells)`` method,
    such as the sweep-solver fast paths of
    :class:`repro.runtime.workers.FigureCellRunner` — receive the whole
    epsilon axis at once so they can share one preparation and solve all
    budgets in a single vectorised pass; plain callables run cell by cell.
    Module-level so process pools can pickle it by reference.
    """
    run_group = getattr(cell_runner, "run_group", None)
    if run_group is not None:
        return run_group(cells)
    return [cell_runner(cell) for cell in cells]


# The cell runner is shipped once per worker through the pool initializer
# rather than once per submitted group: a runner carrying large state (e.g.
# ExperimentRunner's in-memory graphs) would otherwise be re-pickled for
# every group.
_WORKER_RUNNER = None


def _initialize_worker(cell_runner) -> None:
    global _WORKER_RUNNER
    _WORKER_RUNNER = cell_runner


def _run_group_in_worker(cells: list[SweepCell]) -> list[ExperimentResult]:
    return run_cell_group(_WORKER_RUNNER, cells)


class ParallelExperimentRunner:
    """Executes sweep cells serially or over a process pool, resumably."""

    def __init__(self, cell_runner, jobs: int = 1,
                 store: JsonlResultStore | None = None,
                 progress: bool | ProgressReporter = False,
                 mp_context=None, resume_context: dict | None = None):
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.cell_runner = cell_runner
        self.jobs = jobs
        self.store = store
        self.progress = progress
        self.mp_context = mp_context
        # A fingerprint of the sweep's numerical settings (scale, seed, epochs,
        # ...).  Stored with every record and required to match on resume, so
        # rerunning against the same --output with different settings recomputes
        # instead of silently returning the old numbers.
        self._context_digest = (
            None if resume_context is None else context_digest(resume_context)
        )

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(self, cells: list[SweepCell]) -> list[ExperimentResult]:
        """Run ``cells`` and return their results in canonical cell order."""
        if not cells:
            return []
        keys = [cell.key() for cell in cells]
        if len(set(keys)) != len(keys):
            raise ConfigurationError("duplicate (method, dataset, epsilon, repeat) cells")

        finished: dict[tuple, ExperimentResult] = {}
        if self.store is not None:
            wanted = set(keys)
            for record in self.store.load():
                if self._context_digest is not None \
                        and record.extra.get("sweep_context") != self._context_digest:
                    continue
                key = result_key(record)
                if key in wanted:
                    finished[key] = record

        pending = [cell for cell in cells if cell.key() not in finished]
        reporter = self._reporter(len(cells), already_done=len(cells) - len(pending))
        if pending:
            groups = self._group(pending)
            if self.jobs == 1 or len(groups) == 1:
                self._run_serial(groups, finished, reporter)
            else:
                self._run_pool(groups, finished, reporter)
        if reporter is not None:
            reporter.finish()
        if self.store is not None:
            self.store.close()
        return [finished[key] for key in keys]

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _reporter(self, total: int, already_done: int) -> ProgressReporter | None:
        if isinstance(self.progress, ProgressReporter):
            reporter = self.progress
        elif self.progress:
            reporter = ProgressReporter(total)
        else:
            return None
        if already_done:
            reporter.update(advance=already_done, note="resumed from store")
        return reporter

    @staticmethod
    def _group(pending: list[SweepCell]) -> list[list[SweepCell]]:
        groups: dict[int, list[SweepCell]] = {}
        for cell in pending:
            groups.setdefault(cell.group, []).append(cell)
        return list(groups.values())

    def _record(self, cells: list[SweepCell], results: list[ExperimentResult],
                finished: dict, reporter: ProgressReporter | None) -> None:
        if len(results) != len(cells):
            raise SweepExecutionError(
                cells[0], ValueError(f"cell runner returned {len(results)} results "
                                     f"for {len(cells)} cells"))
        for cell, record in zip(cells, results):
            if result_key(record) != cell.key():
                raise SweepExecutionError(
                    cell, ValueError(f"cell runner returned mismatched result "
                                     f"{result_key(record)}"))
            finished[cell.key()] = record
            if self.store is not None:
                if self._context_digest is not None:
                    record.extra["sweep_context"] = self._context_digest
                self.store.append(record)
        if reporter is not None and cells:
            last = cells[-1]
            reporter.update(advance=len(cells),
                            note=f"{last.method}/{last.dataset}")

    def _group_dispatch(self, cells: list[SweepCell]) -> bool:
        """Whether a group goes to the runner's ``run_group`` whole.

        A sweep-solved group inherently completes all at once, but a group the
        runner would only fall back on cell by cell (``wants_group`` returns
        False) is better run per cell in serial mode: each finished cell then
        streams to the store immediately, preserving crash-resume granularity.
        """
        if getattr(self.cell_runner, "run_group", None) is None:
            return False
        wants_group = getattr(self.cell_runner, "wants_group", None)
        return True if wants_group is None else bool(wants_group(cells))

    def _run_serial(self, groups, finished, reporter) -> None:
        for group_cells in groups:
            if self._group_dispatch(group_cells):
                try:
                    records = run_cell_group(self.cell_runner, group_cells)
                except Exception as error:
                    raise SweepExecutionError(group_cells[0], error) from error
                self._record(group_cells, records, finished, reporter)
                continue
            for cell in group_cells:
                try:
                    record = self.cell_runner(cell)
                except Exception as error:
                    raise SweepExecutionError(cell, error) from error
                self._record([cell], [record], finished, reporter)

    def _run_pool(self, groups, finished, reporter) -> None:
        max_workers = min(self.jobs, len(groups))
        with ProcessPoolExecutor(max_workers=max_workers,
                                 mp_context=self.mp_context,
                                 initializer=_initialize_worker,
                                 initargs=(self.cell_runner,)) as pool:
            futures = {
                pool.submit(_run_group_in_worker, group_cells): group_cells
                for group_cells in groups
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_EXCEPTION)
                # Record every group that finished in this batch before
                # surfacing a failure: the store must keep completed work so a
                # resume after the crash does not recompute it.
                failures = []
                for future in done:
                    group_cells = futures[future]
                    error = future.exception()
                    if error is not None:
                        failures.append((group_cells, error))
                        continue
                    self._record(group_cells, future.result(), finished, reporter)
                if failures:
                    for other in remaining:
                        other.cancel()
                    group_cells, error = failures[0]
                    raise SweepExecutionError(group_cells[0], error) from error
