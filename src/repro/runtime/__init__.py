"""Parallel experiment runtime: sweep expansion, execution and persistence.

The substrate behind ``repro sweep`` and the figure benchmarks:

* :mod:`repro.runtime.cells`    -- sweep expansion with deterministic seeds;
* :mod:`repro.runtime.engine`   -- serial / process-pool execution;
* :mod:`repro.runtime.store`    -- resumable JSONL result persistence;
* :mod:`repro.runtime.progress` -- throttled progress reporting;
* :mod:`repro.runtime.workers`  -- picklable cell runners for the paper's
  sweeps (imported lazily by consumers; not re-exported here to keep the
  import graph acyclic with :mod:`repro.evaluation`).
"""

from repro.runtime.cells import (
    ExperimentResult,
    SweepCell,
    derive_cell_seed,
    epsilon_axis,
    expand_cells,
    result_key,
)
from repro.runtime.engine import (
    ParallelExperimentRunner,
    SweepExecutionError,
    context_digest,
    run_cell_group,
)
from repro.runtime.progress import ProgressReporter
from repro.runtime.store import JsonlResultStore, MergeReport, best_record, merge_stores

__all__ = [
    "best_record",
    "ExperimentResult",
    "SweepCell",
    "derive_cell_seed",
    "epsilon_axis",
    "expand_cells",
    "result_key",
    "ParallelExperimentRunner",
    "SweepExecutionError",
    "context_digest",
    "run_cell_group",
    "ProgressReporter",
    "JsonlResultStore",
    "MergeReport",
    "merge_stores",
]
