"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`ReproError` so that callers can
catch everything coming from this package with a single ``except`` clause
while still being able to distinguish configuration problems from privacy
accounting problems.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError, ValueError):
    """An invalid hyperparameter or configuration value was supplied."""


class PrivacyBudgetError(ReproError, ValueError):
    """A privacy budget is invalid or has been exhausted."""


class NotFittedError(ReproError, RuntimeError):
    """A model method requiring a fitted model was called before ``fit``."""


class GraphDataError(ReproError, ValueError):
    """A graph dataset is malformed (shape mismatch, bad labels, ...)."""


class OptimizationError(ReproError, RuntimeError):
    """The convex solver failed to produce a usable minimiser."""
