"""Non-private Simple Graph Convolution (SGC) baseline (Wu et al., ICML 2019).

SGC removes the nonlinearities of a multi-layer GCN so the whole model
collapses to ``Ŷ = Ã^m X Θ`` (Eq. 3 of the paper).  GCON's convex core is an
SGC with PPR/APPR propagation; this non-private SGC isolates how much of
GCON's utility comes from the simplified architecture itself, independent of
any privacy machinery — the ablation that Section IV-B of the paper argues
costs little accuracy.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.baselines.base import BaseNodeClassifier, predict_logits, train_full_batch
from repro.exceptions import ConfigurationError
from repro.graphs.adjacency import symmetric_normalize
from repro.graphs.graph import GraphDataset
from repro.nn import Linear, Sequential
from repro.utils.random import as_rng


class SGCClassifier(BaseNodeClassifier):
    """Logistic regression on ``Ã^m X`` (the SGC model of Eq. 3)."""

    name = "SGC"

    def __init__(self, hops: int = 2, epochs: int = 200, learning_rate: float = 0.1,
                 weight_decay: float = 1e-5):
        if hops < 0:
            raise ConfigurationError(f"hops must be >= 0, got {hops}")
        self.hops = hops
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        self.model_ = None
        self.history_: list[float] = []
        self._train_graph: GraphDataset | None = None

    def _aggregate(self, graph: GraphDataset) -> np.ndarray:
        """Pre-compute ``Ã^m X`` with the symmetric Kipf-Welling normalisation."""
        transition = symmetric_normalize(graph.adjacency, add_loops=True)
        aggregated = np.asarray(graph.features, dtype=np.float64)
        for _ in range(self.hops):
            aggregated = transition @ aggregated
        return np.asarray(aggregated)

    def fit(self, graph: GraphDataset, seed=None) -> "SGCClassifier":
        rng = as_rng(seed)
        aggregated = self._aggregate(graph)
        self.model_ = Sequential(Linear(graph.num_features, graph.num_classes, rng=rng))
        self.history_ = train_full_batch(
            self.model_, aggregated, graph.labels, graph.train_idx,
            epochs=self.epochs, learning_rate=self.learning_rate,
            weight_decay=self.weight_decay,
        )
        self._train_graph = graph
        return self

    def decision_scores(self, graph: GraphDataset | None = None) -> np.ndarray:
        model = self._require_fitted("model_")
        graph = self._train_graph if graph is None else graph
        return predict_logits(model, self._aggregate(graph))


class APPNPClassifier(BaseNodeClassifier):
    """Non-private APPNP (predict-then-propagate, Klicpera et al., ICLR 2019).

    An MLP predicts per-node logits from features alone; the logits are then
    smoothed with the approximate personalised-PageRank operator
    ``R_m = (1-α) Ã R_{m-1} + α I`` (Eq. 4).  This is the non-private
    ancestor of GCON's propagation scheme.
    """

    name = "APPNP"

    def __init__(self, hidden_dim: int = 64, hops: int = 10, alpha: float = 0.1,
                 epochs: int = 200, learning_rate: float = 0.01,
                 weight_decay: float = 1e-5, dropout: float = 0.3):
        if hops < 0:
            raise ConfigurationError(f"hops must be >= 0, got {hops}")
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self.hidden_dim = hidden_dim
        self.hops = hops
        self.alpha = alpha
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        self.dropout = dropout
        self.model_ = None
        self.history_: list[float] = []
        self._train_graph: GraphDataset | None = None

    def _build_model(self, in_dim: int, out_dim: int, rng) -> Sequential:
        from repro.nn import Dropout, ReLU

        return Sequential(
            Linear(in_dim, self.hidden_dim, rng=rng),
            ReLU(),
            Dropout(self.dropout, rng=rng),
            Linear(self.hidden_dim, out_dim, rng=rng),
        )

    def _propagate(self, logits, transition: sp.csr_matrix):
        """APPNP power iteration on a :class:`Tensor` of logits."""
        propagated = logits
        for _ in range(self.hops):
            propagated = propagated.matmul_sparse(transition) * (1.0 - self.alpha) \
                + logits * self.alpha
        return propagated

    def fit(self, graph: GraphDataset, seed=None) -> "APPNPClassifier":
        rng = as_rng(seed)
        transition = symmetric_normalize(graph.adjacency, add_loops=True)
        self.model_ = self._build_model(graph.num_features, graph.num_classes, rng)

        def forward(model, inputs):
            return self._propagate(model(inputs), transition)

        self.history_ = train_full_batch(
            self.model_, graph.features, graph.labels, graph.train_idx,
            epochs=self.epochs, learning_rate=self.learning_rate,
            weight_decay=self.weight_decay, forward=forward,
        )
        self._train_graph = graph
        return self

    def decision_scores(self, graph: GraphDataset | None = None) -> np.ndarray:
        model = self._require_fitted("model_")
        graph = self._train_graph if graph is None else graph
        transition = symmetric_normalize(graph.adjacency, add_loops=True)

        def forward(mdl, inputs):
            return self._propagate(mdl(inputs), transition)

        return predict_logits(model, graph.features, forward=forward)
