"""Non-private two-layer GCN (Kipf & Welling, 2017).

This is the utility upper bound of Figure 1 ("GCN (non-DP)"): it uses the raw
adjacency matrix with no privacy protection.  The same network is reused by
the DPGCN baseline, which trains it on a perturbed adjacency matrix instead.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.baselines.base import BaseNodeClassifier, train_full_batch
from repro.graphs.adjacency import symmetric_normalize
from repro.graphs.graph import GraphDataset
from repro.nn import Dropout, Linear, ReLU, Tensor
from repro.nn.module import Module
from repro.utils.random import as_rng


class TwoLayerGCN(Module):
    """logits = Â ReLU(Â X W1) W2 with the symmetric normalisation Â."""

    def __init__(self, in_dim: int, hidden_dim: int, out_dim: int, dropout: float, rng):
        super().__init__()
        self.layer1 = Linear(in_dim, hidden_dim, rng=rng)
        self.layer2 = Linear(hidden_dim, out_dim, rng=rng)
        self.activation = ReLU()
        self.dropout = Dropout(dropout, rng=rng)
        self.propagation: sp.csr_matrix | None = None

    def set_propagation(self, matrix: sp.csr_matrix) -> None:
        self.propagation = matrix

    def forward(self, x: Tensor) -> Tensor:
        if self.propagation is None:
            raise RuntimeError("set_propagation must be called before the forward pass")
        hidden = self.layer1(x).matmul_sparse(self.propagation).relu()
        hidden = self.dropout(hidden)
        return self.layer2(hidden).matmul_sparse(self.propagation)


class GCNClassifier(BaseNodeClassifier):
    """Non-private GCN baseline (the target performance for all DP methods)."""

    name = "GCN (non-DP)"

    def __init__(self, hidden_dim: int = 32, epochs: int = 200, learning_rate: float = 0.01,
                 weight_decay: float = 5e-4, dropout: float = 0.3):
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        self.dropout = dropout
        self.model_: TwoLayerGCN | None = None
        self.history_: list[float] = []
        self._train_graph: GraphDataset | None = None

    def fit(self, graph: GraphDataset, seed=None) -> "GCNClassifier":
        rng = as_rng(seed)
        model = TwoLayerGCN(graph.num_features, self.hidden_dim, graph.num_classes,
                            self.dropout, rng)
        model.set_propagation(symmetric_normalize(graph.adjacency))
        self.history_ = train_full_batch(
            model, graph.features, graph.labels, graph.train_idx,
            epochs=self.epochs, learning_rate=self.learning_rate,
            weight_decay=self.weight_decay,
        )
        self.model_ = model
        self._train_graph = graph
        return self

    def decision_scores(self, graph: GraphDataset | None = None) -> np.ndarray:
        model = self._require_fitted("model_")
        graph = self._train_graph if graph is None else graph
        model.set_propagation(symmetric_normalize(graph.adjacency))
        model.eval()
        return model(Tensor(graph.features)).data.copy()
