"""The seven competitor methods evaluated in the paper's Figure 1.

* :class:`MLPClassifier` -- graph-free MLP (satisfies edge DP trivially).
* :class:`GCNClassifier` -- non-private two-layer GCN (the utility upper bound).
* :class:`DPGCN` -- LapGraph-style adjacency perturbation (Wu et al., 2022).
* :class:`LPGNet` -- link-private GNN via noisy cluster-degree vectors
  (Kolluri et al., 2022).
* :class:`GAP` -- aggregation perturbation with per-hop Gaussian noise
  (Sajadmanesh et al., 2023), edge-level variant.
* :class:`ProGAP` -- progressive aggregation perturbation (Sajadmanesh &
  Gatica-Perez, 2024), edge-level variant.
* :class:`DPSGDGCN` -- DP-SGD applied to a one-hop simplified GCN with the
  edge-aware sensitivity discussed in the paper's introduction.
"""

from repro.baselines.base import BaseNodeClassifier
from repro.baselines.mlp import MLPClassifier
from repro.baselines.gcn import GCNClassifier
from repro.baselines.dpgcn import DPGCN
from repro.baselines.lpgnet import LPGNet
from repro.baselines.gap import GAP
from repro.baselines.progap import ProGAP
from repro.baselines.dpsgd import DPSGDGCN
from repro.baselines.sgc import SGCClassifier, APPNPClassifier
from repro.baselines.trivial import MajorityClassClassifier, StratifiedRandomClassifier

__all__ = [
    "BaseNodeClassifier",
    "MLPClassifier",
    "GCNClassifier",
    "DPGCN",
    "LPGNet",
    "GAP",
    "ProGAP",
    "DPSGDGCN",
    "SGCClassifier",
    "APPNPClassifier",
    "MajorityClassClassifier",
    "StratifiedRandomClassifier",
]
