"""Trivial reference classifiers: majority class and stratified random guessing.

Both ignore features and edges entirely, so they satisfy edge DP (and node
DP) for free.  They serve as the utility floor in the experiment harness: any
DP-GNN whose accuracy falls to these floors has had its signal destroyed by
the privacy noise.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseNodeClassifier
from repro.exceptions import NotFittedError
from repro.graphs.graph import GraphDataset
from repro.utils.math import one_hot
from repro.utils.random import as_rng


class MajorityClassClassifier(BaseNodeClassifier):
    """Predicts the most frequent class of the training split for every node."""

    name = "Majority"

    def __init__(self):
        self.majority_class_: int | None = None
        self.class_counts_: np.ndarray | None = None
        self._train_graph: GraphDataset | None = None

    def fit(self, graph: GraphDataset, seed=None) -> "MajorityClassClassifier":
        if graph.train_idx.size == 0:
            raise NotFittedError("the training split is empty")
        counts = np.bincount(graph.labels[graph.train_idx], minlength=graph.num_classes)
        self.class_counts_ = counts
        self.majority_class_ = int(np.argmax(counts))
        self._train_graph = graph
        return self

    def decision_scores(self, graph: GraphDataset | None = None) -> np.ndarray:
        majority = self._require_fitted("majority_class_")
        graph = self._train_graph if graph is None else graph
        scores = np.zeros((graph.num_nodes, graph.num_classes))
        scores[:, majority] = 1.0
        return scores


class StratifiedRandomClassifier(BaseNodeClassifier):
    """Samples labels from the training-split class distribution."""

    name = "Random"

    def __init__(self, seed: int | None = 0):
        self.seed = seed
        self.class_probabilities_: np.ndarray | None = None
        self._train_graph: GraphDataset | None = None

    def fit(self, graph: GraphDataset, seed=None) -> "StratifiedRandomClassifier":
        if graph.train_idx.size == 0:
            raise NotFittedError("the training split is empty")
        counts = np.bincount(graph.labels[graph.train_idx],
                             minlength=graph.num_classes).astype(np.float64)
        self.class_probabilities_ = counts / counts.sum()
        if seed is not None:
            self.seed = seed
        self._train_graph = graph
        return self

    def decision_scores(self, graph: GraphDataset | None = None) -> np.ndarray:
        probabilities = self._require_fitted("class_probabilities_")
        graph = self._train_graph if graph is None else graph
        rng = as_rng(self.seed)
        sampled = rng.choice(probabilities.size, size=graph.num_nodes, p=probabilities)
        return one_hot(sampled, probabilities.size)
