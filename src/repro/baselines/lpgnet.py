"""LPGNet baseline (Kolluri et al., CCS 2022): link-private graph networks.

LPGNet never feeds the adjacency matrix to the network.  Instead it trains a
stack of MLPs; after each stage it derives, for every node, a vector of
degree counts towards the classes predicted by the previous stage
("cluster-degree vectors"), perturbs those vectors with the Laplace mechanism
(adding/removing one edge changes two entries by one each, so the L1
sensitivity is 2) and appends them to the input of the next MLP.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.baselines.base import BaseNodeClassifier, predict_logits, resolve_delta, \
    train_full_batch
from repro.exceptions import ConfigurationError
from repro.graphs.graph import GraphDataset
from repro.nn import Dropout, Linear, ReLU, Sequential
from repro.privacy.accountant import BudgetLedger
from repro.privacy.mechanisms import laplace_mechanism
from repro.utils.random import as_rng, spawn_rngs


def cluster_degree_vectors(adjacency: sp.spmatrix, predicted_labels: np.ndarray,
                           num_classes: int) -> np.ndarray:
    """For each node, the number of neighbours predicted in each class."""
    adjacency = sp.csr_matrix(adjacency)
    predicted_labels = np.asarray(predicted_labels, dtype=np.int64)
    n = adjacency.shape[0]
    membership = np.zeros((n, num_classes), dtype=np.float64)
    membership[np.arange(n), predicted_labels] = 1.0
    return np.asarray(adjacency @ membership)


def _row_normalize(matrix: np.ndarray) -> np.ndarray:
    sums = matrix.sum(axis=1, keepdims=True)
    return matrix / np.where(sums > 0, sums, 1.0)


class LPGNet(BaseNodeClassifier):
    """Stacked MLPs over features plus Laplace-noised cluster-degree vectors."""

    name = "LPGNet"

    def __init__(self, epsilon: float = 1.0, delta: float | None = None, stages: int = 2,
                 hidden_dim: int = 64, epochs: int = 200, learning_rate: float = 0.01,
                 weight_decay: float = 1e-5, dropout: float = 0.3):
        if epsilon <= 0:
            raise ConfigurationError(f"epsilon must be > 0, got {epsilon}")
        if stages < 1:
            raise ConfigurationError(f"stages must be >= 1, got {stages}")
        self.epsilon = epsilon
        self.delta = delta
        self.stages = stages
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        self.dropout = dropout
        self.models_: list[Sequential] | None = None
        self.ledger_: BudgetLedger | None = None
        self._noisy_vectors: list[np.ndarray] = []
        self._train_graph: GraphDataset | None = None

    # ------------------------------------------------------------------ #
    def fit(self, graph: GraphDataset, seed=None) -> "LPGNet":
        rng = as_rng(seed)
        stage_rngs = spawn_rngs(rng, self.stages + 1)
        delta = resolve_delta(graph, self.delta)
        ledger = BudgetLedger(total_epsilon=self.epsilon, total_delta=delta)
        per_stage_epsilon = self.epsilon / max(self.stages - 1, 1)

        num_classes = graph.num_classes
        models: list[Sequential] = []
        noisy_vectors: list[np.ndarray] = []

        # Stage 0: a plain MLP on the raw features (uses no edges).
        current_input = graph.features
        model = self._build_mlp(current_input.shape[1], num_classes, stage_rngs[0])
        train_full_batch(model, current_input, graph.labels, graph.train_idx,
                         epochs=self.epochs, learning_rate=self.learning_rate,
                         weight_decay=self.weight_decay)
        models.append(model)
        predictions = np.argmax(predict_logits(model, current_input), axis=1)

        # Later stages: append Laplace-noised cluster-degree vectors.
        for stage in range(1, self.stages):
            degree_vectors = cluster_degree_vectors(graph.adjacency, predictions, num_classes)
            noisy = laplace_mechanism(degree_vectors, sensitivity=2.0,
                                      epsilon=per_stage_epsilon, rng=stage_rngs[stage])
            ledger.spend(per_stage_epsilon, 0.0, label=f"cluster degrees stage {stage}")
            noisy = _row_normalize(np.clip(noisy, 0.0, None))
            noisy_vectors.append(noisy)
            current_input = np.concatenate([graph.features] + noisy_vectors, axis=1)
            model = self._build_mlp(current_input.shape[1], num_classes, stage_rngs[stage])
            train_full_batch(model, current_input, graph.labels, graph.train_idx,
                             epochs=self.epochs, learning_rate=self.learning_rate,
                             weight_decay=self.weight_decay)
            models.append(model)
            predictions = np.argmax(predict_logits(model, current_input), axis=1)

        self.models_ = models
        self.ledger_ = ledger
        self._noisy_vectors = noisy_vectors
        self._train_graph = graph
        return self

    def _build_mlp(self, in_dim: int, out_dim: int, rng) -> Sequential:
        return Sequential(
            Linear(in_dim, self.hidden_dim, rng=rng),
            ReLU(),
            Dropout(self.dropout, rng=rng),
            Linear(self.hidden_dim, out_dim, rng=rng),
        )

    # ------------------------------------------------------------------ #
    def decision_scores(self, graph: GraphDataset | None = None) -> np.ndarray:
        models = self._require_fitted("models_")
        graph_used = self._train_graph if graph is None else graph
        if graph is None or graph is self._train_graph:
            if len(models) == 1:
                return predict_logits(models[0], graph_used.features)
            inputs = np.concatenate([graph_used.features] + self._noisy_vectors, axis=1)
            return predict_logits(models[-1], inputs)
        # Unseen graph: fall back to the edge-free first stage (no extra budget).
        return predict_logits(models[0], graph_used.features)
