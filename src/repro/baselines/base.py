"""Shared estimator interface and training helpers for the baseline methods."""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError
from repro.graphs.graph import GraphDataset
from repro.nn import Adam, Tensor, softmax_cross_entropy
from repro.nn.module import Module
from repro.utils.random import as_rng


class BaseNodeClassifier:
    """Minimal estimator interface shared by GCON and every baseline.

    Sub-classes implement :meth:`fit` (storing whatever state they need) and
    :meth:`decision_scores`; ``predict`` / ``score`` are derived.  The
    optional ``mode`` argument of ``predict`` is accepted for interface
    compatibility with GCON (baselines ignore it).
    """

    name = "base"

    def fit(self, graph: GraphDataset, seed=None) -> "BaseNodeClassifier":
        raise NotImplementedError

    def decision_scores(self, graph: GraphDataset | None = None) -> np.ndarray:
        raise NotImplementedError

    def predict(self, graph: GraphDataset | None = None, mode: str | None = None) -> np.ndarray:
        """Predicted labels for every node (``mode`` is ignored by baselines)."""
        return np.argmax(self.decision_scores(graph), axis=1)

    def score(self, graph: GraphDataset, idx: np.ndarray | None = None) -> float:
        """Micro-F1 on ``idx`` (default: the graph's test split)."""
        from repro.evaluation.metrics import micro_f1

        idx = graph.test_idx if idx is None else np.asarray(idx, dtype=np.int64)
        predictions = self.predict(graph)
        return micro_f1(graph.labels[idx], predictions[idx])

    def _require_fitted(self, attribute: str):
        value = getattr(self, attribute, None)
        if value is None:
            raise NotFittedError(f"{type(self).__name__}.fit must be called first")
        return value


def train_full_batch(model: Module, inputs: np.ndarray | Tensor, labels: np.ndarray,
                     train_idx: np.ndarray, *, epochs: int, learning_rate: float,
                     weight_decay: float = 0.0,
                     forward=None) -> list[float]:
    """Train ``model`` full-batch with Adam and softmax cross-entropy.

    ``forward`` customises how logits are produced from the model and inputs
    (e.g. to interleave sparse propagation); by default ``model(inputs)``.
    Returns the per-epoch loss history.
    """
    train_idx = np.asarray(train_idx, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    if not isinstance(inputs, Tensor):
        inputs = Tensor(np.asarray(inputs, dtype=np.float64))
    optimizer = Adam(model.parameters(), lr=learning_rate, weight_decay=weight_decay)
    history: list[float] = []
    model.train()
    for _ in range(epochs):
        optimizer.zero_grad()
        logits = model(inputs) if forward is None else forward(model, inputs)
        loss = softmax_cross_entropy(logits[train_idx], labels[train_idx])
        loss.backward()
        optimizer.step()
        history.append(float(loss.data))
    model.eval()
    return history


def predict_logits(model: Module, inputs: np.ndarray | Tensor, forward=None) -> np.ndarray:
    """Evaluate ``model`` in eval mode and return raw logits as a numpy array."""
    if not isinstance(inputs, Tensor):
        inputs = Tensor(np.asarray(inputs, dtype=np.float64))
    model.eval()
    logits = model(inputs) if forward is None else forward(model, inputs)
    return logits.data.copy()


def resolve_delta(graph: GraphDataset, delta: float | None) -> float:
    """The paper's default ``delta = 1 / |E|`` unless an explicit delta is given."""
    if delta is not None:
        return delta
    return 1.0 / max(graph.num_edges, 1)


def seeded_rng(seed):
    """Alias of :func:`repro.utils.random.as_rng` kept for readability in baselines."""
    return as_rng(seed)
