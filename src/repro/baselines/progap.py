"""ProGAP baseline (Sajadmanesh & Gatica-Perez, WSDM 2024), edge-level variant.

ProGAP extends GAP with a *progressive* architecture: training proceeds in
stages, each stage aggregating the (normalised) output of the previous
stage's MLP with one noisy aggregation round and feeding the concatenation of
everything seen so far into a new MLP head.  Later stages therefore see
increasingly deep, but increasingly noisy, neighbourhood information.  The
per-stage Gaussian noise is calibrated so that the RDP composition over all
stages fits the (epsilon, delta) budget.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.baselines.base import BaseNodeClassifier, predict_logits, resolve_delta, \
    train_full_batch
from repro.baselines.gap import EDGE_AGGREGATION_SENSITIVITY, calibrate_hop_sigma
from repro.exceptions import ConfigurationError
from repro.graphs.graph import GraphDataset
from repro.nn import Dropout, Linear, ReLU, Sequential
from repro.privacy.accountant import RdpAccountant
from repro.utils.math import row_normalize_l2
from repro.utils.random import as_rng, spawn_rngs


class ProGAP(BaseNodeClassifier):
    """Progressive aggregation-perturbation GNN with edge-level DP."""

    name = "ProGAP"

    def __init__(self, epsilon: float = 1.0, delta: float | None = None, stages: int = 3,
                 encoder_dim: int = 16, hidden_dim: int = 64, epochs: int = 150,
                 learning_rate: float = 0.01, weight_decay: float = 1e-5,
                 dropout: float = 0.3):
        if epsilon <= 0:
            raise ConfigurationError(f"epsilon must be > 0, got {epsilon}")
        if stages < 2:
            raise ConfigurationError(f"stages must be >= 2, got {stages}")
        self.epsilon = epsilon
        self.delta = delta
        self.stages = stages
        self.encoder_dim = encoder_dim
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        self.dropout = dropout
        self.heads_: list[Sequential] | None = None
        self.bodies_: list[Sequential] | None = None
        self.accountant_: RdpAccountant | None = None
        self.sigma_: float | None = None
        self._cached_inputs: np.ndarray | None = None
        self._train_graph: GraphDataset | None = None

    def _build_body(self, in_dim: int, rng) -> Sequential:
        return Sequential(
            Linear(in_dim, self.hidden_dim, rng=rng),
            ReLU(),
            Dropout(self.dropout, rng=rng),
            Linear(self.hidden_dim, self.encoder_dim, rng=rng),
            ReLU(),
        )

    # ------------------------------------------------------------------ #
    def fit(self, graph: GraphDataset, seed=None) -> "ProGAP":
        rng = as_rng(seed)
        stage_rngs = spawn_rngs(rng, self.stages)
        noise_rng = as_rng(rng)
        delta = resolve_delta(graph, self.delta)
        # Stage 0 uses no edges; the remaining stages each spend one noisy
        # aggregation, so stages - 1 Gaussian invocations are composed.
        noisy_rounds = self.stages - 1
        sigma = calibrate_hop_sigma(self.epsilon, delta, noisy_rounds)
        accountant = RdpAccountant()
        adjacency = sp.csr_matrix(graph.adjacency)

        bodies: list[Sequential] = []
        heads: list[Sequential] = []
        history_blocks: list[np.ndarray] = []
        stage_input = graph.features

        for stage in range(self.stages):
            body = self._build_body(stage_input.shape[1], stage_rngs[stage])
            head = Sequential(body, Linear(self.encoder_dim, graph.num_classes,
                                           rng=stage_rngs[stage]))
            train_full_batch(head, stage_input, graph.labels, graph.train_idx,
                             epochs=self.epochs, learning_rate=self.learning_rate,
                             weight_decay=self.weight_decay)
            bodies.append(body)
            heads.append(head)
            embedding = row_normalize_l2(predict_logits(body, stage_input))
            history_blocks.append(embedding)
            if stage == self.stages - 1:
                break
            summed = np.asarray(adjacency @ embedding)
            noisy = summed + noise_rng.normal(0.0, sigma, size=summed.shape)
            accountant.add_gaussian(sigma, sensitivity=EDGE_AGGREGATION_SENSITIVITY)
            aggregated = row_normalize_l2(noisy)
            stage_input = np.concatenate(history_blocks + [aggregated], axis=1)

        self.bodies_ = bodies
        self.heads_ = heads
        self.accountant_ = accountant
        self.sigma_ = sigma
        self._cached_inputs = stage_input
        self._train_graph = graph
        return self

    # ------------------------------------------------------------------ #
    def decision_scores(self, graph: GraphDataset | None = None) -> np.ndarray:
        heads = self._require_fitted("heads_")
        if graph is None or graph is self._train_graph:
            return predict_logits(heads[-1], self._cached_inputs)
        # Unseen public graph: replay the progressive pipeline without noise.
        bodies = self._require_fitted("bodies_")
        adjacency = sp.csr_matrix(graph.adjacency)
        history_blocks: list[np.ndarray] = []
        stage_input = graph.features
        for stage, body in enumerate(bodies):
            embedding = row_normalize_l2(predict_logits(body, stage_input))
            history_blocks.append(embedding)
            if stage == len(bodies) - 1:
                break
            aggregated = row_normalize_l2(np.asarray(adjacency @ embedding))
            stage_input = np.concatenate(history_blocks + [aggregated], axis=1)
        return predict_logits(heads[-1], stage_input)

    @property
    def privacy_spent(self) -> tuple[float, float]:
        """(epsilon, delta) actually accounted for the aggregation noise."""
        accountant = self._require_fitted("accountant_")
        delta = resolve_delta(self._train_graph, self.delta)
        return accountant.get_epsilon(delta), delta
