"""Graph-free MLP baseline.

An MLP never touches the edge set, so it satisfies edge-level DP for every
privacy budget (including epsilon = 0); in the paper's Figure 1 it is the
flat horizontal reference line that strong DP-GNN methods should beat on
homophilous graphs.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseNodeClassifier, predict_logits, train_full_batch
from repro.graphs.graph import GraphDataset
from repro.nn import Dropout, Linear, ReLU, Sequential
from repro.utils.random import as_rng


class MLPClassifier(BaseNodeClassifier):
    """Two-layer MLP trained on node features only."""

    name = "MLP"

    def __init__(self, hidden_dim: int = 64, epochs: int = 200, learning_rate: float = 0.01,
                 weight_decay: float = 1e-5, dropout: float = 0.3):
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        self.dropout = dropout
        self.model_ = None
        self.history_: list[float] = []
        self._train_graph: GraphDataset | None = None

    def fit(self, graph: GraphDataset, seed=None) -> "MLPClassifier":
        rng = as_rng(seed)
        self.model_ = Sequential(
            Linear(graph.num_features, self.hidden_dim, rng=rng),
            ReLU(),
            Dropout(self.dropout, rng=rng),
            Linear(self.hidden_dim, graph.num_classes, rng=rng),
        )
        self.history_ = train_full_batch(
            self.model_, graph.features, graph.labels, graph.train_idx,
            epochs=self.epochs, learning_rate=self.learning_rate,
            weight_decay=self.weight_decay,
        )
        self._train_graph = graph
        return self

    def decision_scores(self, graph: GraphDataset | None = None) -> np.ndarray:
        model = self._require_fitted("model_")
        graph = self._train_graph if graph is None else graph
        return predict_logits(model, graph.features)
