"""DPGCN baseline: adjacency-matrix perturbation (LapGraph, Wu et al. 2022).

The mechanism releases a differentially private estimate of the adjacency
matrix and then trains a standard GCN on it:

1. a small fraction of the budget estimates the edge count with the Laplace
   mechanism (sensitivity 1 under edge DP);
2. the remaining budget adds Laplace noise to every cell of the upper
   triangle (sensitivity 1) and keeps the top-k noisy cells, where k is the
   noisy edge count.

Because every cell of the adjacency matrix is perturbed, message aggregation
is severely disrupted, which is exactly the failure mode the paper attributes
to this family of methods.  The dense upper-triangle materialisation limits
this baseline to graphs of a few thousand nodes, matching its original
evaluation scale.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.baselines.base import BaseNodeClassifier, resolve_delta, train_full_batch
from repro.baselines.gcn import TwoLayerGCN
from repro.exceptions import ConfigurationError
from repro.graphs.adjacency import symmetric_normalize
from repro.graphs.graph import GraphDataset
from repro.nn import Tensor
from repro.privacy.accountant import BudgetLedger
from repro.utils.random import as_rng, spawn_rngs


def lapgraph_perturb(adjacency: sp.spmatrix, epsilon: float, count_fraction: float = 0.1,
                     rng=None) -> sp.csr_matrix:
    """Return a DP estimate of ``adjacency`` via the LapGraph mechanism.

    ``count_fraction`` of ``epsilon`` estimates the edge count; the rest
    perturbs the upper-triangular cells.  The output is symmetric and binary.
    """
    if not 0.0 < count_fraction < 1.0:
        raise ConfigurationError(f"count_fraction must be in (0, 1), got {count_fraction}")
    if epsilon <= 0:
        raise ConfigurationError(f"epsilon must be > 0, got {epsilon}")
    rng = as_rng(rng)
    dense = np.asarray(sp.csr_matrix(adjacency).todense(), dtype=np.float64)
    n = dense.shape[0]
    epsilon_count = epsilon * count_fraction
    epsilon_cells = epsilon - epsilon_count

    true_count = int(np.triu(dense, k=1).sum())
    noisy_count = int(round(true_count + rng.laplace(0.0, 1.0 / epsilon_count)))
    noisy_count = int(np.clip(noisy_count, 0, n * (n - 1) // 2))

    rows, cols = np.triu_indices(n, k=1)
    noisy_cells = dense[rows, cols] + rng.laplace(0.0, 1.0 / epsilon_cells, size=rows.shape[0])
    if noisy_count == 0:
        return sp.csr_matrix((n, n), dtype=np.float64)
    keep = np.argpartition(noisy_cells, -noisy_count)[-noisy_count:]
    perturbed = sp.coo_matrix(
        (np.ones(keep.size), (rows[keep], cols[keep])), shape=(n, n)
    ).tocsr()
    return (perturbed + perturbed.T).tocsr()


class DPGCN(BaseNodeClassifier):
    """GCN trained on a LapGraph-perturbed adjacency matrix (edge-level DP)."""

    name = "DPGCN"

    def __init__(self, epsilon: float = 1.0, delta: float | None = None,
                 hidden_dim: int = 32, epochs: int = 200, learning_rate: float = 0.01,
                 weight_decay: float = 5e-4, dropout: float = 0.3,
                 count_fraction: float = 0.1):
        if epsilon <= 0:
            raise ConfigurationError(f"epsilon must be > 0, got {epsilon}")
        self.epsilon = epsilon
        self.delta = delta
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        self.dropout = dropout
        self.count_fraction = count_fraction
        self.model_: TwoLayerGCN | None = None
        self.ledger_: BudgetLedger | None = None
        self.perturbed_adjacency_: sp.csr_matrix | None = None
        self._train_graph: GraphDataset | None = None

    def fit(self, graph: GraphDataset, seed=None) -> "DPGCN":
        rng = as_rng(seed)
        perturb_rng, model_rng = spawn_rngs(rng, 2)
        delta = resolve_delta(graph, self.delta)
        ledger = BudgetLedger(total_epsilon=self.epsilon, total_delta=delta)
        ledger.spend(self.epsilon * self.count_fraction, 0.0, label="edge count")
        ledger.spend(self.epsilon * (1.0 - self.count_fraction), 0.0, label="adjacency cells")

        perturbed = lapgraph_perturb(graph.adjacency, self.epsilon,
                                     count_fraction=self.count_fraction, rng=perturb_rng)
        model = TwoLayerGCN(graph.num_features, self.hidden_dim, graph.num_classes,
                            self.dropout, model_rng)
        model.set_propagation(symmetric_normalize(perturbed))
        train_full_batch(
            model, graph.features, graph.labels, graph.train_idx,
            epochs=self.epochs, learning_rate=self.learning_rate,
            weight_decay=self.weight_decay,
        )
        self.model_ = model
        self.ledger_ = ledger
        self.perturbed_adjacency_ = perturbed
        self._train_graph = graph
        return self

    def decision_scores(self, graph: GraphDataset | None = None) -> np.ndarray:
        model = self._require_fitted("model_")
        graph_used = self._train_graph if graph is None else graph
        # Inference reuses the privately released adjacency when scoring the
        # training graph; a new graph is treated as public test data (the same
        # convention the paper applies to all baselines).
        if graph is None or graph is self._train_graph:
            model.set_propagation(symmetric_normalize(self.perturbed_adjacency_))
        else:
            model.set_propagation(symmetric_normalize(graph_used.adjacency))
        model.eval()
        return model(Tensor(graph_used.features)).data.copy()
