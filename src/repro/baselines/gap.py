"""GAP baseline (Sajadmanesh et al., USENIX Security 2023), edge-level variant.

GAP ("GNNs with Aggregation Perturbation") keeps the adjacency matrix intact
but adds Gaussian noise to each round of message aggregation:

1. **Encoder** -- an MLP trained on (public) features/labels embeds nodes into
   a low-dimensional space; embeddings are L2-normalised.
2. **Private multi-hop aggregation** -- for each of ``hops`` rounds, the
   row-normalised embeddings are summed over neighbours and Gaussian noise is
   added.  Under edge-level DP, adding or removing one undirected edge
   changes two rows of the sum by a vector of norm at most 1 each, so the L2
   sensitivity per hop is ``sqrt(2)``.  The per-hop noise scale is calibrated
   so that the RDP composition over all hops meets the (epsilon, delta)
   budget.
3. **Classifier** -- an MLP trained on the concatenation of the noisy
   aggregates of all hops (plus the hop-0 embeddings).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.baselines.base import BaseNodeClassifier, predict_logits, resolve_delta, \
    train_full_batch
from repro.exceptions import ConfigurationError, PrivacyBudgetError
from repro.graphs.graph import GraphDataset
from repro.nn import Dropout, Linear, ReLU, Sequential
from repro.privacy.accountant import RdpAccountant
from repro.privacy.rdp import DEFAULT_ORDERS, rdp_gaussian, rdp_to_dp
from repro.utils.math import row_normalize_l2
from repro.utils.random import as_rng, spawn_rngs

#: Edge-level L2 sensitivity of one sum-aggregation round over unit-norm rows.
EDGE_AGGREGATION_SENSITIVITY = float(np.sqrt(2.0))


def calibrate_hop_sigma(epsilon: float, delta: float, hops: int,
                        sensitivity: float = EDGE_AGGREGATION_SENSITIVITY) -> float:
    """Smallest per-hop Gaussian sigma whose ``hops``-fold RDP composition fits the budget."""
    if epsilon <= 0 or not 0 < delta < 1:
        raise PrivacyBudgetError("invalid (epsilon, delta) for GAP calibration")
    if hops < 1:
        raise ConfigurationError(f"hops must be >= 1, got {hops}")
    orders = np.asarray(DEFAULT_ORDERS)

    def epsilon_of(sigma: float) -> float:
        rdp = hops * rdp_gaussian(sigma, orders, sensitivity)
        return rdp_to_dp(rdp, delta, orders)[0]

    low, high = 1e-3, 1.0
    while epsilon_of(high) > epsilon:
        high *= 2.0
        if high > 1e7:  # pragma: no cover - defensive
            raise PrivacyBudgetError("failed to bracket GAP noise calibration")
    for _ in range(80):
        mid = 0.5 * (low + high)
        if epsilon_of(mid) > epsilon:
            low = mid
        else:
            high = mid
    return high


class GAP(BaseNodeClassifier):
    """Edge-level GAP: encoder, noisy multi-hop aggregation, classification head."""

    name = "GAP"

    def __init__(self, epsilon: float = 1.0, delta: float | None = None, hops: int = 2,
                 encoder_dim: int = 16, hidden_dim: int = 64, epochs: int = 200,
                 learning_rate: float = 0.01, weight_decay: float = 1e-5,
                 dropout: float = 0.3):
        if epsilon <= 0:
            raise ConfigurationError(f"epsilon must be > 0, got {epsilon}")
        if hops < 1:
            raise ConfigurationError(f"hops must be >= 1, got {hops}")
        self.epsilon = epsilon
        self.delta = delta
        self.hops = hops
        self.encoder_dim = encoder_dim
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        self.dropout = dropout
        self.encoder_: Sequential | None = None
        self.classifier_: Sequential | None = None
        self.accountant_: RdpAccountant | None = None
        self.sigma_: float | None = None
        self._cached_features: np.ndarray | None = None
        self._train_graph: GraphDataset | None = None

    # ------------------------------------------------------------------ #
    def fit(self, graph: GraphDataset, seed=None) -> "GAP":
        rng = as_rng(seed)
        encoder_rng, noise_rng, classifier_rng = spawn_rngs(rng, 3)
        delta = resolve_delta(graph, self.delta)

        # Stage 1: public encoder on raw features.
        encoder = Sequential(
            Linear(graph.num_features, self.hidden_dim, rng=encoder_rng),
            ReLU(),
            Dropout(self.dropout, rng=encoder_rng),
            Linear(self.hidden_dim, self.encoder_dim, rng=encoder_rng),
            ReLU(),
        )
        head = Sequential(encoder, Linear(self.encoder_dim, graph.num_classes, rng=encoder_rng))
        train_full_batch(head, graph.features, graph.labels, graph.train_idx,
                         epochs=self.epochs, learning_rate=self.learning_rate,
                         weight_decay=self.weight_decay)
        embeddings = row_normalize_l2(predict_logits(encoder, graph.features))

        # Stage 2: private multi-hop aggregation.
        sigma = calibrate_hop_sigma(self.epsilon, delta, self.hops)
        accountant = RdpAccountant()
        adjacency = sp.csr_matrix(graph.adjacency)
        aggregates = [embeddings]
        current = embeddings
        for _ in range(self.hops):
            summed = np.asarray(adjacency @ current)
            noisy = summed + noise_rng.normal(0.0, sigma, size=summed.shape)
            accountant.add_gaussian(sigma, sensitivity=EDGE_AGGREGATION_SENSITIVITY)
            current = row_normalize_l2(noisy)
            aggregates.append(current)

        cached = np.concatenate(aggregates, axis=1)

        # Stage 3: classification head on the concatenated (noisy) aggregates.
        classifier = Sequential(
            Linear(cached.shape[1], self.hidden_dim, rng=classifier_rng),
            ReLU(),
            Dropout(self.dropout, rng=classifier_rng),
            Linear(self.hidden_dim, graph.num_classes, rng=classifier_rng),
        )
        train_full_batch(classifier, cached, graph.labels, graph.train_idx,
                         epochs=self.epochs, learning_rate=self.learning_rate,
                         weight_decay=self.weight_decay)

        self.encoder_ = encoder
        self.classifier_ = classifier
        self.accountant_ = accountant
        self.sigma_ = sigma
        self._cached_features = cached
        self._train_graph = graph
        return self

    # ------------------------------------------------------------------ #
    def decision_scores(self, graph: GraphDataset | None = None) -> np.ndarray:
        classifier = self._require_fitted("classifier_")
        if graph is None or graph is self._train_graph:
            return predict_logits(classifier, self._cached_features)
        # Unseen (public) test graph: aggregate without noise, as in the
        # paper's convention of non-private inference over the node's own edges.
        encoder = self._require_fitted("encoder_")
        embeddings = row_normalize_l2(predict_logits(encoder, graph.features))
        adjacency = sp.csr_matrix(graph.adjacency)
        aggregates = [embeddings]
        current = embeddings
        for _ in range(self.hops):
            current = row_normalize_l2(np.asarray(adjacency @ current))
            aggregates.append(current)
        return predict_logits(classifier, np.concatenate(aggregates, axis=1))

    @property
    def privacy_spent(self) -> tuple[float, float]:
        """(epsilon, delta) actually accounted for the aggregation noise."""
        accountant = self._require_fitted("accountant_")
        delta = resolve_delta(self._train_graph, self.delta)
        return accountant.get_epsilon(delta), delta
