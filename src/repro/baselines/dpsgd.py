"""DP-SGD baseline applied to a one-hop simplified GCN.

This is the "classic DP deep learning" approach the paper's introduction uses
to motivate GCON: per-example gradient clipping plus Gaussian noise, with the
caveat that under *edge-level* DP the per-example (per-node) gradients are not
independent of the private record.  For a one-hop model ``logits = Ã X W``,
adding or removing an edge changes the aggregated features of its two
endpoints, hence at most two per-node gradients; with per-node clipping at
``tau`` the L2 sensitivity of the summed gradient is ``2 * tau`` (the
``2 k^{m-1} tau`` factor of the introduction with ``m = 1``).  Deeper models
would need an even larger multiplier, which is why this baseline is run with
one hop.

Privacy accounting composes the Poisson-subsampled Gaussian mechanism over
training steps with the RDP accountant, and the noise multiplier is
calibrated by bisection to meet the requested (epsilon, delta).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.baselines.base import BaseNodeClassifier, resolve_delta
from repro.exceptions import ConfigurationError
from repro.graphs.adjacency import row_stochastic_normalize
from repro.graphs.graph import GraphDataset
from repro.privacy.accountant import RdpAccountant
from repro.privacy.rdp import calibrate_gaussian_noise_rdp
from repro.utils.math import one_hot, row_normalize_l2, softmax
from repro.utils.random import as_rng, spawn_rngs


class DPSGDGCN(BaseNodeClassifier):
    """One-hop SGC trained with DP-SGD under edge-level sensitivity ``2 tau``."""

    name = "DP-SGD"

    def __init__(self, epsilon: float = 1.0, delta: float | None = None,
                 clipping_norm: float = 1.0, steps: int = 100, batch_size: int = 64,
                 learning_rate: float = 0.1, hops: int = 1):
        if epsilon <= 0:
            raise ConfigurationError(f"epsilon must be > 0, got {epsilon}")
        if clipping_norm <= 0:
            raise ConfigurationError(f"clipping_norm must be > 0, got {clipping_norm}")
        if steps < 1 or batch_size < 1:
            raise ConfigurationError("steps and batch_size must be >= 1")
        if hops < 1:
            raise ConfigurationError(f"hops must be >= 1, got {hops}")
        self.epsilon = epsilon
        self.delta = delta
        self.clipping_norm = clipping_norm
        self.steps = steps
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.hops = hops
        self.weight_: np.ndarray | None = None
        self.sigma_: float | None = None
        self.accountant_: RdpAccountant | None = None
        self._train_graph: GraphDataset | None = None

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _edge_sensitivity_multiplier(self, graph: GraphDataset) -> float:
        """The ``2 k^{m-1}`` factor by which one edge can touch per-node gradients."""
        if self.hops == 1:
            return 2.0
        max_degree = float(graph.degrees.max()) if graph.num_nodes else 1.0
        return 2.0 * max(max_degree, 1.0) ** (self.hops - 1)

    def _aggregate(self, graph: GraphDataset) -> np.ndarray:
        features = row_normalize_l2(graph.features)
        transition = row_stochastic_normalize(graph.adjacency)
        aggregated = features
        for _ in range(self.hops):
            aggregated = np.asarray(transition @ aggregated)
        return aggregated

    # ------------------------------------------------------------------ #
    def fit(self, graph: GraphDataset, seed=None) -> "DPSGDGCN":
        rng = as_rng(seed)
        sample_rng, noise_rng = spawn_rngs(rng, 2)
        delta = resolve_delta(graph, self.delta)

        aggregated = self._aggregate(graph)
        train_idx = graph.train_idx
        num_train = train_idx.size
        num_classes = graph.num_classes
        labels = one_hot(graph.labels[train_idx], num_classes)
        features = aggregated[train_idx]

        sampling_rate = min(1.0, self.batch_size / max(num_train, 1))
        noise_multiplier = calibrate_gaussian_noise_rdp(
            self.epsilon, delta, sampling_rate, self.steps
        )
        # The Gaussian std applied to the summed clipped gradients: the edge
        # sensitivity multiplier amplifies the clipping norm.
        sensitivity = self._edge_sensitivity_multiplier(graph) * self.clipping_norm
        sigma = noise_multiplier * sensitivity

        accountant = RdpAccountant()
        accountant.add_subsampled_gaussian(sampling_rate, noise_multiplier, self.steps)

        weight = np.zeros((features.shape[1], num_classes))
        for _ in range(self.steps):
            mask = sample_rng.random(num_train) < sampling_rate
            batch = np.flatnonzero(mask)
            if batch.size == 0:
                continue
            logits = features[batch] @ weight
            probabilities = softmax(logits, axis=1)
            residuals = probabilities - labels[batch]
            # Per-node gradients are rank-one: g_i = x_i outer r_i, so the
            # per-node norm factorises as ||x_i|| * ||r_i||.
            feature_norms = np.linalg.norm(features[batch], axis=1)
            residual_norms = np.linalg.norm(residuals, axis=1)
            gradient_norms = feature_norms * residual_norms
            scales = np.minimum(1.0, self.clipping_norm / np.maximum(gradient_norms, 1e-12))
            clipped_sum = (features[batch] * scales[:, np.newaxis]).T @ residuals
            noisy_sum = clipped_sum + noise_rng.normal(0.0, sigma, size=clipped_sum.shape)
            gradient = noisy_sum / max(self.batch_size, 1)
            weight = weight - self.learning_rate * gradient

        self.weight_ = weight
        self.sigma_ = sigma
        self.accountant_ = accountant
        self._train_graph = graph
        return self

    # ------------------------------------------------------------------ #
    def decision_scores(self, graph: GraphDataset | None = None) -> np.ndarray:
        weight = self._require_fitted("weight_")
        graph = self._train_graph if graph is None else graph
        return self._aggregate(graph) @ weight

    @property
    def privacy_spent(self) -> tuple[float, float]:
        """(epsilon, delta) accounted by the RDP accountant for the SGD noise."""
        accountant = self._require_fitted("accountant_")
        delta = resolve_delta(self._train_graph, self.delta)
        return accountant.get_epsilon(delta), delta
