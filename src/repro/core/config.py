"""Configuration object for the GCON estimator (inputs of Algorithm 1)."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError


def _normalize_step(step) -> float:
    """Normalise a propagation-step value to an int or ``math.inf``."""
    if step is None:
        return math.inf
    if isinstance(step, str):
        if step.lower() in ("inf", "infinity"):
            return math.inf
        raise ConfigurationError(f"invalid propagation step {step!r}")
    if step == math.inf:
        return math.inf
    if isinstance(step, float) and not step.is_integer():
        raise ConfigurationError(f"propagation steps must be integers or inf, got {step}")
    step = int(step)
    if step < 0:
        raise ConfigurationError(f"propagation steps must be >= 0, got {step}")
    return step


@dataclass
class GCONConfig:
    """Hyperparameters of GCON (Algorithm 1 inputs plus encoder settings).

    Attributes
    ----------
    epsilon, delta:
        Edge-DP privacy budget.  ``delta=None`` uses the paper's default
        ``1/|E|`` computed from the training graph at fit time.
    alpha:
        Restart probability of the PPR/APPR propagation, in ``(0, 1]``.
    propagation_steps:
        The series ``m_1, ..., m_s`` of Eq. (11); each entry is a
        non-negative integer or ``inf`` (PPR limit).
    loss:
        ``"soft_margin"`` (MultiLabel Soft Margin, Eq. 27) or
        ``"pseudo_huber"`` (Eq. 28).
    huber_delta:
        Weight ``delta_l`` of the pseudo-Huber loss.
    lambda_reg:
        Regularisation coefficient Λ of Eq. (2).
    omega:
        Budget allocator ω of Theorem 1, in ``(0, 1)``; the paper fixes 0.9.
    encoder_dim:
        Output dimension ``d1`` of the MLP feature encoder.
    encoder_hidden:
        Hidden width of the encoder MLP.
    encoder_epochs, encoder_lr, encoder_weight_decay, encoder_dropout:
        Encoder training hyperparameters (the encoder is non-private by
        design: it only touches public features/labels).
    inference_alpha:
        Restart probability ``alpha_I`` used for private inference (Eq. 16);
        ``None`` reuses ``alpha``.
    use_pseudo_labels:
        If True, expand the convex training set with encoder pseudo-labels
        for unlabeled nodes (the paper's ``n1 in {n0, n}`` tuning knob).
    pseudo_label_mode:
        ``"all"`` expands to every node (n1 = n, the paper's setting);
        ``"balanced"`` keeps a class-balanced, confidence-ranked subset,
        which trades a smaller n1 for pseudo-label class balance.
    max_iterations, gtol:
        Convex solver settings.
    xi:
        The strictly positive slack ξ of Eq. (22).
    """

    epsilon: float = 1.0
    delta: float | None = None
    alpha: float = 0.6
    propagation_steps: tuple = (2,)
    loss: str = "soft_margin"
    huber_delta: float = 0.2
    lambda_reg: float = 0.2
    omega: float = 0.9
    encoder_dim: int = 16
    encoder_hidden: int = 64
    encoder_epochs: int = 200
    encoder_lr: float = 0.01
    encoder_weight_decay: float = 1e-5
    encoder_dropout: float = 0.1
    inference_alpha: float | None = None
    use_pseudo_labels: bool = False
    pseudo_label_mode: str = "balanced"
    max_iterations: int = 500
    gtol: float = 1e-6
    xi: float = 1e-6
    non_private: bool = False

    normalized_steps: tuple = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ConfigurationError(f"epsilon must be > 0, got {self.epsilon}")
        if self.delta is not None and not 0.0 <= self.delta < 1.0:
            raise ConfigurationError(f"delta must be in [0, 1), got {self.delta}")
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {self.alpha}")
        if not self.propagation_steps:
            raise ConfigurationError("propagation_steps must contain at least one entry")
        self.normalized_steps = tuple(_normalize_step(s) for s in self.propagation_steps)
        if self.loss not in ("soft_margin", "pseudo_huber"):
            raise ConfigurationError(
                f"loss must be 'soft_margin' or 'pseudo_huber', got {self.loss!r}"
            )
        if self.huber_delta <= 0:
            raise ConfigurationError(f"huber_delta must be > 0, got {self.huber_delta}")
        if self.lambda_reg <= 0:
            raise ConfigurationError(f"lambda_reg must be > 0, got {self.lambda_reg}")
        if not 0.0 < self.omega < 1.0:
            raise ConfigurationError(f"omega must be in (0, 1), got {self.omega}")
        if self.encoder_dim < 1:
            raise ConfigurationError(f"encoder_dim must be >= 1, got {self.encoder_dim}")
        if self.encoder_hidden < 1:
            raise ConfigurationError(f"encoder_hidden must be >= 1, got {self.encoder_hidden}")
        if self.inference_alpha is not None and not 0.0 <= self.inference_alpha <= 1.0:
            raise ConfigurationError(
                f"inference_alpha must be in [0, 1], got {self.inference_alpha}"
            )
        if self.pseudo_label_mode not in ("all", "balanced"):
            raise ConfigurationError(
                f"pseudo_label_mode must be 'all' or 'balanced', got {self.pseudo_label_mode!r}"
            )
        if self.xi <= 0:
            raise ConfigurationError(f"xi must be > 0, got {self.xi}")
        if self.max_iterations < 1:
            raise ConfigurationError(f"max_iterations must be >= 1, got {self.max_iterations}")

    @property
    def num_hops(self) -> int:
        """Number of concatenated propagation branches ``s``."""
        return len(self.normalized_steps)

    @property
    def effective_inference_alpha(self) -> float:
        """Restart probability used at private-inference time."""
        return self.alpha if self.inference_alpha is None else self.inference_alpha

    def preparation_key(self) -> tuple:
        """The epsilon/delta-independent knobs that determine Algorithm 1's
        preparation phase (encoder training, normalisation, propagation and
        pseudo-label selection).

        Two configurations with equal keys produce bitwise-identical
        :class:`~repro.core.model.PreparedInputs` for the same graph and seed,
        which is what lets the sweep engine reuse preparations across an
        epsilon sweep.
        """
        return (
            self.alpha,
            self.normalized_steps,
            self.encoder_dim,
            self.encoder_hidden,
            self.encoder_epochs,
            self.encoder_lr,
            self.encoder_weight_decay,
            self.encoder_dropout,
            self.use_pseudo_labels,
            self.pseudo_label_mode,
        )
