"""Theorem-1 calibration: the parameter chain producing Λ' and β (Eqs. 17-24).

Given the privacy budget (ε, δ), the loss-derivative bounds (c1, c2, c3), the
aggregate-feature sensitivity Ψ(Z), the number of labelled nodes n1, the
number of classes c, the feature dimension d and the budget allocator ω,
Theorem 1 prescribes

* ``c_sf`` (Eq. 21): the (1 - δ/c) quantile of the unit-rate Erlang
  distribution with shape d, i.e. the inverse regularised lower incomplete
  gamma function at d;
* ``Λ̄`` (Eq. 22): a lower bound on the regulariser guaranteeing a positive
  denominator in ``c_θ``;
* ``c_θ`` (Eq. 23): a high-probability bound on the column norms of the
  optimised parameters;
* ``ε_Λ`` (Eq. 24): the privacy cost of the Jacobian-determinant ratio;
* ``Λ'`` (Eq. 17): the additional quadratic perturbation coefficient;
* ``β`` (Eq. 18): the rate of the Erlang radius of the linear noise term B.

The special case Ψ(Z) = 0 (propagation that never uses edges: every m_i = 0
or α = 1) requires no perturbation at all — the mechanism releases a function
of public data only — and is handled explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import special

from repro.exceptions import ConfigurationError, PrivacyBudgetError
from repro.core.losses import ConvexPointwiseLoss
from repro.privacy.erlang import sample_sphere_noise
from repro.utils.random import as_rng


@dataclass(frozen=True)
class PerturbationParameters:
    """All quantities computed by Theorem 1, kept for introspection and tests."""

    epsilon: float
    delta: float
    omega: float
    num_labeled: int
    num_classes: int
    dimension: int
    sensitivity: float
    c1: float
    c2: float
    c3: float
    c_sf: float
    lambda_input: float
    lambda_bar: float
    c_theta: float
    epsilon_lambda: float
    lambda_prime: float
    beta: float

    @property
    def total_quadratic_coefficient(self) -> float:
        """Coefficient ``Λ̄ + Λ'`` multiplying ``(1/2)||Θ||_F^2`` in Eq. (13)."""
        return self.lambda_bar + self.lambda_prime

    @property
    def requires_noise(self) -> bool:
        """Whether a non-degenerate linear noise term B is required (Ψ > 0)."""
        return self.sensitivity > 0.0


def erlang_quantile(dimension: int, probability: float) -> float:
    """``c_sf`` of Eq. (21): the smallest u with P(d, u) >= probability.

    ``P`` is the regularised lower incomplete gamma function, i.e. the CDF of
    the unit-rate Erlang distribution with integer shape ``dimension``.
    """
    if dimension < 1:
        raise ConfigurationError(f"dimension must be >= 1, got {dimension}")
    if not 0.0 < probability < 1.0:
        raise ConfigurationError(f"probability must be in (0, 1), got {probability}")
    return float(special.gammaincinv(dimension, probability))


def compute_perturbation_parameters(*, epsilon: float, delta: float, omega: float,
                                    loss: ConvexPointwiseLoss, sensitivity: float,
                                    num_labeled: int, num_classes: int, dimension: int,
                                    lambda_reg: float, xi: float = 1e-6,
                                    ) -> PerturbationParameters:
    """Evaluate the Theorem-1 parameter chain (Eqs. 17-24).

    Parameters
    ----------
    epsilon, delta:
        Edge-DP privacy budget of Algorithm 1.
    omega:
        Budget allocator ω ∈ (0, 1) dividing ε between the linear term B ⊙ Θ
        and the quadratic term Λ'||Θ||²_F.
    loss:
        The convex scalar loss; supplies the derivative bounds c1, c2, c3.
    sensitivity:
        Ψ(Z) from Lemma 2 for the configured propagation.
    num_labeled:
        Number of labelled training nodes n1.
    num_classes, dimension:
        Number of classes c and feature dimension d (= s·d1).
    lambda_reg:
        The user-chosen regulariser Λ of Eq. (2).
    xi:
        The strictly positive slack ξ of Eq. (22).
    """
    if epsilon <= 0:
        raise PrivacyBudgetError(f"epsilon must be > 0, got {epsilon}")
    if not 0.0 < delta < 1.0:
        raise PrivacyBudgetError(f"delta must be in (0, 1), got {delta}")
    if not 0.0 < omega < 1.0:
        raise ConfigurationError(f"omega must be in (0, 1), got {omega}")
    if num_labeled < 1:
        raise ConfigurationError(f"num_labeled must be >= 1, got {num_labeled}")
    if num_classes < 1 or dimension < 1:
        raise ConfigurationError("num_classes and dimension must be >= 1")
    if sensitivity < 0:
        raise ConfigurationError(f"sensitivity must be >= 0, got {sensitivity}")
    if lambda_reg <= 0:
        raise ConfigurationError(f"lambda_reg must be > 0, got {lambda_reg}")
    if xi <= 0:
        raise ConfigurationError(f"xi must be > 0, got {xi}")

    c1, c2, c3 = loss.c1, loss.c2, loss.c3

    if sensitivity == 0.0:
        # No edge information flows into Z; the released parameters are a
        # function of public data only and need no perturbation.
        return PerturbationParameters(
            epsilon=epsilon, delta=delta, omega=omega, num_labeled=num_labeled,
            num_classes=num_classes, dimension=dimension, sensitivity=0.0,
            c1=c1, c2=c2, c3=c3, c_sf=0.0, lambda_input=lambda_reg,
            lambda_bar=lambda_reg, c_theta=float("inf"), epsilon_lambda=0.0,
            lambda_prime=0.0, beta=float("inf"),
        )

    # Eq. (21): c_sf from the Erlang CDF at probability 1 - delta / c.
    c_sf = erlang_quantile(dimension, 1.0 - delta / num_classes)

    # Eq. (22): effective regulariser Λ̄ ensuring a positive denominator below.
    lambda_floor = num_classes * c2 * sensitivity * c_sf / (num_labeled * omega * epsilon) + xi
    lambda_bar = max(lambda_reg, lambda_floor)

    # Eq. (23): high-probability bound c_θ on the column norms of Θ_priv.
    numerator = num_labeled * omega * epsilon * c1 + num_classes * c1 * sensitivity * c_sf
    denominator = num_labeled * omega * epsilon * lambda_bar \
        - num_classes * c2 * sensitivity * c_sf
    if denominator <= 0:  # pragma: no cover - prevented by the Λ̄ floor
        raise PrivacyBudgetError("internal error: non-positive denominator for c_theta")
    c_theta = numerator / denominator

    # Eq. (24): privacy cost of the Jacobian determinant ratio at Λ' = 0.
    epsilon_lambda = num_classes * dimension * np.log(
        1.0 + (2.0 * c2 + c3 * c_theta) * sensitivity / (dimension * num_labeled * lambda_bar)
    )

    # Eq. (17): additional quadratic coefficient Λ'.
    if epsilon_lambda <= (1.0 - omega) * epsilon:
        lambda_prime = 0.0
    else:
        lambda_prime = num_classes * (2.0 * c2 + c3 * c_theta) * sensitivity \
            / (num_labeled * (1.0 - omega) * epsilon) - lambda_bar
        lambda_prime = max(lambda_prime, 0.0)

    # Eq. (18): Erlang rate β of the linear noise term.
    beta = max(epsilon - epsilon_lambda, omega * epsilon) \
        / (num_classes * (c1 + c2 * c_theta) * sensitivity)

    return PerturbationParameters(
        epsilon=epsilon, delta=delta, omega=omega, num_labeled=num_labeled,
        num_classes=num_classes, dimension=dimension, sensitivity=sensitivity,
        c1=c1, c2=c2, c3=c3, c_sf=c_sf, lambda_input=lambda_reg, lambda_bar=lambda_bar,
        c_theta=c_theta, epsilon_lambda=epsilon_lambda, lambda_prime=lambda_prime, beta=beta,
    )


def sample_noise_matrix(params: PerturbationParameters, rng=None) -> np.ndarray:
    """Sample the noise matrix B of Eq. (13) / Algorithm 2 for the given parameters.

    Returns a ``(dimension, num_classes)`` array.  When no noise is required
    (Ψ(Z) = 0) the zero matrix is returned.
    """
    rng = as_rng(rng)
    if not params.requires_noise:
        return np.zeros((params.dimension, params.num_classes))
    return sample_sphere_noise(params.dimension, params.beta, params.num_classes, rng=rng)
