"""Element-wise clipping of the message-passing matrix (Lemma 1's bound ``p``).

Lemma 1 is stated for a transition matrix whose off-diagonal entries are
``min(1 / (k_i + 1), p)`` with ``p <= 1/2`` and whose diagonal absorbs the
remaining mass so every row still sums to one.  With ``p = 1/2`` this is
exactly the row-stochastic normalisation ``Ã = D^{-1}(A + I)`` used by GCON;
smaller ``p`` artificially limits how much mass any single neighbour can
receive, which caps the column sums at ``max((k_i + 1) p, 1)`` and is the
kind of clipping "frequently employed in DP algorithms" that the paper notes
Lemma 1 continues to cover.

This module constructs the clipped matrix, verifies the Lemma-1 properties,
and exposes a :class:`ClippedPropagator` drop-in replacement for
:class:`~repro.core.propagation.Propagator`.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.propagation import Propagator
from repro.core.sensitivity import column_sum_bound
from repro.exceptions import ConfigurationError


def clipped_transition_matrix(adjacency: sp.spmatrix, clip: float = 0.5) -> sp.csr_matrix:
    """Build the Lemma-1 transition matrix with off-diagonal entries clipped at ``clip``.

    Parameters
    ----------
    adjacency:
        Symmetric binary adjacency matrix without self-loops.
    clip:
        The bound ``p`` in ``(0, 0.5]``.  ``clip = 0.5`` reproduces the
        unclipped ``Ã = D^{-1}(A + I)`` exactly (every off-diagonal entry
        ``1/(k_i+1)`` is already at most 1/2).
    """
    if not 0.0 < clip <= 0.5:
        raise ConfigurationError(f"clip must be in (0, 0.5], got {clip}")
    adjacency = sp.csr_matrix(adjacency, dtype=np.float64)
    if adjacency.shape[0] != adjacency.shape[1]:
        raise ConfigurationError(f"adjacency must be square, got {adjacency.shape}")
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    rows, cols = adjacency.nonzero()
    off_diagonal = np.minimum(1.0 / (degrees[rows] + 1.0), clip)
    transition = sp.coo_matrix(
        (off_diagonal, (rows, cols)), shape=adjacency.shape
    ).tocsr()
    row_mass = np.asarray(transition.sum(axis=1)).ravel()
    diagonal = 1.0 - row_mass
    if np.any(diagonal < -1e-12):
        raise ConfigurationError("row mass exceeded one; adjacency is not a simple binary graph")
    return (transition + sp.diags(np.maximum(diagonal, 0.0))).tocsr()


def verify_lemma1_properties(transition: sp.spmatrix, degrees: np.ndarray,
                             clip: float = 0.5, max_power: int = 3,
                             atol: float = 1e-9) -> dict[str, bool]:
    """Check the three Lemma-1 properties on ``transition`` and its powers.

    Returns a dict with keys ``non_negative``, ``row_sums_one`` and
    ``column_sums_bounded``; each value is True when the property holds for
    all powers ``m = 1, ..., max_power``.
    """
    if max_power < 1:
        raise ConfigurationError(f"max_power must be >= 1, got {max_power}")
    degrees = np.asarray(degrees, dtype=np.float64)
    dense = np.asarray(sp.csr_matrix(transition).todense())
    bounds = np.array([column_sum_bound(int(k), clip) for k in degrees])
    power = np.eye(dense.shape[0])
    non_negative = True
    row_sums_one = True
    column_sums_bounded = True
    for _ in range(max_power):
        power = power @ dense
        non_negative &= bool((power >= -atol).all())
        row_sums_one &= bool(np.allclose(power.sum(axis=1), 1.0, atol=1e-6))
        column_sums_bounded &= bool((power.sum(axis=0) <= bounds + 1e-6).all())
    return {
        "non_negative": non_negative,
        "row_sums_one": row_sums_one,
        "column_sums_bounded": column_sums_bounded,
    }


class ClippedPropagator(Propagator):
    """A :class:`Propagator` whose transition matrix uses Lemma-1 clipping.

    The APPR/PPR recursions, sensitivity bounds and inference operators are
    inherited unchanged; only ``Ã`` is replaced by its clipped counterpart.
    """

    def __init__(self, adjacency: sp.spmatrix, alpha: float, clip: float = 0.5):
        super().__init__(adjacency, alpha)
        self.clip = float(clip)
        self.transition = clipped_transition_matrix(adjacency, clip)
        self._ppr_solver = None
