"""GCON: training GCNs with edge differential privacy via objective perturbation."""

from repro.core.config import GCONConfig
from repro.core.losses import MultiLabelSoftMarginLoss, PseudoHuberLoss, get_loss
from repro.core.propagation import Propagator
from repro.core.sensitivity import aggregate_sensitivity, concatenated_sensitivity
from repro.core.perturbation import PerturbationParameters, compute_perturbation_parameters
from repro.core.objective import BatchedPerturbedObjective, PerturbedObjective
from repro.core.solver import (
    SolverResult,
    minimize_batched_objective,
    minimize_objective,
    solve_objective_sweep,
)
from repro.core.encoder import MLPEncoder
from repro.core.model import GCON, PreparedInputs
from repro.core.sweep import SweepSolve, SweepSolver
from repro.core.clipping import ClippedPropagator, clipped_transition_matrix, \
    verify_lemma1_properties
from repro.core.persistence import PreparationStore, save_gcon, load_gcon
from repro.core.theory import (
    SensitivityCheck,
    empirical_aggregate_sensitivity,
    check_convexity,
    check_gradient,
    implied_noise_matrix,
    noise_log_density_ratio,
    column_norm_cap_violations,
)

__all__ = [
    "GCON",
    "GCONConfig",
    "MultiLabelSoftMarginLoss",
    "PseudoHuberLoss",
    "get_loss",
    "Propagator",
    "aggregate_sensitivity",
    "concatenated_sensitivity",
    "PerturbationParameters",
    "compute_perturbation_parameters",
    "PerturbedObjective",
    "BatchedPerturbedObjective",
    "minimize_objective",
    "minimize_batched_objective",
    "solve_objective_sweep",
    "SolverResult",
    "MLPEncoder",
    "PreparedInputs",
    "SweepSolve",
    "SweepSolver",
    "PreparationStore",
    "ClippedPropagator",
    "clipped_transition_matrix",
    "verify_lemma1_properties",
    "SensitivityCheck",
    "empirical_aggregate_sensitivity",
    "check_convexity",
    "check_gradient",
    "implied_noise_matrix",
    "noise_log_density_ratio",
    "column_norm_cap_violations",
    "save_gcon",
    "load_gcon",
]
