"""Empirical verification utilities for the paper's theoretical claims.

These helpers do not participate in training; they exist so that the claims
underpinning Theorem 1 can be *measured* on concrete graphs:

* Lemma 2 — the closed-form sensitivity Ψ(Z_m) upper-bounds the empirical
  row-difference metric ψ(Z_m) over sampled edge-neighbouring graph pairs;
* Lemma 4 — the (perturbed) objective is convex / strongly convex in Θ;
* Lemma 8 — the implied-noise log-density ratio between neighbouring graphs
  stays within the calibrated budget;
* Lemma 9 — the released parameter columns respect the ``c_θ`` norm cap with
  probability at least ``1 - δ``.

They are exercised by the property-based test-suite and by
``benchmarks/bench_sensitivity_bounds.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.objective import PerturbedObjective
from repro.core.propagation import Propagator
from repro.core.sensitivity import aggregate_sensitivity, empirical_row_difference
from repro.exceptions import ConfigurationError
from repro.graphs.graph import GraphDataset
from repro.graphs.perturbations import iter_neighboring_pairs
from repro.utils.math import row_normalize_l2
from repro.utils.random import as_rng


# --------------------------------------------------------------------------- #
# Lemma 2: empirical versus closed-form sensitivity
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SensitivityCheck:
    """Outcome of an empirical Lemma-2 check for one (alpha, m) setting."""

    alpha: float
    steps: float
    theoretical_bound: float
    empirical_max: float
    empirical_mean: float
    num_pairs: int

    @property
    def holds(self) -> bool:
        """True when no sampled neighbouring pair exceeded the closed-form bound."""
        return self.empirical_max <= self.theoretical_bound + 1e-9

    @property
    def tightness(self) -> float:
        """Ratio empirical-max / bound; close to 1 means the bound is tight."""
        if self.theoretical_bound == 0.0:
            return 0.0 if self.empirical_max == 0.0 else np.inf
        return self.empirical_max / self.theoretical_bound


def empirical_aggregate_sensitivity(graph: GraphDataset, alpha: float, steps: float,
                                    num_pairs: int = 20, kind: str = "remove",
                                    features: np.ndarray | None = None,
                                    rng: int | np.random.Generator | None = 0,
                                    ) -> SensitivityCheck:
    """Measure ψ(Z_m) over sampled neighbouring pairs and compare with Ψ(Z_m).

    ``features`` defaults to the graph's features, row-normalised to unit L2
    norm as required by the lemma; pass a custom matrix to stress the bound
    with adversarial features.
    """
    if num_pairs < 1:
        raise ConfigurationError(f"num_pairs must be >= 1, got {num_pairs}")
    rng = as_rng(rng)
    if features is None:
        features = graph.features
    features = row_normalize_l2(np.asarray(features, dtype=np.float64))
    base = Propagator(graph.adjacency, alpha).propagate(features, steps)
    differences = []
    for pair in iter_neighboring_pairs(graph, num_pairs, kind=kind, rng=rng):
        neighbor = Propagator(pair.neighbor.adjacency, alpha).propagate(features, steps)
        differences.append(empirical_row_difference(base, neighbor))
    differences = np.asarray(differences)
    return SensitivityCheck(
        alpha=float(alpha),
        steps=float(steps),
        theoretical_bound=aggregate_sensitivity(alpha, steps),
        empirical_max=float(differences.max()),
        empirical_mean=float(differences.mean()),
        num_pairs=num_pairs,
    )


# --------------------------------------------------------------------------- #
# Lemma 4: convexity of the (perturbed) objective
# --------------------------------------------------------------------------- #
def check_convexity(objective: PerturbedObjective, num_probes: int = 20,
                    scale: float = 1.0, strong_modulus: float = 0.0,
                    rng: int | np.random.Generator | None = 0) -> bool:
    """Midpoint convexity check of the objective on random parameter pairs.

    For each probe we draw Θ₁, Θ₂ and verify

    ``L(½Θ₁ + ½Θ₂) <= ½ L(Θ₁) + ½ L(Θ₂) - (strong_modulus / 8) ||Θ₁ - Θ₂||_F²``

    which holds for every ``strong_modulus``-strongly-convex function.  Pass
    ``strong_modulus = 0`` for plain convexity.
    """
    if num_probes < 1:
        raise ConfigurationError(f"num_probes must be >= 1, got {num_probes}")
    if strong_modulus < 0:
        raise ConfigurationError(f"strong_modulus must be >= 0, got {strong_modulus}")
    rng = as_rng(rng)
    shape = objective.initial_theta().shape
    for _ in range(num_probes):
        theta_a = rng.normal(0.0, scale, size=shape)
        theta_b = rng.normal(0.0, scale, size=shape)
        midpoint = 0.5 * (theta_a + theta_b)
        lhs = objective.value(midpoint)
        gap = strong_modulus / 8.0 * float(np.linalg.norm(theta_a - theta_b) ** 2)
        rhs = 0.5 * objective.value(theta_a) + 0.5 * objective.value(theta_b) - gap
        if lhs > rhs + 1e-8:
            return False
    return True


def check_gradient(objective: PerturbedObjective, num_probes: int = 5,
                   step: float = 1e-6, tolerance: float = 1e-4,
                   rng: int | np.random.Generator | None = 0) -> bool:
    """Finite-difference check of the analytic gradient at random points."""
    if num_probes < 1:
        raise ConfigurationError(f"num_probes must be >= 1, got {num_probes}")
    rng = as_rng(rng)
    shape = objective.initial_theta().shape
    for _ in range(num_probes):
        theta = rng.normal(0.0, 0.5, size=shape)
        analytic = objective.gradient(theta)
        for _ in range(3):
            i = int(rng.integers(0, shape[0]))
            j = int(rng.integers(0, shape[1]))
            perturbed = theta.copy()
            perturbed[i, j] += step
            numeric = (objective.value(perturbed) - objective.value(theta)) / step
            if abs(numeric - analytic[i, j]) > tolerance * max(1.0, abs(numeric)):
                return False
    return True


# --------------------------------------------------------------------------- #
# Lemmas 8 & 9: implied noise and the parameter-norm cap
# --------------------------------------------------------------------------- #
def implied_noise_matrix(theta: np.ndarray, features: np.ndarray,
                         labels_one_hot: np.ndarray, loss,
                         quadratic_coefficient: float) -> np.ndarray:
    """The noise matrix ``B`` for which ``theta`` minimises the perturbed objective.

    This is Eq. (40) of the paper: at the optimum the gradient of the
    perturbed objective vanishes, hence

    ``B = -Σ_i z_i ℓ'(z_i^T θ_j; y_ij) - n1 (Λ + Λ') θ``  (column-wise).
    """
    theta = np.asarray(theta, dtype=np.float64)
    features = np.asarray(features, dtype=np.float64)
    labels_one_hot = np.asarray(labels_one_hot, dtype=np.float64)
    num_labeled = features.shape[0]
    margins = features @ theta
    derivatives = loss.derivative(margins, labels_one_hot)
    data_term = features.T @ derivatives
    return -data_term - num_labeled * quadratic_coefficient * theta


def noise_log_density_ratio(noise_first: np.ndarray, noise_second: np.ndarray,
                            beta: float) -> float:
    """Log of the Erlang-sphere density ratio ``µ(B|D) / µ(B'|D')`` (Lemma 8).

    For the radius-Erlang spherical density the ratio of column densities is
    ``exp(β (||b'_j||_2 - ||b_j||_2))``; the total log-ratio sums over
    columns.
    """
    if beta < 0:
        raise ConfigurationError(f"beta must be >= 0, got {beta}")
    noise_first = np.asarray(noise_first, dtype=np.float64)
    noise_second = np.asarray(noise_second, dtype=np.float64)
    if noise_first.shape != noise_second.shape:
        raise ConfigurationError("noise matrices must have the same shape")
    norms_first = np.linalg.norm(noise_first, axis=0)
    norms_second = np.linalg.norm(noise_second, axis=0)
    return float(beta * np.sum(norms_second - norms_first))


def column_norm_cap_violations(theta: np.ndarray, cap: float) -> int:
    """Number of columns of Θ whose L2 norm exceeds the Lemma-9 cap ``c_θ``."""
    if cap <= 0:
        raise ConfigurationError(f"cap must be > 0, got {cap}")
    norms = np.linalg.norm(np.asarray(theta, dtype=np.float64), axis=0)
    return int(np.sum(norms > cap))
