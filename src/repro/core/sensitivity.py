"""Closed-form sensitivity bounds for the aggregate features (Lemmas 1 and 2).

The edge-level sensitivity of the aggregated feature matrix drives the scale
of GCON's objective perturbation.  Lemma 2 gives the closed form

    Ψ(Z_m)   = 2 (1 - alpha) / alpha * (1 - (1 - alpha)^m)
    Ψ(Z_inf) = 2 (1 - alpha) / alpha
    Ψ(Z)     = (1/s) * sum_i Ψ(Z_{m_i})

where the metric (Definition 3) is ``ψ(Z) = sum_i ||z'_i - z_i||_2`` over the
rows of the aggregate matrices of two edge-neighbouring graphs.  This module
also provides an empirical ψ used by the test suite to verify the bound.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ConfigurationError


def aggregate_sensitivity(alpha: float, steps: float) -> float:
    """Closed-form sensitivity Ψ(Z_m) of Lemma 2 for a single step count."""
    if not 0.0 < alpha <= 1.0:
        raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
    if steps == 0:
        return 0.0
    base = 2.0 * (1.0 - alpha) / alpha
    if steps == math.inf:
        return base
    if not float(steps).is_integer() or steps < 0:
        raise ConfigurationError(f"steps must be a non-negative integer or inf, got {steps}")
    return base * (1.0 - (1.0 - alpha) ** int(steps))


def concatenated_sensitivity(alpha: float, steps_list) -> float:
    """Sensitivity Ψ(Z) of the concatenated features (Eq. 26)."""
    steps_list = list(steps_list)
    if not steps_list:
        raise ConfigurationError("steps_list must contain at least one entry")
    return float(np.mean([aggregate_sensitivity(alpha, steps) for steps in steps_list]))


def empirical_row_difference(z_first: np.ndarray, z_second: np.ndarray) -> float:
    """Empirical ψ(Z) = Σ_i ||z'_i - z_i||_2 of Definition 3."""
    z_first = np.asarray(z_first, dtype=np.float64)
    z_second = np.asarray(z_second, dtype=np.float64)
    if z_first.shape != z_second.shape:
        raise ConfigurationError("matrices must have the same shape")
    return float(np.linalg.norm(z_first - z_second, axis=1).sum())


def column_sum_bound(degree: int, clip: float = 0.5) -> float:
    """Lemma 1's bound on the column sums of ``Ã^m`` / ``R_m``: max((k_i + 1) p, 1).

    With the default ``p = 1/2`` (no artificial clipping) this equals
    ``max((k_i + 1) / 2, 1)``.
    """
    if degree < 0:
        raise ConfigurationError(f"degree must be >= 0, got {degree}")
    if not 0.0 < clip <= 0.5:
        raise ConfigurationError(f"clip must be in (0, 0.5], got {clip}")
    return max((degree + 1) * clip, 1.0)
