"""Saving and loading trained GCON releases.

The whole point of the paper is to *release* the trained parameters Θ_priv:
once Theorem 1 has been paid for, the release is just data and can be
post-processed, shipped and reloaded freely without touching the privacy
budget.  This module serialises everything a downstream user needs to run
Algorithm-4 inference — the configuration, the released Θ_priv, the public
feature encoder and the Theorem-1 calibration record — into a single
``.npz`` archive, and restores it into a ready-to-predict :class:`GCON`.

The training graph is deliberately *not* stored: the saved artefact contains
only the DP-protected release plus public quantities, so the file itself is
safe to publish under the same (ε, δ) guarantee.

The module also hosts :class:`PreparationStore`, a content-addressed on-disk
cache of the *epsilon-independent* preparation phase (fitted encoder weights
plus propagated features): the hash of ``(preparation config, graph content,
seed)`` addresses an ``.npz`` bundle, so repeated or resumed sweeps skip
encoder training and propagation entirely and a loaded bundle is bitwise
identical to a cold :meth:`GCON.prepare`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import zipfile
from pathlib import Path

import numpy as np

from repro.core.config import GCONConfig
from repro.core.encoder import MLPEncoder, _EncoderNetwork
from repro.core.model import GCON, PreparedInputs
from repro.core.perturbation import PerturbationParameters
from repro.core.propagation import graph_fingerprint
from repro.exceptions import ConfigurationError, NotFittedError
from repro.utils.random import as_rng

_FORMAT_VERSION = 1
_ENCODER_PREFIX = "encoder_param::"
_PREPARATION_FORMAT_VERSION = 1
PREPARATION_CACHE_ENV = "REPRO_PREPARATION_CACHE"


def _config_to_json(config: GCONConfig) -> str:
    payload = dataclasses.asdict(config)
    payload.pop("normalized_steps", None)
    payload["propagation_steps"] = [
        "inf" if value == float("inf") else value for value in config.propagation_steps
    ]
    return json.dumps(payload, sort_keys=True)


def _config_from_json(text: str) -> GCONConfig:
    payload = json.loads(text)
    payload["propagation_steps"] = tuple(payload.get("propagation_steps", (2,)))
    return GCONConfig(**payload)


def release_arrays(model: GCON) -> dict[str, np.ndarray]:
    """The canonical array bundle of a fitted :class:`GCON` release.

    Everything :func:`save_gcon` writes and :func:`load_gcon` reads — the
    released Θ_priv, the public encoder parameters and the JSON-encoded
    configuration/calibration records — as a plain dict, so other writers
    (the model registry of :mod:`repro.serving`) can persist or fingerprint
    the identical content.  Raises :class:`NotFittedError` on unfitted models.
    """
    if model.theta_ is None or model.encoder_ is None or model.perturbation_ is None:
        raise NotFittedError("GCON.fit must be called before saving the model")
    encoder = model.encoder_
    network = encoder._require_fitted()
    arrays: dict[str, np.ndarray] = {
        "theta": model.theta_,
        "format_version": np.array([_FORMAT_VERSION]),
        "num_classes": np.array([model.num_classes_]),
        "config_json": np.array(_config_to_json(model.config)),
        "perturbation_json": np.array(
            json.dumps(dataclasses.asdict(model.perturbation_), sort_keys=True)
        ),
        "encoder_settings_json": np.array(json.dumps({
            "output_dim": encoder.output_dim,
            "hidden_dim": encoder.hidden_dim,
            "epochs": encoder.epochs,
            "learning_rate": encoder.learning_rate,
            "weight_decay": encoder.weight_decay,
            "dropout": encoder.dropout,
        }, sort_keys=True)),
    }
    for name, value in network.state_dict().items():
        arrays[f"{_ENCODER_PREFIX}{name}"] = value
    return arrays


def release_digest(arrays: dict[str, np.ndarray]) -> str:
    """A stable sha256 content address of a release-array bundle.

    Hashes array names, dtypes, shapes and raw bytes in sorted-name order, so
    the digest is invariant to dict ordering and archive metadata (the bytes
    of the ``.npz`` container itself are *not* hashed — zip timestamps would
    make it unstable).  Same convention as the :class:`PreparationStore`
    addresses: flipping any bit of the release flips the digest.
    """
    digest = hashlib.sha256()
    for name in sorted(arrays):
        value = np.asarray(arrays[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(value.dtype).encode("utf-8"))
        digest.update(str(value.shape).encode("utf-8"))
        digest.update(np.ascontiguousarray(value).tobytes())
    return digest.hexdigest()


def atomic_savez(path: str | Path, arrays: dict[str, np.ndarray]) -> Path:
    """Atomically publish an ``.npz`` archive (temp file + rename).

    The ``.npz`` analogue of :func:`repro.utils.fs.atomic_write_text`, shared
    by the preparation store and the model registry so concurrent writers on
    a shared filesystem never expose a torn archive.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    temporary = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    try:
        with open(temporary, "wb") as handle:
            np.savez(handle, **arrays)
        os.replace(temporary, path)
    finally:
        if temporary.exists():  # pragma: no cover - only on a failed write
            temporary.unlink()
    return path


def _mmap_npz_arrays(path: Path, mmap_mode: str = "r") -> dict[str, np.ndarray]:
    """Memory-map every array member of an *uncompressed* ``.npz`` archive.

    ``np.load(..., mmap_mode=...)`` silently ignores the mmap request for
    ``.npz`` files (the NpzFile reader always copies members into fresh
    arrays), so replica cold-start pays one full copy of every model array.
    ``np.savez`` stores members with ``ZIP_STORED`` — raw, contiguous
    ``.npy`` bytes inside the zip — so each array can be mapped in place:
    parse the member's npy header through the zip reader, locate the raw
    payload offset from the zip local-file header, and hand ``np.memmap``
    the exact byte range.  The mapped bytes are the very bytes
    :func:`atomic_savez` wrote, so a mapped array is bitwise identical to
    its eager-loaded twin; raises ``ValueError`` on compressed or
    object-dtype members (callers fall back to the copying loader).
    """
    arrays: dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as archive, open(path, "rb") as raw:
        for info in archive.infolist():
            if info.compress_type != zipfile.ZIP_STORED:
                raise ValueError(
                    f"{path}:{info.filename} is compressed; cannot memory-map")
            with archive.open(info) as member:
                version = np.lib.format.read_magic(member)
                if version == (1, 0):
                    shape, fortran, dtype = \
                        np.lib.format.read_array_header_1_0(member)
                elif version == (2, 0):
                    shape, fortran, dtype = \
                        np.lib.format.read_array_header_2_0(member)
                else:
                    raise ValueError(
                        f"{path}:{info.filename} has npy format {version}; "
                        f"cannot memory-map")
                header_length = member.tell()  # npy payload starts here
            if dtype.hasobject:
                raise ValueError(
                    f"{path}:{info.filename} holds Python objects; "
                    f"cannot memory-map")
            # The zip local-file header length can differ from the central
            # directory's record; read it to find where the member's raw
            # (stored, uncompressed) bytes begin in the archive file.
            raw.seek(info.header_offset)
            local = raw.read(30)
            if len(local) != 30 or local[:4] != b"PK\x03\x04":
                raise ValueError(
                    f"{path}:{info.filename} has a malformed local header")
            name_length = int.from_bytes(local[26:28], "little")
            extra_length = int.from_bytes(local[28:30], "little")
            payload = info.header_offset + 30 + name_length + extra_length
            name = (info.filename[:-4] if info.filename.endswith(".npy")
                    else info.filename)
            arrays[name] = np.memmap(path, dtype=dtype, mode=mmap_mode,
                                     offset=payload + header_length,
                                     shape=shape,
                                     order="F" if fortran else "C")
    return arrays


def load_release_arrays(path: str | Path,
                        mmap_mode: str | None = None) -> dict[str, np.ndarray]:
    """Read an ``.npz`` archive back as ``{name: array}``.

    With ``mmap_mode`` (typically ``"r"``), arrays are :class:`np.memmap`
    views onto the file — the zero-copy cold-start path the serving registry
    uses — and are bitwise identical to the eager copies ``np.load`` makes.
    """
    path = Path(path)
    if mmap_mode is not None:
        return _mmap_npz_arrays(path, mmap_mode)
    with np.load(path, allow_pickle=False) as archive:
        return {name: archive[name] for name in archive.files}


def save_gcon(model: GCON, path: str | Path) -> Path:
    """Serialise a fitted :class:`GCON` (release + public encoder) to ``path``.

    The file is a numpy ``.npz`` archive; the ``.npz`` suffix is appended if
    missing.  Raises :class:`NotFittedError` if the model has not been fitted.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    arrays = release_arrays(model)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **arrays)
    return path


def _as_float64(value: np.ndarray) -> np.ndarray:
    """Ensure float64 without destroying a memmap: a mapped float64 array is
    returned untouched (the zero-copy point of ``mmap_mode``); anything else
    is converted the way ``np.asarray(..., dtype=np.float64)`` would."""
    if value.dtype == np.float64:
        return value
    return np.asarray(value, dtype=np.float64)


def load_gcon(path: str | Path, mmap_mode: str | None = None) -> GCON:
    """Restore a :class:`GCON` previously written by :func:`save_gcon`.

    The returned model is ready for Algorithm-4 inference via
    ``predict(graph, mode=...)``; a graph must be supplied explicitly because
    the (private) training graph is never stored in the release file.

    With ``mmap_mode="r"`` the release arrays (Θ_priv and the encoder
    parameters) are memory-mapped read-only instead of copied — the serving
    registry's cold-start path — and every downstream score is bitwise
    identical to the eager load (pinned by ``tests/test_serving_slo.py``).
    """
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"model file {path} does not exist")
    arrays = load_release_arrays(path, mmap_mode)
    if "format_version" not in arrays or "theta" not in arrays:
        raise ConfigurationError(f"{path} is not a saved GCON release")
    version = int(arrays["format_version"][0])
    if version != _FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported GCON release format {version} (expected {_FORMAT_VERSION})"
        )
    config = _config_from_json(str(arrays["config_json"]))
    perturbation = PerturbationParameters(**json.loads(str(arrays["perturbation_json"])))
    encoder_settings = json.loads(str(arrays["encoder_settings_json"]))
    theta = _as_float64(arrays["theta"])
    num_classes = int(arrays["num_classes"][0])
    encoder_state = {
        key[len(_ENCODER_PREFIX):]: _as_float64(arrays[key])
        for key in arrays if key.startswith(_ENCODER_PREFIX)
    }

    encoder = MLPEncoder(
        output_dim=int(encoder_settings["output_dim"]),
        hidden_dim=int(encoder_settings["hidden_dim"]),
        epochs=int(encoder_settings["epochs"]),
        learning_rate=float(encoder_settings["learning_rate"]),
        weight_decay=float(encoder_settings["weight_decay"]),
        dropout=float(encoder_settings["dropout"]),
        seed=0,
    )
    encoder._network = _rebuild_encoder_network(encoder, encoder_state, num_classes)

    model = GCON(config)
    model.theta_ = theta
    model.perturbation_ = perturbation
    model.encoder_ = encoder
    model.num_classes_ = num_classes
    return model


# --------------------------------------------------------------------------- #
# content-addressed preparation cache
# --------------------------------------------------------------------------- #
def dataset_fingerprint(graph) -> str:
    """A stable content hash of everything the preparation phase reads.

    :func:`~repro.core.propagation.graph_fingerprint` covers only the
    adjacency; the encoder additionally consumes features, labels and the
    training split, so the preparation cache must key on all four — two
    graphs sharing an edge set but differing in features must not collide.
    """
    digest = hashlib.sha256()
    digest.update(graph_fingerprint(graph.adjacency).encode())
    features = np.ascontiguousarray(np.asarray(graph.features, dtype=np.float64))
    digest.update(str(features.shape).encode())
    digest.update(features.tobytes())
    digest.update(np.ascontiguousarray(np.asarray(graph.labels, dtype=np.int64)).tobytes())
    digest.update(np.ascontiguousarray(np.asarray(graph.train_idx, dtype=np.int64)).tobytes())
    return digest.hexdigest()


class PreparationStore:
    """Content-addressed on-disk cache of :class:`PreparedInputs` bundles.

    The address is ``sha256(preparation config ‖ graph content ‖ seed)``:

    * the *preparation key* of the configuration — every knob that influences
      Lines 1-7 of Algorithm 1 (alpha, propagation steps, encoder and
      pseudo-label settings) and nothing that does not (epsilon, delta,
      solver settings);
    * the full graph content (:func:`dataset_fingerprint`);
    * the integer master seed of the cell.

    Flipping any of the three yields a different address (a cache miss); a
    hit returns encoder weights and propagated features bitwise identical to
    the cold :meth:`GCON.prepare` that produced them, so enabling the store
    never changes results.  Writes are atomic (temp file + rename), so
    concurrent sweep workers may share one store directory; a corrupt or
    half-written bundle is treated as a miss and rewritten.

    Set the ``REPRO_PREPARATION_CACHE`` environment variable to a directory
    path to enable a store for the sweep workers (see :meth:`from_env`).
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.stats = {"hits": 0, "misses": 0}

    @classmethod
    def from_env(cls, environ=None) -> "PreparationStore | None":
        """A store rooted at ``$REPRO_PREPARATION_CACHE``, or ``None`` if unset."""
        environ = os.environ if environ is None else environ
        root = environ.get(PREPARATION_CACHE_ENV, "").strip()
        if not root or root == "0":
            return None
        return cls(root)

    # ------------------------------------------------------------------ #
    # addressing
    # ------------------------------------------------------------------ #
    @staticmethod
    def preparation_address(config: GCONConfig, graph, seed: int) -> str:
        """The content address of ``(config's preparation key, graph, seed)``."""
        payload = json.dumps({
            "format": _PREPARATION_FORMAT_VERSION,
            "preparation_key": config.preparation_key(),
            "graph": dataset_fingerprint(graph),
            "seed": int(seed),
        }, sort_keys=True, default=str)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def path_for(self, address: str) -> Path:
        return self.root / f"prep-{address[:32]}.npz"

    # ------------------------------------------------------------------ #
    # load / save
    # ------------------------------------------------------------------ #
    def fetch(self, config: GCONConfig, graph, seed: int) -> PreparedInputs | None:
        """Return the cached bundle for ``(config, graph, seed)`` or ``None``."""
        path = self.path_for(self.preparation_address(config, graph, seed))
        if not path.exists():
            self.stats["misses"] += 1
            return None
        try:
            prepared = self._read_bundle(path, config, seed)
        except (OSError, ValueError, KeyError, ConfigurationError,
                zipfile.BadZipFile):
            # A half-written or stale-format bundle is a miss, not an error:
            # the caller recomputes and overwrites it atomically.  BadZipFile
            # subclasses Exception directly (not OSError/ValueError), and is
            # what np.load raises on a truncated archive body.
            self.stats["misses"] += 1
            return None
        self.stats["hits"] += 1
        return prepared

    def put(self, config: GCONConfig, graph, seed: int,
            prepared: PreparedInputs) -> Path:
        """Persist ``prepared`` under its content address (atomically)."""
        network = prepared.encoder._require_fitted()
        arrays: dict[str, np.ndarray] = {
            "format_version": np.array([_PREPARATION_FORMAT_VERSION]),
            "aggregated": np.asarray(prepared.aggregated, dtype=np.float64),
            "train_idx": np.asarray(prepared.train_idx, dtype=np.int64),
            "labels": np.asarray(prepared.labels, dtype=np.int64),
            "num_classes": np.array([network.head.out_features]),
            "graph_key": np.array(graph_fingerprint(graph.adjacency)),
        }
        for name, value in network.state_dict().items():
            arrays[f"{_ENCODER_PREFIX}{name}"] = value
        path = self.path_for(self.preparation_address(config, graph, seed))
        return atomic_savez(path, arrays)

    def get_or_prepare(self, model: GCON, graph, seed) -> PreparedInputs:
        """Fetch the preparation for ``(model.config, graph, seed)`` or compute
        and persist it.

        Only integer seeds are content-addressable; with a generator or
        ``None`` seed the store is bypassed and a cold prepare is returned.
        """
        if not isinstance(seed, (int, np.integer)):
            return model.prepare(graph, seed=seed)
        prepared = self.fetch(model.config, graph, int(seed))
        if prepared is not None:
            return prepared
        prepared = model.prepare(graph, seed=int(seed))
        self.put(model.config, graph, int(seed), prepared)
        return prepared

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _read_bundle(self, path: Path, config: GCONConfig, seed: int) -> PreparedInputs:
        with np.load(path, allow_pickle=False) as archive:
            if "format_version" not in archive or "aggregated" not in archive:
                raise ConfigurationError(f"{path} is not a preparation bundle")
            version = int(archive["format_version"][0])
            if version != _PREPARATION_FORMAT_VERSION:
                raise ConfigurationError(
                    f"unsupported preparation bundle format {version}"
                )
            aggregated = np.asarray(archive["aggregated"], dtype=np.float64)
            train_idx = np.asarray(archive["train_idx"], dtype=np.int64)
            labels = np.asarray(archive["labels"], dtype=np.int64)
            num_classes = int(archive["num_classes"][0])
            graph_key = str(archive["graph_key"])
            state = {
                key[len(_ENCODER_PREFIX):]: np.asarray(archive[key], dtype=np.float64)
                for key in archive.files if key.startswith(_ENCODER_PREFIX)
            }
        encoder = MLPEncoder(
            output_dim=config.encoder_dim,
            hidden_dim=config.encoder_hidden,
            epochs=config.encoder_epochs,
            learning_rate=config.encoder_lr,
            weight_decay=config.encoder_weight_decay,
            dropout=config.encoder_dropout,
            seed=int(seed),
        )
        encoder._network = _rebuild_encoder_network(encoder, state, num_classes)
        return PreparedInputs(
            encoder=encoder, aggregated=aggregated, train_idx=train_idx,
            labels=labels, preparation_key=config.preparation_key(),
            graph_key=graph_key, seed_token=int(seed),
        )

    def info(self) -> dict:
        """Hit/miss counters plus the number of bundles currently on disk."""
        entries = len(list(self.root.glob("prep-*.npz"))) if self.root.exists() else 0
        return dict(self.stats, entries=entries, root=str(self.root))


def _rebuild_encoder_network(encoder: MLPEncoder, state: dict[str, np.ndarray],
                             num_classes: int) -> _EncoderNetwork:
    """Reconstruct the encoder network from its saved parameter arrays."""
    if not state:
        raise ConfigurationError("the saved release contains no encoder parameters")
    # The first Linear layer's weight has shape (in_dim, hidden_dim); locate it
    # by matching the hidden width so the input dimension never has to be stored.
    in_dim = None
    for value in state.values():
        if value.ndim == 2 and value.shape[1] == encoder.hidden_dim:
            in_dim = int(value.shape[0])
            break
    if in_dim is None:
        raise ConfigurationError("could not infer the encoder input dimension from the release")
    network = _EncoderNetwork(
        in_dim=in_dim,
        hidden_dim=encoder.hidden_dim,
        out_dim=encoder.output_dim,
        num_classes=num_classes,
        dropout=encoder.dropout,
        rng=as_rng(0),
    )
    network.load_state_dict(state)
    network.eval()
    return network
