"""Saving and loading trained GCON releases.

The whole point of the paper is to *release* the trained parameters Θ_priv:
once Theorem 1 has been paid for, the release is just data and can be
post-processed, shipped and reloaded freely without touching the privacy
budget.  This module serialises everything a downstream user needs to run
Algorithm-4 inference — the configuration, the released Θ_priv, the public
feature encoder and the Theorem-1 calibration record — into a single
``.npz`` archive, and restores it into a ready-to-predict :class:`GCON`.

The training graph is deliberately *not* stored: the saved artefact contains
only the DP-protected release plus public quantities, so the file itself is
safe to publish under the same (ε, δ) guarantee.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np

from repro.core.config import GCONConfig
from repro.core.encoder import MLPEncoder, _EncoderNetwork
from repro.core.model import GCON
from repro.core.perturbation import PerturbationParameters
from repro.exceptions import ConfigurationError, NotFittedError
from repro.utils.random import as_rng

_FORMAT_VERSION = 1
_ENCODER_PREFIX = "encoder_param::"


def _config_to_json(config: GCONConfig) -> str:
    payload = dataclasses.asdict(config)
    payload.pop("normalized_steps", None)
    payload["propagation_steps"] = [
        "inf" if value == float("inf") else value for value in config.propagation_steps
    ]
    return json.dumps(payload, sort_keys=True)


def _config_from_json(text: str) -> GCONConfig:
    payload = json.loads(text)
    payload["propagation_steps"] = tuple(payload.get("propagation_steps", (2,)))
    return GCONConfig(**payload)


def save_gcon(model: GCON, path: str | Path) -> Path:
    """Serialise a fitted :class:`GCON` (release + public encoder) to ``path``.

    The file is a numpy ``.npz`` archive; the ``.npz`` suffix is appended if
    missing.  Raises :class:`NotFittedError` if the model has not been fitted.
    """
    if model.theta_ is None or model.encoder_ is None or model.perturbation_ is None:
        raise NotFittedError("GCON.fit must be called before saving the model")
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    encoder = model.encoder_
    network = encoder._require_fitted()

    arrays: dict[str, np.ndarray] = {
        "theta": model.theta_,
        "format_version": np.array([_FORMAT_VERSION]),
        "num_classes": np.array([model.num_classes_]),
        "config_json": np.array(_config_to_json(model.config)),
        "perturbation_json": np.array(
            json.dumps(dataclasses.asdict(model.perturbation_), sort_keys=True)
        ),
        "encoder_settings_json": np.array(json.dumps({
            "output_dim": encoder.output_dim,
            "hidden_dim": encoder.hidden_dim,
            "epochs": encoder.epochs,
            "learning_rate": encoder.learning_rate,
            "weight_decay": encoder.weight_decay,
            "dropout": encoder.dropout,
        }, sort_keys=True)),
    }
    for name, value in network.state_dict().items():
        arrays[f"{_ENCODER_PREFIX}{name}"] = value
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **arrays)
    return path


def load_gcon(path: str | Path) -> GCON:
    """Restore a :class:`GCON` previously written by :func:`save_gcon`.

    The returned model is ready for Algorithm-4 inference via
    ``predict(graph, mode=...)``; a graph must be supplied explicitly because
    the (private) training graph is never stored in the release file.
    """
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"model file {path} does not exist")
    with np.load(path, allow_pickle=False) as archive:
        if "format_version" not in archive or "theta" not in archive:
            raise ConfigurationError(f"{path} is not a saved GCON release")
        version = int(archive["format_version"][0])
        if version != _FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported GCON release format {version} (expected {_FORMAT_VERSION})"
            )
        config = _config_from_json(str(archive["config_json"]))
        perturbation = PerturbationParameters(**json.loads(str(archive["perturbation_json"])))
        encoder_settings = json.loads(str(archive["encoder_settings_json"]))
        theta = np.asarray(archive["theta"], dtype=np.float64)
        num_classes = int(archive["num_classes"][0])
        encoder_state = {
            key[len(_ENCODER_PREFIX):]: np.asarray(archive[key], dtype=np.float64)
            for key in archive.files if key.startswith(_ENCODER_PREFIX)
        }

    encoder = MLPEncoder(
        output_dim=int(encoder_settings["output_dim"]),
        hidden_dim=int(encoder_settings["hidden_dim"]),
        epochs=int(encoder_settings["epochs"]),
        learning_rate=float(encoder_settings["learning_rate"]),
        weight_decay=float(encoder_settings["weight_decay"]),
        dropout=float(encoder_settings["dropout"]),
        seed=0,
    )
    encoder._network = _rebuild_encoder_network(encoder, encoder_state, num_classes)

    model = GCON(config)
    model.theta_ = theta
    model.perturbation_ = perturbation
    model.encoder_ = encoder
    model.num_classes_ = num_classes
    return model


def _rebuild_encoder_network(encoder: MLPEncoder, state: dict[str, np.ndarray],
                             num_classes: int) -> _EncoderNetwork:
    """Reconstruct the encoder network from its saved parameter arrays."""
    if not state:
        raise ConfigurationError("the saved release contains no encoder parameters")
    # The first Linear layer's weight has shape (in_dim, hidden_dim); locate it
    # by matching the hidden width so the input dimension never has to be stored.
    in_dim = None
    for value in state.values():
        if value.ndim == 2 and value.shape[1] == encoder.hidden_dim:
            in_dim = int(value.shape[0])
            break
    if in_dim is None:
        raise ConfigurationError("could not infer the encoder input dimension from the release")
    network = _EncoderNetwork(
        in_dim=in_dim,
        hidden_dim=encoder.hidden_dim,
        out_dim=encoder.output_dim,
        num_classes=num_classes,
        dropout=encoder.dropout,
        rng=as_rng(0),
    )
    network.load_state_dict(state)
    network.eval()
    return network
