"""PPR / APPR feature propagation (Section IV-C2 and IV-C3 of the paper).

The propagation matrix (Eq. 9) is

* ``R_0 = I``,
* ``R_m = alpha * sum_{i<m} (1-alpha)^i Ã^i + (1-alpha)^m Ã^m`` for finite m
  (APPR), computed via the recursion ``R_m = (1-alpha) Ã R_{m-1} + alpha I``,
* ``R_inf = alpha (I - (1-alpha) Ã)^{-1}`` (PPR), computed with a sparse
  linear solve.

``Ã = D^{-1}(A + I)`` is the row-stochastic normalisation with self-loops.
The aggregate features are ``Z_m = R_m X`` (Eq. 10) and the final model input
is the scaled concatenation ``Z = (1/s)(Z_{m_1} ⊕ ... ⊕ Z_{m_s})`` (Eq. 11).
"""

from __future__ import annotations

import hashlib
import math
import os
from contextlib import contextmanager

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.exceptions import ConfigurationError
from repro.graphs.adjacency import row_stochastic_normalize
from repro.utils.lru import LRUDict


def graph_fingerprint(adjacency: sp.spmatrix) -> str:
    """A stable content hash of a sparse adjacency (shape + sparsity pattern + data).

    Used as the cache key for per-graph artefacts: two adjacency objects with
    identical content map to the same key even across processes, while ``id``
    based keys would not survive worker boundaries or garbage collection.
    """
    matrix = sp.csr_matrix(adjacency)
    digest = hashlib.sha1()
    digest.update(str(matrix.shape).encode())
    digest.update(np.ascontiguousarray(matrix.indptr).tobytes())
    digest.update(np.ascontiguousarray(matrix.indices).tobytes())
    digest.update(np.ascontiguousarray(matrix.data).tobytes())
    return digest.hexdigest()


def _features_fingerprint(features: np.ndarray) -> str:
    digest = hashlib.sha1()
    digest.update(str(features.shape).encode())
    digest.update(str(features.dtype).encode())
    digest.update(np.ascontiguousarray(features).tobytes())
    return digest.hexdigest()


class PropagationCache:
    """Memoizes the per-graph propagation artefacts across experiment cells.

    Three layers, each keyed by the graph's content fingerprint:

    * ``transition`` -- the row-stochastic ``Ã = D^{-1}(A + I)`` (independent
      of alpha, epsilon and seed);
    * ``solver``     -- the sparse LU factorisation of ``I - (1-alpha) Ã``
      behind the exact PPR limit, per ``(graph, alpha)``;
    * ``features``   -- the propagated ``Z_m = R_m X`` per
      ``(graph, alpha, steps, fingerprint(X))``.

    An epsilon sweep or a repeat loop re-deriving identical propagations hits
    the cache instead of recomputing; cached values are bitwise identical to a
    fresh computation, so enabling the cache never changes results.
    """

    def __init__(self, max_graphs: int = 8, max_feature_entries: int = 16):
        self._transitions = LRUDict(max_graphs)
        self._solvers = LRUDict(max_graphs)
        self._features = LRUDict(max_feature_entries)
        self.stats = {
            layer: {"hits": 0, "misses": 0}
            for layer in ("transition", "solver", "features")
        }

    # ------------------------------------------------------------------ #
    # layers
    # ------------------------------------------------------------------ #
    def transition(self, adjacency: sp.spmatrix, key: str | None = None):
        """Return ``(graph_key, Ã)``, normalising at most once per graph."""
        key = key if key is not None else graph_fingerprint(adjacency)
        cached = self._transitions.get_or_none(key)
        if cached is not None:
            self.stats["transition"]["hits"] += 1
            return key, cached
        self.stats["transition"]["misses"] += 1
        transition = row_stochastic_normalize(adjacency, add_loops=True)
        self._transitions.put(key, transition)
        return key, transition

    def solver(self, graph_key: str, alpha: float, transition: sp.spmatrix):
        """Return the cached sparse LU factorisation of ``I - (1-alpha) Ã``."""
        key = (graph_key, float(alpha))
        cached = self._solvers.get_or_none(key)
        if cached is not None:
            self.stats["solver"]["hits"] += 1
            return cached
        self.stats["solver"]["misses"] += 1
        system = sp.identity(transition.shape[0], format="csc") \
            - (1.0 - alpha) * transition.tocsc()
        solver = spla.splu(system.tocsc())
        self._solvers.put(key, solver)
        return solver

    def propagated_features(self, graph_key: str, alpha: float, steps: float,
                            features: np.ndarray, compute):
        """Return ``Z_m`` from cache, calling ``compute()`` on a miss."""
        key = (graph_key, float(alpha), steps, _features_fingerprint(features))
        cached = self._features.get_or_none(key)
        if cached is not None:
            self.stats["features"]["hits"] += 1
            return cached.copy()
        self.stats["features"]["misses"] += 1
        result = compute()
        self._features.put(key, result)
        return result.copy()

    # ------------------------------------------------------------------ #
    # convenience
    # ------------------------------------------------------------------ #
    def propagator(self, adjacency: sp.spmatrix, alpha: float) -> "Propagator":
        """A :class:`Propagator` whose hot paths consult this cache."""
        return Propagator(adjacency, alpha, cache=self)

    def clear(self) -> None:
        self._transitions.clear()
        self._solvers.clear()
        self._features.clear()
        for counters in self.stats.values():
            counters["hits"] = counters["misses"] = 0

    def info(self) -> dict:
        """Hit/miss counters plus current entry counts per layer."""
        return {
            "transition": dict(self.stats["transition"], entries=len(self._transitions)),
            "solver": dict(self.stats["solver"], entries=len(self._solvers)),
            "features": dict(self.stats["features"], entries=len(self._features)),
        }


_DEFAULT_CACHE = PropagationCache()
# Caching is engine-scoped by default: the sweep workers (and anything else
# that opts in via `propagation_cache(...)`) activate it around their fits,
# while a standalone `GCON.fit` keeps the original propagate-and-forget
# behaviour -- no global retention of LU factorisations or feature matrices
# in single-model library use.  Set REPRO_PROPAGATION_CACHE=1 to enable the
# shared cache process-wide.
_ACTIVE_CACHE: PropagationCache | None = (
    _DEFAULT_CACHE if os.environ.get("REPRO_PROPAGATION_CACHE", "0") == "1" else None
)


def get_default_cache() -> PropagationCache:
    """The process-wide cache used by :func:`cached_propagator` by default."""
    return _DEFAULT_CACHE


@contextmanager
def propagation_cache(cache: PropagationCache | None):
    """Temporarily swap the active propagation cache (``None`` disables caching)."""
    global _ACTIVE_CACHE
    previous = _ACTIVE_CACHE
    _ACTIVE_CACHE = cache
    try:
        yield cache
    finally:
        _ACTIVE_CACHE = previous


def cached_propagator(adjacency: sp.spmatrix, alpha: float) -> "Propagator":
    """A :class:`Propagator` backed by the active cache (plain if disabled)."""
    if _ACTIVE_CACHE is None:
        return Propagator(adjacency, alpha)
    return _ACTIVE_CACHE.propagator(adjacency, alpha)


class Propagator:
    """Computes PPR/APPR propagation of node features over a fixed graph."""

    def __init__(self, adjacency: sp.spmatrix, alpha: float,
                 cache: PropagationCache | None = None):
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self.cache = cache
        if cache is not None:
            self._graph_key, self.transition = cache.transition(adjacency)
        else:
            self._graph_key = None
            self.transition = row_stochastic_normalize(adjacency, add_loops=True)
        self.num_nodes = self.transition.shape[0]
        self._ppr_solver = None

    # ------------------------------------------------------------------ #
    # feature propagation
    # ------------------------------------------------------------------ #
    def propagate(self, features: np.ndarray, steps: float) -> np.ndarray:
        """Return ``Z_m = R_m X`` for a single propagation step count ``m``.

        ``steps`` may be a non-negative integer or ``math.inf`` (PPR limit).
        """
        features = np.asarray(features, dtype=np.float64)
        if features.shape[0] != self.num_nodes:
            raise ConfigurationError(
                f"features have {features.shape[0]} rows but the graph has "
                f"{self.num_nodes} nodes"
            )
        if steps == 0:
            return features.copy()
        if steps == math.inf:
            if self.cache is not None:
                return self.cache.propagated_features(
                    self._graph_key, self.alpha, math.inf, features,
                    lambda: self._propagate_ppr(features),
                )
            return self._propagate_ppr(features)
        if not float(steps).is_integer() or steps < 0:
            raise ConfigurationError(f"steps must be a non-negative integer or inf, got {steps}")
        steps = int(steps)
        if self.cache is not None:
            return self.cache.propagated_features(
                self._graph_key, self.alpha, steps, features,
                lambda: self._propagate_appr(features, steps),
            )
        return self._propagate_appr(features, steps)

    def _propagate_appr(self, features: np.ndarray, steps: int) -> np.ndarray:
        """Finite-step APPR via the recursion of Eq. (9)."""
        decayed = 1.0 - self.alpha
        aggregated = features.copy()
        for _ in range(steps):
            aggregated = decayed * (self.transition @ aggregated) + self.alpha * features
        return aggregated

    def _propagate_ppr(self, features: np.ndarray) -> np.ndarray:
        """Exact personalised-PageRank limit via a sparse LU solve (Eq. 5)."""
        if self.alpha == 1.0:
            return features.copy()
        if self.cache is not None:
            solver = self.cache.solver(self._graph_key, self.alpha, self.transition)
            return self.alpha * solver.solve(features)
        if self._ppr_solver is None:
            system = sp.identity(self.num_nodes, format="csc") \
                - (1.0 - self.alpha) * self.transition.tocsc()
            self._ppr_solver = spla.splu(system.tocsc())
        solution = self._ppr_solver.solve(features)
        return self.alpha * solution

    def propagate_concat(self, features: np.ndarray, steps_list) -> np.ndarray:
        """Return the scaled concatenation ``Z`` of Eq. (11) over ``steps_list``."""
        steps_list = list(steps_list)
        if not steps_list:
            raise ConfigurationError("steps_list must contain at least one entry")
        blocks = [self.propagate(features, steps) for steps in steps_list]
        return np.concatenate(blocks, axis=1) / len(blocks)

    # ------------------------------------------------------------------ #
    # explicit propagation matrices (small graphs / testing)
    # ------------------------------------------------------------------ #
    def propagation_matrix(self, steps: float) -> np.ndarray:
        """Return the dense ``R_m`` matrix (Eq. 9).  Intended for small graphs."""
        identity = np.eye(self.num_nodes)
        return self.propagate(identity, steps)

    def inference_matrix(self, steps: float, inference_alpha: float) -> sp.csr_matrix:
        """The single-hop private-inference operator ``R̂_m`` of Eq. (16)."""
        if not 0.0 <= inference_alpha <= 1.0:
            raise ConfigurationError(
                f"inference_alpha must be in [0, 1], got {inference_alpha}"
            )
        if steps == 0:
            return sp.identity(self.num_nodes, format="csr")
        return ((1.0 - inference_alpha) * self.transition
                + inference_alpha * sp.identity(self.num_nodes, format="csr")).tocsr()

    def inference_concat(self, features: np.ndarray, steps_list, inference_alpha: float,
                         ) -> np.ndarray:
        """Private-inference features (Eq. 16), scaled by 1/s to match training.

        The paper's Eq. (16) omits the 1/s factor used at training time
        (Eq. 11); we keep the factor so that the feature scale the classifier
        sees at inference matches the scale it was trained on (for s = 1 the
        two coincide).
        """
        steps_list = list(steps_list)
        if not steps_list:
            raise ConfigurationError("steps_list must contain at least one entry")
        features = np.asarray(features, dtype=np.float64)
        blocks = []
        for steps in steps_list:
            operator = self.inference_matrix(steps, inference_alpha)
            blocks.append(np.asarray(operator @ features))
        return np.concatenate(blocks, axis=1) / len(blocks)


# --------------------------------------------------------------------------- #
# incremental re-propagation (live graph mutation)
# --------------------------------------------------------------------------- #
def bfs_neighborhood(matrix: sp.csr_matrix, seeds, radius: int) -> np.ndarray:
    """Sorted node ids within ``radius`` hops of ``seeds`` on ``matrix``.

    The closed neighbourhood ``N^radius[seeds]`` over the sparsity pattern:
    the seeds themselves at radius 0, one frontier expansion per hop.  On a
    row-stochastic transition (which carries self-loops) a hop automatically
    re-includes the frontier, but seeds are marked explicitly so the helper
    is correct for plain adjacencies too.
    """
    seeds = np.unique(np.asarray(list(seeds), dtype=np.int64))
    num_nodes = matrix.shape[0]
    if seeds.size and (seeds.min() < 0 or seeds.max() >= num_nodes):
        raise ConfigurationError(
            f"seed nodes must be in [0, {num_nodes}), got "
            f"[{int(seeds.min())}, {int(seeds.max())}]")
    reached = np.zeros(num_nodes, dtype=bool)
    reached[seeds] = True
    frontier = seeds
    indptr, indices = matrix.indptr, matrix.indices
    for _ in range(int(radius)):
        if frontier.size == 0 or reached.all():
            break
        fresh = np.zeros(num_nodes, dtype=bool)
        for node in frontier:
            fresh[indices[indptr[node]:indptr[node + 1]]] = True
        frontier = np.flatnonzero(fresh & ~reached)
        reached |= fresh
    return np.flatnonzero(reached)


def _appr_rows(propagator: Propagator, features: np.ndarray,
               rows: np.ndarray, steps: int) -> np.ndarray:
    """``Z_m`` restricted to ``rows``, bitwise equal to the full recursion.

    Level-by-level halo recomputation: to produce ``Z_k`` at a row set
    ``L_k``, the recursion reads ``Z_{k-1}`` at the closed neighbourhood
    ``N[L_k]``, so the level sets ``L_k = N^{m-k}[rows]`` shrink towards the
    target rows while every level's inputs stay covered by the previous
    one.  Each level is a CSR *row slice* of the same transition matrix the
    full path multiplies with — row slicing preserves each row's stored
    element order, so the per-row accumulation sequence (and hence every
    last bit) matches ``_propagate_appr``.
    """
    transition = propagator.transition
    num_nodes = transition.shape[0]
    levels = [rows]
    for _ in range(steps - 1):
        levels.append(bfs_neighborhood(transition, levels[-1], 1))
    levels.reverse()  # levels[k-1] is L_k = N^{m-k}[rows]
    decayed = 1.0 - propagator.alpha
    # One full-size scratch: level k writes Z_k into its rows; level k+1
    # reads only columns inside level k's row set, so the stale rows outside
    # it are never consulted.
    scratch = features.copy()
    for level_rows in levels:
        if level_rows.size == num_nodes:
            scratch = decayed * (transition @ scratch) \
                + propagator.alpha * features
            continue
        sub = transition[level_rows] @ scratch
        scratch[level_rows] = decayed * sub \
            + propagator.alpha * features[level_rows]
    return scratch[rows]


def incremental_inference_features(propagator: Propagator,
                                   encoded: np.ndarray,
                                   old_features: np.ndarray,
                                   endpoints,
                                   steps_list,
                                   mode: str = "private",
                                   inference_alpha: float | None = None,
                                   ) -> tuple[np.ndarray, np.ndarray]:
    """Push-based re-propagation after an edge-delta batch.

    ``propagator`` is built on the *new* graph; ``old_features`` is the
    previous epoch's aggregated matrix for the same ``encoded`` inputs (the
    encoder output does not depend on edges, so it carries across epochs);
    ``endpoints`` is the set of nodes incident to any inserted or deleted
    edge between the two epochs.

    Returns ``(new_features, touched_rows)``.  The contract — pinned by the
    property tests and the CI graph-smoke job — is that ``new_features`` is
    *bitwise identical* to recomputing
    :func:`repro.core.inference.inference_features` from scratch on the new
    graph, while every row outside ``touched_rows`` is byte-copied from
    ``old_features``.

    Why only a neighbourhood needs recomputing: a row-stochastic row
    ``Ã[i]`` depends on node i's own degree and neighbour set alone, so only
    the delta endpoints' rows change.  By induction over the APPR recursion
    ``Z_k = (1-α) Ã Z_{k-1} + α X``, a row further than ``k`` hops from
    every endpoint reads only unchanged operator rows over unchanged inputs,
    hence ``Z_m`` changes only within distance ``m-1`` of the endpoints (on
    either graph — an untouched row also has an identical neighbour list).
    Private inference applies a single-hop operator, so exactly the endpoint
    rows change; the exact PPR limit has unbounded radius and falls back to
    the reference solve for its block.
    """
    steps_list = list(steps_list)
    if not steps_list:
        raise ConfigurationError("steps_list must contain at least one entry")
    encoded = np.asarray(encoded, dtype=np.float64)
    num_nodes = propagator.num_nodes
    if encoded.shape[0] != num_nodes:
        raise ConfigurationError(
            f"encoded features have {encoded.shape[0]} rows but the graph "
            f"has {num_nodes} nodes")
    width = encoded.shape[1]
    scale = len(steps_list)
    if old_features.shape != (num_nodes, width * scale):
        raise ConfigurationError(
            f"old features have shape {old_features.shape}; expected "
            f"({num_nodes}, {width * scale}) for {scale} concat block(s)")
    if mode not in ("private", "public"):
        raise ConfigurationError(
            f"mode must be 'private' or 'public', got {mode!r}")
    if mode == "private" and inference_alpha is None:
        raise ConfigurationError("private inference requires inference_alpha")

    endpoints = np.unique(np.asarray(list(endpoints), dtype=np.int64))
    new_features = old_features.copy()
    if endpoints.size == 0:
        return new_features, np.array([], dtype=np.int64)
    if endpoints.min() < 0 or endpoints.max() >= num_nodes:
        raise ConfigurationError(
            f"delta endpoints must be in [0, {num_nodes}), got "
            f"[{int(endpoints.min())}, {int(endpoints.max())}]")

    touched = np.zeros(num_nodes, dtype=bool)
    for block, steps in enumerate(steps_list):
        start = block * width
        if steps == 0:
            continue  # the identity block is X/s in every epoch
        if mode == "private":
            # Eq. 16 is single-hop for every m > 0: only the endpoint rows
            # of R̂ differ, whatever the step count.  The operator rows are
            # assembled directly — never the full n×n R̂ — so the cost is
            # proportional to the touched set.  Bitwise safety: sparse
            # addition canonicalises (sorts) column indices exactly like
            # the full ``inference_matrix`` construction, so each row's
            # matmul accumulation order matches the reference path.
            if not 0.0 <= inference_alpha <= 1.0:
                raise ConfigurationError(
                    f"inference_alpha must be in [0, 1], got "
                    f"{inference_alpha}")
            rows = endpoints
            eye_rows = sp.csr_matrix(
                (np.ones(rows.size),
                 (np.arange(rows.size), rows)),
                shape=(rows.size, num_nodes))
            operator_rows = ((1.0 - inference_alpha)
                             * propagator.transition[rows]
                             + inference_alpha * eye_rows)
            block_rows = np.asarray(operator_rows @ encoded)
        elif steps == math.inf:
            # The PPR limit mixes globally; recompute the block via the
            # reference solve (still bitwise: it IS the reference path).
            rows = np.arange(num_nodes, dtype=np.int64)
            block_rows = propagator.propagate(encoded, math.inf)
        else:
            rows = bfs_neighborhood(propagator.transition, endpoints,
                                    int(steps) - 1)
            block_rows = _appr_rows(propagator, encoded, rows, int(steps))
        new_features[rows, start:start + width] = block_rows / scale
        touched[rows] = True
    return new_features, np.flatnonzero(touched)
