"""PPR / APPR feature propagation (Section IV-C2 and IV-C3 of the paper).

The propagation matrix (Eq. 9) is

* ``R_0 = I``,
* ``R_m = alpha * sum_{i<m} (1-alpha)^i Ã^i + (1-alpha)^m Ã^m`` for finite m
  (APPR), computed via the recursion ``R_m = (1-alpha) Ã R_{m-1} + alpha I``,
* ``R_inf = alpha (I - (1-alpha) Ã)^{-1}`` (PPR), computed with a sparse
  linear solve.

``Ã = D^{-1}(A + I)`` is the row-stochastic normalisation with self-loops.
The aggregate features are ``Z_m = R_m X`` (Eq. 10) and the final model input
is the scaled concatenation ``Z = (1/s)(Z_{m_1} ⊕ ... ⊕ Z_{m_s})`` (Eq. 11).
"""

from __future__ import annotations

import math

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.exceptions import ConfigurationError
from repro.graphs.adjacency import row_stochastic_normalize


class Propagator:
    """Computes PPR/APPR propagation of node features over a fixed graph."""

    def __init__(self, adjacency: sp.spmatrix, alpha: float):
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self.transition = row_stochastic_normalize(adjacency, add_loops=True)
        self.num_nodes = self.transition.shape[0]
        self._ppr_solver = None

    # ------------------------------------------------------------------ #
    # feature propagation
    # ------------------------------------------------------------------ #
    def propagate(self, features: np.ndarray, steps: float) -> np.ndarray:
        """Return ``Z_m = R_m X`` for a single propagation step count ``m``.

        ``steps`` may be a non-negative integer or ``math.inf`` (PPR limit).
        """
        features = np.asarray(features, dtype=np.float64)
        if features.shape[0] != self.num_nodes:
            raise ConfigurationError(
                f"features have {features.shape[0]} rows but the graph has "
                f"{self.num_nodes} nodes"
            )
        if steps == 0:
            return features.copy()
        if steps == math.inf:
            return self._propagate_ppr(features)
        if not float(steps).is_integer() or steps < 0:
            raise ConfigurationError(f"steps must be a non-negative integer or inf, got {steps}")
        steps = int(steps)
        decayed = 1.0 - self.alpha
        aggregated = features.copy()
        for _ in range(steps):
            aggregated = decayed * (self.transition @ aggregated) + self.alpha * features
        return aggregated

    def _propagate_ppr(self, features: np.ndarray) -> np.ndarray:
        """Exact personalised-PageRank limit via a sparse LU solve (Eq. 5)."""
        if self.alpha == 1.0:
            return features.copy()
        if self._ppr_solver is None:
            system = sp.identity(self.num_nodes, format="csc") \
                - (1.0 - self.alpha) * self.transition.tocsc()
            self._ppr_solver = spla.splu(system.tocsc())
        solution = self._ppr_solver.solve(features)
        return self.alpha * solution

    def propagate_concat(self, features: np.ndarray, steps_list) -> np.ndarray:
        """Return the scaled concatenation ``Z`` of Eq. (11) over ``steps_list``."""
        steps_list = list(steps_list)
        if not steps_list:
            raise ConfigurationError("steps_list must contain at least one entry")
        blocks = [self.propagate(features, steps) for steps in steps_list]
        return np.concatenate(blocks, axis=1) / len(blocks)

    # ------------------------------------------------------------------ #
    # explicit propagation matrices (small graphs / testing)
    # ------------------------------------------------------------------ #
    def propagation_matrix(self, steps: float) -> np.ndarray:
        """Return the dense ``R_m`` matrix (Eq. 9).  Intended for small graphs."""
        identity = np.eye(self.num_nodes)
        return self.propagate(identity, steps)

    def inference_matrix(self, steps: float, inference_alpha: float) -> sp.csr_matrix:
        """The single-hop private-inference operator ``R̂_m`` of Eq. (16)."""
        if not 0.0 <= inference_alpha <= 1.0:
            raise ConfigurationError(
                f"inference_alpha must be in [0, 1], got {inference_alpha}"
            )
        if steps == 0:
            return sp.identity(self.num_nodes, format="csr")
        return ((1.0 - inference_alpha) * self.transition
                + inference_alpha * sp.identity(self.num_nodes, format="csr")).tocsr()

    def inference_concat(self, features: np.ndarray, steps_list, inference_alpha: float,
                         ) -> np.ndarray:
        """Private-inference features (Eq. 16), scaled by 1/s to match training.

        The paper's Eq. (16) omits the 1/s factor used at training time
        (Eq. 11); we keep the factor so that the feature scale the classifier
        sees at inference matches the scale it was trained on (for s = 1 the
        two coincide).
        """
        steps_list = list(steps_list)
        if not steps_list:
            raise ConfigurationError("steps_list must contain at least one entry")
        features = np.asarray(features, dtype=np.float64)
        blocks = []
        for steps in steps_list:
            operator = self.inference_matrix(steps, inference_alpha)
            blocks.append(np.asarray(operator @ features))
        return np.concatenate(blocks, axis=1) / len(blocks)
