"""Convex solvers for the perturbed objective (Eq. 15).

The privacy guarantee of GCON is independent of the optimisation algorithm
(Remark after Theorem 1), so any minimiser of the strongly convex objective
works.  The default is L-BFGS-B from scipy with the analytic gradient; a
plain gradient-descent fallback is provided for environments where scipy's
optimiser is undesirable and for cross-checking in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.exceptions import OptimizationError
from repro.core.objective import BatchedPerturbedObjective, PerturbedObjective


@dataclass(frozen=True)
class SolverResult:
    """Outcome of a convex solve: the minimiser and convergence diagnostics."""

    theta: np.ndarray
    objective_value: float
    gradient_norm: float
    iterations: int
    converged: bool
    method: str


def minimize_objective(objective: PerturbedObjective, *, method: str = "lbfgs",
                       max_iterations: int = 500, gtol: float = 1e-6,
                       initial_theta: np.ndarray | None = None) -> SolverResult:
    """Minimise a :class:`PerturbedObjective` and return a :class:`SolverResult`."""
    if method == "lbfgs":
        return _minimize_lbfgs(objective, max_iterations, gtol, initial_theta)
    if method == "gradient_descent":
        return _minimize_gradient_descent(objective, max_iterations, gtol, initial_theta)
    raise OptimizationError(f"unknown solver method {method!r}")


def solve_objective_sweep(objectives: list[PerturbedObjective], *, method: str = "lbfgs",
                          max_iterations: int = 500, gtol: float = 1e-6,
                          warm_start: bool = True) -> list[SolverResult]:
    """Minimise a sequence of objectives sharing one feature matrix, warm-started.

    The objectives of an epsilon sweep differ only in their perturbation term,
    so adjacent minimisers are close (the noise direction is shared and only
    its radius and the quadratic coefficient move with epsilon): initialising
    solve ``i+1`` from minimiser ``i`` typically cuts the iteration count by
    an order of magnitude.  Every solve still terminates on the same ``gtol``
    criterion as a cold solve, so each returned minimiser is the unique
    optimum of its strongly convex objective to the same tolerance — warm
    starting changes the path, never the destination.

    With ``warm_start=False`` this is exactly the serial reference: K
    independent cold solves.
    """
    results: list[SolverResult] = []
    previous: np.ndarray | None = None
    for objective in objectives:
        result = minimize_objective(
            objective, method=method, max_iterations=max_iterations, gtol=gtol,
            initial_theta=previous if warm_start else None,
        )
        if warm_start:
            previous = result.theta
        results.append(result)
    return results


def minimize_batched_objective(batched: BatchedPerturbedObjective, *,
                               max_iterations: int = 500, gtol: float = 1e-6,
                               initial_theta: np.ndarray | None = None,
                               ) -> list[SolverResult]:
    """Minimise all K blocks of a :class:`BatchedPerturbedObjective` jointly.

    One L-BFGS run over the stacked ``(d, K·c)`` matrix does the bulk of the
    descent: the blocks are independent, so the joint minimiser restricted to
    block ``i`` is the minimiser of block ``i``, and every iteration amortises
    the margin computation across all K blocks in a single matrix
    multiplication.  scipy's relative ``ftol`` criterion fires earlier on the
    K-times-larger joint value, so each block is then *polished* by a short
    warm-started solve that terminates on exactly the per-block ``gtol``
    criterion a serial solve would use — the joint pass buys speed, the
    polish pass restores the serial stopping rule.
    """
    joint = _minimize_lbfgs(batched, max_iterations, gtol, initial_theta)
    results = []
    for index, theta in enumerate(batched.split(joint.theta)):
        block = batched.block_objective(index)
        polished = _minimize_lbfgs(block, max_iterations, gtol, theta)
        results.append(SolverResult(
            theta=polished.theta,
            objective_value=polished.objective_value,
            gradient_norm=polished.gradient_norm,
            iterations=joint.iterations + polished.iterations,
            converged=polished.converged,
            method="lbfgs_batched",
        ))
    return results


def _minimize_lbfgs(objective: PerturbedObjective, max_iterations: int, gtol: float,
                    initial_theta: np.ndarray | None) -> SolverResult:
    shape = (objective.dimension, objective.num_classes)
    theta0 = objective.initial_theta() if initial_theta is None else np.asarray(initial_theta)

    def fun(flat: np.ndarray) -> tuple[float, np.ndarray]:
        value, grad = objective.value_and_gradient(flat.reshape(shape))
        return value, grad.ravel()

    result = optimize.minimize(
        fun,
        theta0.ravel(),
        jac=True,
        method="L-BFGS-B",
        options={"maxiter": max_iterations, "gtol": gtol, "ftol": 1e-12},
    )
    theta = result.x.reshape(shape)
    grad_norm = float(np.linalg.norm(objective.gradient(theta)))
    return SolverResult(
        theta=theta,
        objective_value=float(result.fun),
        gradient_norm=grad_norm,
        iterations=int(result.nit),
        converged=bool(result.success) or grad_norm <= 10 * gtol,
        method="lbfgs",
    )


def _minimize_gradient_descent(objective: PerturbedObjective, max_iterations: int,
                               gtol: float, initial_theta: np.ndarray | None) -> SolverResult:
    """Gradient descent with backtracking line search on the convex objective."""
    theta = objective.initial_theta() if initial_theta is None else np.asarray(initial_theta,
                                                                                dtype=np.float64)
    step = 1.0
    value, grad = objective.value_and_gradient(theta)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        grad_norm = float(np.linalg.norm(grad))
        if grad_norm <= gtol:
            break
        # Backtracking Armijo line search.
        step = min(step * 2.0, 1e3)
        while step > 1e-12:
            candidate = theta - step * grad
            candidate_value = objective.value(candidate)
            if candidate_value <= value - 0.5 * step * grad_norm ** 2:
                break
            step *= 0.5
        theta = theta - step * grad
        value, grad = objective.value_and_gradient(theta)
    grad_norm = float(np.linalg.norm(grad))
    return SolverResult(
        theta=theta,
        objective_value=float(value),
        gradient_norm=grad_norm,
        iterations=iterations,
        converged=grad_norm <= max(gtol, 1e-4),
        method="gradient_descent",
    )
