"""The perturbed training objective L_priv (Eq. 13) and its analytic gradient.

    L_priv(Θ; Z, Y) = (1/n1) Σ_i Σ_j l(z_i^T θ_j; Y_ij)
                      + (Λ̄/2) ||Θ||_F²
                      + (1/n1) B ⊙ Θ
                      + (Λ'/2) ||Θ||_F²

where the sum runs over the n1 labelled nodes, B is the sampled noise matrix
and ⊙ denotes the element-wise product followed by a sum (a Frobenius inner
product).  The objective is strongly convex in Θ (Lemma 4 + Fact 1), so any
first-order method converges to its unique minimiser.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.core.losses import ConvexPointwiseLoss


class PerturbedObjective:
    """Value/gradient oracle for the perturbed GCON objective."""

    def __init__(self, features: np.ndarray, labels_one_hot: np.ndarray,
                 loss: ConvexPointwiseLoss, quadratic_coefficient: float,
                 noise: np.ndarray | None = None):
        """Build the objective.

        Parameters
        ----------
        features:
            Aggregate features ``Z`` of the labelled nodes, shape ``(n1, d)``.
        labels_one_hot:
            One-hot labels ``Y`` of the labelled nodes, shape ``(n1, c)``.
        loss:
            The convex scalar loss applied per class coordinate.
        quadratic_coefficient:
            The total coefficient ``Λ̄ + Λ'`` multiplying ``(1/2)||Θ||_F²``.
        noise:
            The noise matrix ``B`` of shape ``(d, c)``; ``None`` means zero
            noise (non-private training / the Ψ = 0 case).
        """
        self.features = np.asarray(features, dtype=np.float64)
        self.labels = np.asarray(labels_one_hot, dtype=np.float64)
        if self.features.ndim != 2 or self.labels.ndim != 2:
            raise ConfigurationError("features and labels must be 2-D")
        if self.features.shape[0] != self.labels.shape[0]:
            raise ConfigurationError("features and labels disagree on the number of nodes")
        if quadratic_coefficient < 0:
            raise ConfigurationError(
                f"quadratic_coefficient must be >= 0, got {quadratic_coefficient}"
            )
        self.loss = loss
        self.quadratic_coefficient = float(quadratic_coefficient)
        self.num_labeled, self.dimension = self.features.shape
        self.num_classes = self.labels.shape[1]
        if noise is None:
            noise = np.zeros((self.dimension, self.num_classes))
        self.noise = np.asarray(noise, dtype=np.float64)
        if self.noise.shape != (self.dimension, self.num_classes):
            raise ConfigurationError(
                f"noise must have shape ({self.dimension}, {self.num_classes}), "
                f"got {self.noise.shape}"
            )

    # ------------------------------------------------------------------ #
    # oracles
    # ------------------------------------------------------------------ #
    def value(self, theta: np.ndarray) -> float:
        """Evaluate L_priv at ``theta`` of shape ``(d, c)``."""
        theta = self._check_theta(theta)
        margins = self.features @ theta
        data_term = self.loss.value(margins, self.labels).sum() / self.num_labeled
        quad_term = 0.5 * self.quadratic_coefficient * float(np.sum(theta ** 2))
        noise_term = float(np.sum(self.noise * theta)) / self.num_labeled
        return float(data_term + quad_term + noise_term)

    def gradient(self, theta: np.ndarray) -> np.ndarray:
        """Analytic gradient of L_priv with respect to Θ (same shape as Θ)."""
        theta = self._check_theta(theta)
        margins = self.features @ theta
        residuals = self.loss.derivative(margins, self.labels)
        grad = self.features.T @ residuals / self.num_labeled
        grad = grad + self.quadratic_coefficient * theta
        grad = grad + self.noise / self.num_labeled
        return grad

    def value_and_gradient(self, theta: np.ndarray) -> tuple[float, np.ndarray]:
        """Evaluate value and gradient with a single matrix multiplication pass."""
        theta = self._check_theta(theta)
        margins = self.features @ theta
        data_term = self.loss.value(margins, self.labels).sum() / self.num_labeled
        residuals = self.loss.derivative(margins, self.labels)
        grad = self.features.T @ residuals / self.num_labeled
        grad = grad + self.quadratic_coefficient * theta + self.noise / self.num_labeled
        value = (
            data_term
            + 0.5 * self.quadratic_coefficient * float(np.sum(theta ** 2))
            + float(np.sum(self.noise * theta)) / self.num_labeled
        )
        return float(value), grad

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def with_perturbation(self, quadratic_coefficient: float,
                          noise: np.ndarray | None = None) -> "PerturbedObjective":
        """A new objective over the *same* feature/label arrays with a
        different perturbation term.

        An epsilon sweep minimises one objective per epsilon, all sharing the
        data term; this constructor reuses the validated arrays instead of
        re-copying them for every budget.
        """
        clone = object.__new__(PerturbedObjective)
        clone.features = self.features
        clone.labels = self.labels
        clone.loss = self.loss
        if quadratic_coefficient < 0:
            raise ConfigurationError(
                f"quadratic_coefficient must be >= 0, got {quadratic_coefficient}"
            )
        clone.quadratic_coefficient = float(quadratic_coefficient)
        clone.num_labeled = self.num_labeled
        clone.dimension = self.dimension
        clone.num_classes = self.num_classes
        if noise is None:
            noise = np.zeros((self.dimension, self.num_classes))
        clone.noise = np.asarray(noise, dtype=np.float64)
        if clone.noise.shape != (self.dimension, self.num_classes):
            raise ConfigurationError(
                f"noise must have shape ({self.dimension}, {self.num_classes}), "
                f"got {clone.noise.shape}"
            )
        return clone

    def _check_theta(self, theta: np.ndarray) -> np.ndarray:
        theta = np.asarray(theta, dtype=np.float64)
        if theta.shape != (self.dimension, self.num_classes):
            raise ConfigurationError(
                f"theta must have shape ({self.dimension}, {self.num_classes}), "
                f"got {theta.shape}"
            )
        return theta

    def initial_theta(self) -> np.ndarray:
        """A reasonable starting point (zeros) for the convex solver."""
        return np.zeros((self.dimension, self.num_classes))


class BatchedPerturbedObjective:
    """K independent perturbed objectives over one shared feature matrix.

    An epsilon sweep minimises K copies of Eq. (13) that differ only in the
    scalar quadratic coefficient and the noise matrix ``B``.  Because the
    blocks share no variables, minimising their *sum* over the stacked
    parameter matrix ``Θ = [Θ_1 | ... | Θ_K]`` of shape ``(d, K·c)`` is exactly
    equivalent to minimising each block separately — but every solver
    iteration now evaluates all K margin matrices with a single
    ``(n1, d) @ (d, K·c)`` multiplication instead of K narrow ones, which is
    where the vectorised sweep's BLAS efficiency comes from.

    The class duck-types the oracle interface of :class:`PerturbedObjective`
    (``dimension``, ``num_classes``, ``value_and_gradient``, ``gradient``,
    ``initial_theta``), so :func:`repro.core.solver.minimize_objective` runs
    on it unchanged; scipy's L-BFGS-B ``gtol`` termination uses the infinity
    norm of the gradient, hence the joint stopping rule is the same
    per-coordinate criterion every individual solve would use.
    """

    def __init__(self, base: PerturbedObjective,
                 quadratic_coefficients, noises) -> None:
        """Stack K perturbations of ``base``'s data term into one objective.

        Parameters
        ----------
        base:
            The shared data term: features, one-hot labels and loss.
        quadratic_coefficients:
            Length-K sequence of the per-block coefficients ``Λ̄ + Λ'``.
        noises:
            Length-K sequence of ``(d, c)`` noise matrices (``None`` entries
            mean zero noise for that block).
        """
        coefficients = [float(q) for q in quadratic_coefficients]
        noises = list(noises)
        if not coefficients:
            raise ConfigurationError("at least one perturbation block is required")
        if len(coefficients) != len(noises):
            raise ConfigurationError(
                f"{len(coefficients)} quadratic coefficients but {len(noises)} noise matrices"
            )
        if any(q < 0 for q in coefficients):
            raise ConfigurationError("quadratic coefficients must be >= 0")
        self.base = base
        self.features = base.features
        self.labels = base.labels
        self.loss = base.loss
        self.num_blocks = len(coefficients)
        self.block_classes = base.num_classes
        self.num_labeled = base.num_labeled
        self.dimension = base.dimension
        self.num_classes = self.num_blocks * self.block_classes  # stacked width
        blocks = []
        for noise in noises:
            if noise is None:
                noise = np.zeros((self.dimension, self.block_classes))
            noise = np.asarray(noise, dtype=np.float64)
            if noise.shape != (self.dimension, self.block_classes):
                raise ConfigurationError(
                    f"noise blocks must have shape ({self.dimension}, "
                    f"{self.block_classes}), got {noise.shape}"
                )
            blocks.append(noise)
        self.noise = np.concatenate(blocks, axis=1)
        self.quadratic_coefficients = np.asarray(coefficients, dtype=np.float64)
        # Per-column coefficient row vector, so theta * coeffs broadcasts the
        # right scalar onto each block.
        self._column_coefficients = np.repeat(self.quadratic_coefficients,
                                              self.block_classes)[np.newaxis, :]
        self._tiled_labels = np.tile(self.labels, (1, self.num_blocks))

    # ------------------------------------------------------------------ #
    # oracles (duck-typed PerturbedObjective interface)
    # ------------------------------------------------------------------ #
    def value(self, theta: np.ndarray) -> float:
        """Sum of the K block objectives at the stacked ``theta`` of shape (d, K·c)."""
        value, _ = self.value_and_gradient(theta)
        return value

    def gradient(self, theta: np.ndarray) -> np.ndarray:
        _, grad = self.value_and_gradient(theta)
        return grad

    def value_and_gradient(self, theta: np.ndarray) -> tuple[float, np.ndarray]:
        theta = self._check_theta(theta)
        margins = self.features @ theta
        data_term = self.loss.value(margins, self._tiled_labels).sum() / self.num_labeled
        residuals = self.loss.derivative(margins, self._tiled_labels)
        grad = self.features.T @ residuals / self.num_labeled
        grad = grad + self._column_coefficients * theta + self.noise / self.num_labeled
        value = (
            data_term
            + 0.5 * float(np.sum(self._column_coefficients * theta ** 2))
            + float(np.sum(self.noise * theta)) / self.num_labeled
        )
        return float(value), grad

    def initial_theta(self) -> np.ndarray:
        return np.zeros((self.dimension, self.num_classes))

    # ------------------------------------------------------------------ #
    # per-block views
    # ------------------------------------------------------------------ #
    def split(self, theta: np.ndarray) -> list[np.ndarray]:
        """Slice the stacked ``(d, K·c)`` matrix into the K ``(d, c)`` blocks."""
        theta = self._check_theta(theta)
        return [np.ascontiguousarray(block)
                for block in np.split(theta, self.num_blocks, axis=1)]

    def block_objective(self, index: int) -> PerturbedObjective:
        """The ``index``-th block as a standalone :class:`PerturbedObjective`."""
        if not 0 <= index < self.num_blocks:
            raise ConfigurationError(
                f"block index must be in [0, {self.num_blocks}), got {index}"
            )
        start = index * self.block_classes
        return self.base.with_perturbation(
            float(self.quadratic_coefficients[index]),
            self.noise[:, start:start + self.block_classes],
        )

    def _check_theta(self, theta: np.ndarray) -> np.ndarray:
        theta = np.asarray(theta, dtype=np.float64)
        if theta.shape != (self.dimension, self.num_classes):
            raise ConfigurationError(
                f"stacked theta must have shape ({self.dimension}, {self.num_classes}), "
                f"got {theta.shape}"
            )
        return theta
