"""The perturbed training objective L_priv (Eq. 13) and its analytic gradient.

    L_priv(Θ; Z, Y) = (1/n1) Σ_i Σ_j l(z_i^T θ_j; Y_ij)
                      + (Λ̄/2) ||Θ||_F²
                      + (1/n1) B ⊙ Θ
                      + (Λ'/2) ||Θ||_F²

where the sum runs over the n1 labelled nodes, B is the sampled noise matrix
and ⊙ denotes the element-wise product followed by a sum (a Frobenius inner
product).  The objective is strongly convex in Θ (Lemma 4 + Fact 1), so any
first-order method converges to its unique minimiser.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.core.losses import ConvexPointwiseLoss


class PerturbedObjective:
    """Value/gradient oracle for the perturbed GCON objective."""

    def __init__(self, features: np.ndarray, labels_one_hot: np.ndarray,
                 loss: ConvexPointwiseLoss, quadratic_coefficient: float,
                 noise: np.ndarray | None = None):
        """Build the objective.

        Parameters
        ----------
        features:
            Aggregate features ``Z`` of the labelled nodes, shape ``(n1, d)``.
        labels_one_hot:
            One-hot labels ``Y`` of the labelled nodes, shape ``(n1, c)``.
        loss:
            The convex scalar loss applied per class coordinate.
        quadratic_coefficient:
            The total coefficient ``Λ̄ + Λ'`` multiplying ``(1/2)||Θ||_F²``.
        noise:
            The noise matrix ``B`` of shape ``(d, c)``; ``None`` means zero
            noise (non-private training / the Ψ = 0 case).
        """
        self.features = np.asarray(features, dtype=np.float64)
        self.labels = np.asarray(labels_one_hot, dtype=np.float64)
        if self.features.ndim != 2 or self.labels.ndim != 2:
            raise ConfigurationError("features and labels must be 2-D")
        if self.features.shape[0] != self.labels.shape[0]:
            raise ConfigurationError("features and labels disagree on the number of nodes")
        if quadratic_coefficient < 0:
            raise ConfigurationError(
                f"quadratic_coefficient must be >= 0, got {quadratic_coefficient}"
            )
        self.loss = loss
        self.quadratic_coefficient = float(quadratic_coefficient)
        self.num_labeled, self.dimension = self.features.shape
        self.num_classes = self.labels.shape[1]
        if noise is None:
            noise = np.zeros((self.dimension, self.num_classes))
        self.noise = np.asarray(noise, dtype=np.float64)
        if self.noise.shape != (self.dimension, self.num_classes):
            raise ConfigurationError(
                f"noise must have shape ({self.dimension}, {self.num_classes}), "
                f"got {self.noise.shape}"
            )

    # ------------------------------------------------------------------ #
    # oracles
    # ------------------------------------------------------------------ #
    def value(self, theta: np.ndarray) -> float:
        """Evaluate L_priv at ``theta`` of shape ``(d, c)``."""
        theta = self._check_theta(theta)
        margins = self.features @ theta
        data_term = self.loss.value(margins, self.labels).sum() / self.num_labeled
        quad_term = 0.5 * self.quadratic_coefficient * float(np.sum(theta ** 2))
        noise_term = float(np.sum(self.noise * theta)) / self.num_labeled
        return float(data_term + quad_term + noise_term)

    def gradient(self, theta: np.ndarray) -> np.ndarray:
        """Analytic gradient of L_priv with respect to Θ (same shape as Θ)."""
        theta = self._check_theta(theta)
        margins = self.features @ theta
        residuals = self.loss.derivative(margins, self.labels)
        grad = self.features.T @ residuals / self.num_labeled
        grad = grad + self.quadratic_coefficient * theta
        grad = grad + self.noise / self.num_labeled
        return grad

    def value_and_gradient(self, theta: np.ndarray) -> tuple[float, np.ndarray]:
        """Evaluate value and gradient with a single matrix multiplication pass."""
        theta = self._check_theta(theta)
        margins = self.features @ theta
        data_term = self.loss.value(margins, self.labels).sum() / self.num_labeled
        residuals = self.loss.derivative(margins, self.labels)
        grad = self.features.T @ residuals / self.num_labeled
        grad = grad + self.quadratic_coefficient * theta + self.noise / self.num_labeled
        value = (
            data_term
            + 0.5 * self.quadratic_coefficient * float(np.sum(theta ** 2))
            + float(np.sum(self.noise * theta)) / self.num_labeled
        )
        return float(value), grad

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _check_theta(self, theta: np.ndarray) -> np.ndarray:
        theta = np.asarray(theta, dtype=np.float64)
        if theta.shape != (self.dimension, self.num_classes):
            raise ConfigurationError(
                f"theta must have shape ({self.dimension}, {self.num_classes}), "
                f"got {theta.shape}"
            )
        return theta

    def initial_theta(self) -> np.ndarray:
        """A reasonable starting point (zeros) for the convex solver."""
        return np.zeros((self.dimension, self.num_classes))
