"""Vectorised epsilon-sweep solving: many privacy budgets, one preparation.

The privacy guarantee of GCON is independent of the optimisation algorithm
(Remark after Theorem 1), and Lines 1-7 of Algorithm 1 — encoder training,
normalisation and propagation — do not depend on epsilon at all.  An epsilon
sweep therefore minimises a *family* of strongly convex objectives that share
one feature matrix and differ only in the Theorem-1 perturbation term.
:class:`SweepSolver` exploits both facts:

* the preparation is computed (or fetched from a content-addressed
  :class:`~repro.core.persistence.PreparationStore`) once per
  ``(config, graph, seed)`` and shared across every budget;
* the convex solves run against the shared feature matrix either
  sequentially with warm starts (the epsilon_i minimiser initialises
  epsilon_{i+1}; the noise direction is shared across budgets, so adjacent
  minimisers are close) or jointly as one batched L-BFGS run over the
  stacked parameter matrix (one wide matmul per iteration).

Every strategy terminates each solve on the same ``gtol`` criterion as
:meth:`GCON.fit`, so the per-epsilon minimisers agree with the serial
reference path up to solver tolerance; ``strategy="serial"`` *is* the
reference path (cold solves, bitwise identical to per-epsilon ``fit``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.exceptions import ConfigurationError
from repro.core.config import GCONConfig
from repro.core.model import (
    GCON,
    PreparedInputs,
    calibrate_perturbation,
    resolve_delta,
    validate_prepared_inputs,
)
from repro.core.objective import BatchedPerturbedObjective, PerturbedObjective
from repro.core.perturbation import PerturbationParameters, sample_noise_matrix
from repro.core.solver import (
    SolverResult,
    minimize_batched_objective,
    solve_objective_sweep,
)
from repro.graphs.graph import GraphDataset
from repro.utils.math import one_hot
from repro.utils.random import as_rng, spawn_rngs

SWEEP_STRATEGIES = ("warm_start", "batched", "serial")


@dataclass(frozen=True)
class SweepSolve:
    """The outcome of one epsilon cell of a sweep."""

    epsilon: float
    delta: float
    perturbation: PerturbationParameters
    solver_result: SolverResult

    @property
    def theta(self) -> np.ndarray:
        """The released parameters Θ_priv for this budget."""
        return self.solver_result.theta


class SweepSolver:
    """Solves an epsilon sweep of GCON against one shared preparation.

    Parameters
    ----------
    config:
        The base :class:`GCONConfig`; its ``epsilon`` field is replaced by
        each swept budget (everything else, including ``delta``, is shared).
    strategy:
        ``"warm_start"`` (default) solves the budgets sequentially, each
        initialised from the previous minimiser; ``"batched"`` stacks all
        budgets into one joint L-BFGS run
        (:class:`~repro.core.objective.BatchedPerturbedObjective`);
        ``"serial"`` runs independent cold solves — the reference path,
        bitwise identical to calling :meth:`GCON.fit` per epsilon.
    method:
        Convex solver passed through to :func:`minimize_objective`
        (ignored by ``"batched"``, which is L-BFGS only).
    store:
        Optional :class:`~repro.core.persistence.PreparationStore`; when set,
        :meth:`prepare` fetches/persists the epsilon-independent preparation
        by content address, so repeated or resumed sweeps skip encoder
        training and propagation entirely.
    """

    def __init__(self, config: GCONConfig, *, strategy: str = "warm_start",
                 method: str = "lbfgs", store=None):
        if strategy not in SWEEP_STRATEGIES:
            raise ConfigurationError(
                f"strategy must be one of {SWEEP_STRATEGIES}, got {strategy!r}"
            )
        self.config = config
        self.strategy = strategy
        self.method = method
        self.store = store

    # ------------------------------------------------------------------ #
    # preparation
    # ------------------------------------------------------------------ #
    def prepare(self, graph: GraphDataset, seed: int | None = None) -> PreparedInputs:
        """The epsilon-independent preparation, through the store when present."""
        if self.store is not None:
            return self.store.get_or_prepare(GCON(self.config), graph, seed)
        return GCON(self.config).prepare(graph, seed=seed)

    # ------------------------------------------------------------------ #
    # solving
    # ------------------------------------------------------------------ #
    def solve(self, graph: GraphDataset, epsilons, seed: int | None = None,
              prepared: PreparedInputs | None = None) -> list[SweepSolve]:
        """Solve every budget in ``epsilons`` and return one :class:`SweepSolve` each.

        The noise generator of each budget is re-derived from ``seed`` exactly
        as :meth:`GCON.fit` derives it, so the perturbed objective of budget
        ``epsilon_i`` is identical to the one a serial ``fit`` at that budget
        would minimise; only the solver's starting point differs between
        strategies.
        """
        epsilons = [float(epsilon) for epsilon in epsilons]
        if not epsilons:
            raise ConfigurationError("at least one epsilon is required")
        if prepared is None:
            prepared = self.prepare(graph, seed=seed)
        else:
            validate_prepared_inputs(self.config, graph, seed, prepared)

        configs = [replace(self.config, epsilon=epsilon) for epsilon in epsilons]
        delta = resolve_delta(self.config, graph)
        num_classes = graph.num_classes
        train_idx = prepared.train_idx
        features_train = prepared.aggregated[train_idx]
        labels_one_hot = one_hot(prepared.labels[train_idx], num_classes)
        num_labeled = train_idx.size
        dimension = prepared.aggregated.shape[1]

        calibrations = []
        for config in configs:
            loss, perturbation = calibrate_perturbation(
                config, delta=delta, num_labeled=num_labeled,
                num_classes=num_classes, dimension=dimension,
            )
            # fit spawns (encoder, noise, pseudo) generators from a fresh
            # as_rng(seed) on every call; reproducing that derivation per
            # budget keeps the noise draws bitwise identical to serial fits.
            _encoder_rng, noise_rng, _pseudo_rng = spawn_rngs(as_rng(seed), 3)
            noise = sample_noise_matrix(perturbation, rng=noise_rng)
            calibrations.append((loss, perturbation, noise))

        base = PerturbedObjective(
            features=features_train, labels_one_hot=labels_one_hot,
            loss=calibrations[0][0],
            quadratic_coefficient=calibrations[0][1].total_quadratic_coefficient,
            noise=calibrations[0][2],
        )
        objectives = [base] + [
            base.with_perturbation(perturbation.total_quadratic_coefficient, noise)
            for _loss, perturbation, noise in calibrations[1:]
        ]

        if self.strategy == "batched":
            batched = BatchedPerturbedObjective(
                base,
                [perturbation.total_quadratic_coefficient
                 for _loss, perturbation, _noise in calibrations],
                [noise for _loss, _perturbation, noise in calibrations],
            )
            results = minimize_batched_objective(
                batched, max_iterations=self.config.max_iterations * len(epsilons),
                gtol=self.config.gtol,
            )
        else:
            results = solve_objective_sweep(
                objectives, method=self.method,
                max_iterations=self.config.max_iterations, gtol=self.config.gtol,
                warm_start=self.strategy == "warm_start",
            )

        return [
            SweepSolve(epsilon=epsilon, delta=delta, perturbation=perturbation,
                       solver_result=result)
            for epsilon, (_loss, perturbation, _noise), result
            in zip(epsilons, calibrations, results)
        ]

    def fit_models(self, graph: GraphDataset, epsilons, seed: int | None = None,
                   prepared: PreparedInputs | None = None) -> list[GCON]:
        """Solve the sweep and return one ready-to-predict :class:`GCON` per budget."""
        if prepared is None:
            prepared = self.prepare(graph, seed=seed)
        solves = self.solve(graph, epsilons, seed=seed, prepared=prepared)
        models = []
        for solve in solves:
            model = GCON(replace(self.config, epsilon=solve.epsilon))
            model.adopt_solution(
                theta=solve.theta, perturbation=solve.perturbation,
                solver_result=solve.solver_result, encoder=prepared.encoder,
                num_classes=graph.num_classes, graph=graph,
            )
            models.append(model)
        return models
