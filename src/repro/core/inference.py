"""Inference procedures for a trained GCON model (Section IV-C6 / Algorithm 4).

Two modes are supported:

* **private** (Eq. 16): the querying node only uses its own direct edges; the
  propagation operator is the single-hop ``R̂ = (1 - α_I) Ã + α_I I`` for
  every branch with m_i > 0, so no other node's private edges are revealed.
* **public**: the test graph's edges are considered public, Z is computed with
  the full PPR/APPR propagation (Eq. 11) and predictions are ``Z Θ_priv``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.core.propagation import Propagator


def private_inference_scores(propagator: Propagator, features: np.ndarray, theta: np.ndarray,
                             steps_list, inference_alpha: float) -> np.ndarray:
    """Class scores under the privacy-preserving inference rule of Eq. (16)."""
    aggregated = propagator.inference_concat(features, steps_list, inference_alpha)
    return _scores(aggregated, theta)


def public_inference_scores(propagator: Propagator, features: np.ndarray, theta: np.ndarray,
                            steps_list) -> np.ndarray:
    """Class scores when the test graph's edges are public (full propagation)."""
    aggregated = propagator.propagate_concat(features, steps_list)
    return _scores(aggregated, theta)


def _scores(aggregated: np.ndarray, theta: np.ndarray) -> np.ndarray:
    aggregated = np.asarray(aggregated, dtype=np.float64)
    theta = np.asarray(theta, dtype=np.float64)
    if aggregated.shape[1] != theta.shape[0]:
        raise ConfigurationError(
            f"feature dimension {aggregated.shape[1]} does not match theta rows {theta.shape[0]}"
        )
    return aggregated @ theta
